//! Cross-region data residency (paper §4.3–§4.4 unstructured data
//! environment): a buffer mapped once stays on its worker across target
//! regions, the host copy is flushed lazily, and a node death between or
//! during regions transparently re-sources the resident data. Transfer
//! counts are asserted through the `RunRecord` transfer log, so residency
//! wins are facts, not timings. Everything runs under ompc-testutil's
//! 120 s watchdog and on both real backends (threaded and MPI).

use ompc::prelude::*;
use ompc_testutil::with_timeout;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

const REAL_BACKENDS: [BackendKind; 2] = [BackendKind::Threaded, BackendKind::Mpi];

fn config_for(backend: BackendKind) -> OmpcConfig {
    OmpcConfig { backend, ..OmpcConfig::small() }
}

/// Register the reader kernel used throughout: out[0] = sum of the input.
fn register_sum(device: &ClusterDevice) -> KernelId {
    device.register_kernel_fn("sum", 1e-6, |args| {
        let total: f64 = args.as_f64s(0).iter().sum();
        args.set_f64s(1, &[total]);
    })
}

/// Run `regions` single-reader regions against the device-resident buffer
/// `input`, returning the per-region Input-transfer counts of `input` and
/// the region outputs.
fn run_reader_regions(
    device: &ClusterDevice,
    sum: KernelId,
    input: BufferId,
    regions: usize,
) -> (Vec<usize>, Vec<f64>) {
    let mut input_transfers = Vec::new();
    let mut outputs = Vec::new();
    for _ in 0..regions {
        let mut region = device.target_region();
        let out = region.map_alloc(8);
        region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
        region.map_from(out);
        region.run().unwrap();
        let record = device.last_run_record().unwrap();
        input_transfers.push(
            record
                .buffer_transfers(input)
                .iter()
                .filter(|t| t.reason == TransferReason::Input)
                .count(),
        );
        outputs.push(device.buffer_f64s(out).unwrap()[0]);
    }
    (input_transfers, outputs)
}

/// The headline acceptance criterion, and the CI transfer-count regression
/// gate: an input mapped once moves to its worker exactly once, no matter
/// how many regions read it — the per-buffer transfer count is independent
/// of the region count.
#[test]
fn resident_input_moves_once_regardless_of_region_count() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let mut counts_by_n = Vec::new();
            for regions in [2usize, 6] {
                let mut device = ClusterDevice::with_config(2, config_for(backend));
                let sum = register_sum(&device);
                let input = device.enter_data_f64s(&[1.0, 2.0, 3.0]);
                assert_eq!(device.region_epoch(), 0, "{}", backend.name());
                assert_eq!(device.buffer_epoch(input), Some(0), "{}", backend.name());
                let (transfers, outputs) = run_reader_regions(&device, sum, input, regions);
                // The epoch advanced once per region, while the resident
                // (read-only) input still carries its registration epoch —
                // it was carried across regions, never re-registered.
                assert_eq!(device.region_epoch(), regions as u64, "{}", backend.name());
                assert_eq!(device.buffer_epoch(input), Some(0), "{}", backend.name());
                device.shutdown();
                assert!(
                    outputs.iter().all(|&o| (o - 6.0).abs() < 1e-12),
                    "{}: every region must read the resident data",
                    backend.name()
                );
                let total: usize = transfers.iter().sum();
                assert_eq!(
                    total,
                    1,
                    "{}: the resident input must cross the network exactly once over \
                     {regions} regions, not {total} times (per region: {transfers:?})",
                    backend.name()
                );
                counts_by_n.push(total);
            }
            assert_eq!(
                counts_by_n[0],
                counts_by_n[1],
                "{}: resident transfer count must be independent of the region count",
                backend.name()
            );
        }
    });
}

/// Per-region mapping semantics are unchanged: a buffer freshly mapped with
/// `map_to` in every region is distributed in every region, and the
/// computed bytes are identical to the resident variant's.
#[test]
fn per_region_mapping_still_distributes_every_region() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let regions = 4usize;
            let mut device = ClusterDevice::with_config(2, config_for(backend));
            let sum = register_sum(&device);
            let mut outputs = Vec::new();
            let mut enter_transfers = 0usize;
            for _ in 0..regions {
                let mut region = device.target_region();
                let input = region.map_to_f64s(&[1.0, 2.0, 3.0]);
                let out = region.map_alloc(8);
                region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
                region.map_from(out);
                region.release(input);
                region.run().unwrap();
                let record = device.last_run_record().unwrap();
                enter_transfers += record
                    .buffer_transfers(input)
                    .iter()
                    .filter(|t| t.reason == TransferReason::EnterData)
                    .count();
                outputs.push(device.buffer_f64s(out).unwrap()[0]);
            }
            device.shutdown();
            assert!(outputs.iter().all(|&o| (o - 6.0).abs() < 1e-12), "{}", backend.name());
            assert_eq!(
                enter_transfers,
                regions,
                "{}: per-region mapping pays one distribution per region",
                backend.name()
            );
        }
    });
}

/// `map(from:)` on a keep-resident buffer is a flush: the host copy
/// becomes current, the device copy stays mapped, and the next region
/// generates no transfer at all.
#[test]
fn map_from_on_resident_buffer_flushes_without_releasing() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            // One worker, so every region's task lands on the same node.
            let mut device = ClusterDevice::with_config(1, config_for(backend));
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });

            let mut region = device.target_region();
            let a = region.map_to_resident_f64s(&[1.0, 2.0]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(
                device.buffer_f64s(a).unwrap(),
                vec![2.0, 3.0],
                "{}: the flush must land the bumped bytes on the host",
                backend.name()
            );

            // Region 2 re-uses the still-resident device copy: no enter
            // task, no transfer of `a` in either direction.
            let mut region = device.target_region();
            region.target(bump, vec![Dependence::inout(a)]);
            region.run().unwrap();
            let record = device.last_run_record().unwrap();
            assert!(
                record.buffer_transfers(a).is_empty(),
                "{}: the resident buffer must not move again, got {:?}",
                backend.name(),
                record.buffer_transfers(a)
            );
            assert_eq!(device.buffer_f64s(a).unwrap(), vec![3.0, 4.0], "{}", backend.name());
            device.shutdown();
        }
    });
}

/// Device-level `exit_data` flush byte-identity: the lazily flushed bytes
/// equal what an eager per-region `map_from` produces, and after the exit
/// the mapping is gone (a later region re-distributes from the flushed
/// host copy).
#[test]
fn exit_data_flush_is_byte_identical_to_eager_map_from() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let scale = |device: &ClusterDevice| {
                device.register_kernel_fn("scale", 1e-6, |args| {
                    let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
                    args.set_f64s(0, &v);
                })
            };
            let input = [1.5, -2.0, 4.25];

            // Eager reference: classic map_to / map_from in one region.
            let mut eager_device = ClusterDevice::with_config(2, config_for(backend));
            let k = scale(&eager_device);
            let mut region = eager_device.target_region();
            let a = region.map_to_f64s(&input);
            region.target(k, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            let eager = eager_device.buffer_data(a).unwrap();
            eager_device.shutdown();

            // Lazy: unstructured enter, compute, then exit_data flushes.
            let mut device = ClusterDevice::with_config(2, config_for(backend));
            let k = scale(&device);
            let b = device.enter_data_f64s(&input);
            let mut region = device.target_region();
            region.target(k, vec![Dependence::inout(b)]);
            region.run().unwrap();
            device.exit_data(b).unwrap();
            let lazy = device.buffer_data(b).unwrap();
            assert_eq!(lazy, eager, "{}: flush must be byte-identical", backend.name());

            // The mapping ended: a later region re-distributes the flushed
            // host copy (one fresh Input transfer).
            let sum = register_sum(&device);
            let (transfers, outputs) = run_reader_regions(&device, sum, b, 1);
            device.shutdown();
            assert_eq!(transfers, vec![1], "{}: exit_data ended residency", backend.name());
            assert!((outputs[0] - (4.5 - 6.0 + 12.75)).abs() < 1e-12, "{}", backend.name());
        }
    });
}

/// Build the second, larger region of the mid-sequence fault test: `readers`
/// independent (alloc → read-`input` → map_from) triplets.
fn build_reader_triplets(
    region: &mut TargetRegion<'_>,
    sum: KernelId,
    input: BufferId,
    readers: usize,
) -> Vec<BufferId> {
    (0..readers)
        .map(|_| {
            let out = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
            region.map_from(out);
            out
        })
        .collect()
}

/// Fault composition: a worker dies mid-sequence while holding resident
/// replicas and freshly produced outputs. The lost outputs re-execute on
/// the survivor (lineage recovery within the region that lost them), the
/// resident input is transparently re-sourced from the host version or a
/// surviving replica, and the final bytes are correct.
#[test]
fn mid_sequence_node_death_resources_resident_buffers() {
    with_timeout(WATCHDOG, || {
        const READERS: usize = 5;
        for backend in REAL_BACKENDS {
            // Probe run (no faults): learn which worker region 1 lands the
            // resident input on, and how many tasks each region assigns to
            // that node — scheduling is deterministic, so the real run
            // makes identical placements.
            let (holder, region1_tasks, region2_tasks) = {
                let mut probe = ClusterDevice::with_config(2, config_for(backend));
                let sum = register_sum(&probe);
                let input = probe.enter_data_f64s(&[1.0, 2.0, 3.0]);
                run_reader_regions(&probe, sum, input, 1);
                let r1 = probe.last_run_record().unwrap();
                let holder = r1.buffer_transfers(input)[0].to;
                let mut region = probe.target_region();
                build_reader_triplets(&mut region, sum, input, READERS);
                region.run().unwrap();
                let r2 = probe.last_run_record().unwrap();
                let on = |r: &RunRecord| r.assignment.iter().filter(|&&n| n == holder).count();
                let counts = (holder, on(&r1), on(&r2));
                probe.shutdown();
                counts
            };
            assert!(holder >= 1);
            // Design preconditions (deterministic; loud failure beats a
            // silently vacuous test): the trigger must be unreachable in
            // region 1 and fire in region 2 with holder work still
            // outstanding, so the declaration happens mid-region.
            let kill_after = region1_tasks + 1;
            assert!(
                region2_tasks >= kill_after + 2,
                "{}: region 2 assigns only {region2_tasks} tasks to the holder; \
                 the trigger at {kill_after} would fire too close to the end",
                backend.name()
            );

            let fault_plan = FaultPlan::none().fail_after_completions(holder, kill_after);
            let config = OmpcConfig { fault_plan, ..config_for(backend) };
            let mut device = ClusterDevice::with_config(2, config);
            let sum = register_sum(&device);
            let input = device.enter_data_f64s(&[1.0, 2.0, 3.0]);

            // Region 1: completes cleanly; `input` becomes resident on the
            // doomed holder.
            let (transfers, outputs) = run_reader_regions(&device, sum, input, 1);
            assert_eq!(transfers, vec![1], "{}", backend.name());
            assert_eq!(outputs, vec![6.0], "{}", backend.name());
            assert!(device.last_run_record().unwrap().failures.is_empty(), "{}", backend.name());

            // Region 2: the holder's retirements trip the trigger
            // mid-region. Recovery must re-execute the lost readers on the
            // survivor and re-source `input` there.
            let mut region = device.target_region();
            let outs = build_reader_triplets(&mut region, sum, input, READERS);
            region.run().unwrap();
            let record = device.last_run_record().unwrap();
            assert_eq!(record.failures.len(), 1, "{}", backend.name());
            assert_eq!(record.failures[0].node, holder, "{}", backend.name());
            assert!(!record.reexecuted.is_empty(), "{}: lost work must re-run", backend.name());
            let survivor = 3 - holder;
            assert!(
                record
                    .buffer_transfers(input)
                    .iter()
                    .any(|t| t.reason == TransferReason::Input && t.to == survivor),
                "{}: the resident input must be re-sourced onto the survivor, got {:?}",
                backend.name(),
                record.buffer_transfers(input)
            );
            for out in outs {
                assert_eq!(
                    device.buffer_f64s(out).unwrap(),
                    vec![6.0],
                    "{}: recovered outputs must be byte-correct",
                    backend.name()
                );
            }
            assert_eq!(device.alive_workers(), vec![survivor], "{}", backend.name());
            device.shutdown();
        }
    });
}

/// Regression: a kernel that resizes its buffer on the device must not
/// leave the transfer log carrying the stale mapped size. The first
/// retrieval of the resized data observes the real byte count before the
/// record is written, so the `Retrieve` entry logs the bytes that actually
/// crossed the wire — on both real backends.
#[test]
fn resized_device_buffers_log_their_real_transfer_bytes() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let mut device = ClusterDevice::with_config(2, config_for(backend));
            let grow = device.register_kernel_fn("grow", 1e-6, |args| {
                args.set_f64s(0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
            });
            let mut region = device.target_region();
            // Mapped as 2 f64s (16 bytes); the kernel grows it to 5 (40).
            let a = region.map_to_f64s(&[0.0, 0.0]);
            region.target(grow, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(
                device.buffer_f64s(a).unwrap(),
                vec![1.0, 2.0, 3.0, 4.0, 5.0],
                "{}: the resized bytes must land on the host",
                backend.name()
            );
            let record = device.last_run_record().unwrap();
            let retrieves: Vec<TransferRecord> = record
                .buffer_transfers(a)
                .iter()
                .filter(|t| t.reason == TransferReason::Retrieve)
                .cloned()
                .collect();
            assert!(!retrieves.is_empty(), "{}: map_from must log a retrieval", backend.name());
            assert!(
                retrieves.iter().all(|t| t.bytes == 40),
                "{}: the retrieval must log the resized 40 bytes, got {:?}",
                backend.name(),
                retrieves
            );
            device.shutdown();
        }
    });
}

/// The region epoch is observable bookkeeping: `enter_data` before any
/// region stamps epoch 0, and each region execution advances the device's
/// epoch exactly once (exposed indirectly through transfer records staying
/// per-run).
#[test]
fn repeated_workload_runs_do_not_leak_residency_state() {
    with_timeout(WATCHDOG, || {
        // `run_workload` materializes private buffers; running it twice on
        // one device must produce identical records — including the
        // transfer log — because the first run's state is fully released.
        let mut g = ompc::sched::TaskGraph::new();
        for _ in 0..4 {
            g.add_task(0.001);
        }
        g.add_edge(0, 1, 2048);
        g.add_edge(1, 2, 2048);
        g.add_edge(2, 3, 2048);
        let workload = WorkloadGraph::new(g, vec![2048; 4]);
        let plan = RuntimePlan { assignment: vec![1, 2, 1, 2], window: 1 };
        for backend in REAL_BACKENDS {
            let mut device = ClusterDevice::with_config(2, config_for(backend));
            let first = device.run_workload(&workload, &plan).unwrap();
            let second = device.run_workload(&workload, &plan).unwrap();
            assert_eq!(
                first.transfers,
                second.transfers,
                "{}: a re-run must re-pay exactly the same transfers",
                backend.name()
            );
            assert!(first.transfer_count() > 0 && first.transfer_bytes() > 0);
            device.shutdown();
        }
    });
}
