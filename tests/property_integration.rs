//! Cross-crate property-based tests: invariants that must hold for any
//! workload the Task Bench generator can produce.
//!
//! The build environment has no crate registry, so instead of `proptest`
//! these properties are exercised over a deterministic sweep of pseudo-random
//! configurations drawn from a seeded xorshift generator. Failures print the
//! offending seed so a case can be replayed exactly.

use ompc::baselines::{block_assignment, BaselineRuntime, MpiSyncRuntime, StarPuRuntime};
use ompc::prelude::*;
use ompc::sched::{HeftScheduler, Platform, Scheduler};
use ompc::sim::ClusterConfig;
use ompc::taskbench::{generate_workload, DependencePattern, TaskBenchConfig};
use ompc_testutil::Rng;

/// The same configuration space the proptest strategy used to cover:
/// every paper pattern, widths 1–11, steps 1–7, iteration counts up to
/// 5M, and edge payloads up to 4 MB.
fn arbitrary_config(rng: &mut Rng) -> TaskBenchConfig {
    let pattern = DependencePattern::paper_patterns()[rng.range(0, 4) as usize];
    let width = rng.range(1, 12) as usize;
    let steps = rng.range(1, 8) as usize;
    let iterations = rng.range(1, 5_000_000);
    let bytes = rng.range(0, 4_000_000);
    TaskBenchConfig::new(pattern, width, steps, iterations, bytes)
}

const CASES: u64 = 24;

/// HEFT always produces a dependence- and capacity-respecting schedule for
/// any Task Bench graph.
#[test]
fn heft_schedules_any_taskbench_graph() {
    for seed in 0..CASES {
        let config = arbitrary_config(&mut Rng::new(seed));
        let workload = generate_workload(&config);
        let platform = Platform::cluster(7);
        let schedule = HeftScheduler::new().schedule(&workload.graph, &platform);
        assert!(
            schedule.validate(&workload.graph, &platform).is_ok(),
            "seed {seed}: invalid HEFT schedule"
        );
        assert_eq!(schedule.len(), workload.len(), "seed {seed}");
    }
}

/// The simulated OMPC runtime executes every task exactly once and its
/// makespan is never below the critical-path compute time.
#[test]
fn simulated_ompc_respects_critical_path() {
    for seed in 0..CASES {
        let config = arbitrary_config(&mut Rng::new(seed));
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(5);
        let result =
            simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default())
                .unwrap();
        assert_eq!(result.stats.total_tasks(), workload.len() as u64, "seed {seed}");
        let critical = workload.graph.critical_path_cost();
        assert!(
            result.makespan.as_secs_f64() + 1e-9 >= critical,
            "seed {seed}: makespan {} below critical path {critical}",
            result.makespan
        );
        // The head node never executes target tasks.
        assert_eq!(result.stats.nodes[0].tasks_executed, 0, "seed {seed}");
    }
}

/// Every baseline runtime also executes every task exactly once, and no
/// runtime beats the critical-path lower bound.
#[test]
fn baselines_respect_critical_path() {
    for seed in 0..CASES {
        let config = arbitrary_config(&mut Rng::new(seed));
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(5);
        let assignment = block_assignment(config.width, config.steps, 5);
        let critical = workload.graph.critical_path_cost();
        for runtime in [
            Box::new(MpiSyncRuntime::new()) as Box<dyn BaselineRuntime>,
            Box::new(StarPuRuntime::new()),
        ] {
            let r = runtime.run(&workload, &cluster, &assignment);
            assert_eq!(r.stats.total_tasks(), workload.len() as u64, "seed {seed}");
            assert!(
                r.makespan.as_secs_f64() + 1e-9 >= critical,
                "seed {seed}: baseline beat the critical path"
            );
        }
    }
}

/// Simulation determinism across repeated runs, for any workload.
#[test]
fn simulation_is_deterministic() {
    for seed in 0..CASES {
        let config = arbitrary_config(&mut Rng::new(seed));
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(4);
        let a =
            simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default())
                .unwrap();
        let b =
            simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default())
                .unwrap();
        assert_eq!(a, b, "seed {seed}: simulation not deterministic");
    }
}
