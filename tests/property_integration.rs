//! Cross-crate property-based tests: invariants that must hold for any
//! workload the Task Bench generator can produce.

use ompc::baselines::{block_assignment, BaselineRuntime, MpiSyncRuntime, StarPuRuntime};
use ompc::prelude::*;
use ompc::sched::{HeftScheduler, Platform, Scheduler};
use ompc::sim::ClusterConfig;
use ompc::taskbench::{generate_workload, DependencePattern, TaskBenchConfig};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = TaskBenchConfig> {
    (0usize..4, 1usize..12, 1usize..8, 1u64..5_000_000, 0u64..4_000_000).prop_map(
        |(pattern_idx, width, steps, iterations, bytes)| {
            TaskBenchConfig::new(
                DependencePattern::paper_patterns()[pattern_idx],
                width,
                steps,
                iterations,
                bytes,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HEFT always produces a dependence- and capacity-respecting schedule
    /// for any Task Bench graph.
    #[test]
    fn heft_schedules_any_taskbench_graph(config in arbitrary_config()) {
        let workload = generate_workload(&config);
        let platform = Platform::cluster(7);
        let schedule = HeftScheduler::new().schedule(&workload.graph, &platform);
        prop_assert!(schedule.validate(&workload.graph, &platform).is_ok());
        prop_assert_eq!(schedule.len(), workload.len());
    }

    /// The simulated OMPC runtime executes every task exactly once and its
    /// makespan is never below the critical-path compute time.
    #[test]
    fn simulated_ompc_respects_critical_path(config in arbitrary_config()) {
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(5);
        let result = simulate_ompc(
            &workload,
            &cluster,
            &OmpcConfig::default(),
            &OverheadModel::default(),
        );
        prop_assert_eq!(result.stats.total_tasks(), workload.len() as u64);
        let critical = workload.graph.critical_path_cost();
        prop_assert!(result.makespan.as_secs_f64() + 1e-9 >= critical);
        // The head node never executes target tasks.
        prop_assert_eq!(result.stats.nodes[0].tasks_executed, 0);
    }

    /// Every baseline runtime also executes every task exactly once, and no
    /// runtime beats the critical-path lower bound.
    #[test]
    fn baselines_respect_critical_path(config in arbitrary_config()) {
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(5);
        let assignment = block_assignment(config.width, config.steps, 5);
        let critical = workload.graph.critical_path_cost();
        for runtime in [
            Box::new(MpiSyncRuntime::new()) as Box<dyn BaselineRuntime>,
            Box::new(StarPuRuntime::new()),
        ] {
            let r = runtime.run(&workload, &cluster, &assignment);
            prop_assert_eq!(r.stats.total_tasks(), workload.len() as u64);
            prop_assert!(r.makespan.as_secs_f64() + 1e-9 >= critical);
        }
    }

    /// Simulation determinism across repeated runs, for any workload.
    #[test]
    fn simulation_is_deterministic(config in arbitrary_config()) {
        let workload = generate_workload(&config);
        let cluster = ClusterConfig::santos_dumont(4);
        let a = simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default());
        let b = simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default());
        prop_assert_eq!(a, b);
    }
}
