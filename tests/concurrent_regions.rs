//! Concurrent target regions over one shared device: the acceptance suite
//! for the multi-tenant refactor. N client threads calling
//! [`TargetRegion::run_recorded`] on the same [`ClusterDevice`] must
//! produce per-client results, run records, and transfer plans
//! byte-identical to running the same clients serially — on both real
//! backends, under seeded interleavings, inside ompc-testutil's 120 s
//! watchdog.
//!
//! What the identity tests deliberately do *not* compare: telemetry spans
//! and the [`RegionReport`] event-counter deltas (`data_events`,
//! `bytes_moved`). Those are global-counter snapshots and interleave under
//! overlap by design — see ARCHITECTURE.md, "Concurrent regions and
//! admission control".

use ompc::prelude::*;
use ompc_testutil::{with_timeout, Rng};
use std::sync::mpsc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);
const REAL_BACKENDS: [BackendKind; 2] = [BackendKind::Threaded, BackendKind::Mpi];

/// Everything one client observes from its own region execution, with
/// buffer ids rewritten to client-local indices so runs on different
/// devices (whose global registries hand out different ids, especially
/// when registrations interleave) compare equal.
#[derive(Debug, Clone, PartialEq)]
struct ClientOutcome {
    output: Vec<f64>,
    assignment: Vec<NodeId>,
    completion_order: Vec<usize>,
    /// `(client-local buffer index, from, to, bytes, reason)`, sorted.
    transfers: Vec<(usize, NodeId, NodeId, u64, String)>,
}

/// Normalize a record's transfer log against the client's own buffers.
/// Panics if the region's log mentions a buffer the client never mapped —
/// that would be cross-tenant leakage between transfer-log namespaces.
fn normalize_transfers(
    record: &RunRecord,
    buffers: &[BufferId],
) -> Vec<(usize, NodeId, NodeId, u64, String)> {
    let mut out: Vec<_> = record
        .transfers
        .iter()
        .map(|t| {
            let local = buffers
                .iter()
                .position(|&b| b == t.buffer)
                .unwrap_or_else(|| panic!("foreign buffer {} in this client's log", t.buffer));
            (local, t.from, t.to, t.bytes, format!("{:?}", t.reason))
        })
        .collect();
    out.sort();
    out
}

/// The per-client workload: a three-buffer chain `sum -> double` whose
/// result is `2 * sum(values)`. Disjoint buffers per client, so every
/// tenant is independent (the supported concurrent-tenancy shape).
fn run_client(
    device: &ClusterDevice,
    sum: KernelId,
    double: KernelId,
    values: &[f64],
) -> (u64, ClientOutcome) {
    let mut region = device.target_region();
    let input = region.map_to_f64s(values);
    let mid = region.map_alloc(8);
    let out = region.map_alloc(8);
    region.target(sum, vec![Dependence::input(input), Dependence::output(mid)]);
    region.target(double, vec![Dependence::input(mid), Dependence::output(out)]);
    region.map_from(out);
    let (report, record) = region.run_recorded().unwrap();
    let outcome = ClientOutcome {
        output: device.buffer_f64s(out).unwrap(),
        assignment: record.assignment.clone(),
        completion_order: record.completion_order.clone(),
        transfers: normalize_transfers(&record, &[input, mid, out]),
    };
    (report.region, outcome)
}

fn register_kernels(device: &ClusterDevice) -> (KernelId, KernelId) {
    let sum = device.register_kernel_fn("sum", 1e-6, |args| {
        let total: f64 = args.as_f64s(0).iter().sum();
        args.set_f64s(1, &[total]);
    });
    let double = device.register_kernel_fn("double", 1e-6, |args| {
        args.set_f64s(1, &[args.as_f64s(0)[0] * 2.0]);
    });
    (sum, double)
}

fn config_for(backend: BackendKind, clients: usize) -> OmpcConfig {
    OmpcConfig {
        backend,
        max_concurrent_regions: clients,
        // A serial dispatch window keeps each region's completion order
        // deterministic, so the serial-vs-concurrent comparison is exact.
        max_inflight_tasks: Some(1),
        ..OmpcConfig::small()
    }
}

/// Run `clients` on one device, serially in client order.
fn serial_outcomes(
    backend: BackendKind,
    workers: usize,
    clients: &[Vec<f64>],
) -> Vec<ClientOutcome> {
    let mut device = ClusterDevice::with_config(workers, config_for(backend, 1));
    let (sum, double) = register_kernels(&device);
    let outcomes: Vec<ClientOutcome> =
        clients.iter().map(|vals| run_client(&device, sum, double, vals).1).collect();
    device.shutdown();
    outcomes
}

/// Run `clients` on one device concurrently (one thread per client, all
/// admitted at once), returning per-client `(region id, outcome)`.
fn concurrent_outcomes(
    backend: BackendKind,
    workers: usize,
    clients: &[Vec<f64>],
    stagger_us: &[u64],
) -> Vec<(u64, ClientOutcome)> {
    let mut device = ClusterDevice::with_config(workers, config_for(backend, clients.len()));
    let (sum, double) = register_kernels(&device);
    let mut results: Vec<Option<(u64, ClientOutcome)>> = vec![None; clients.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(i, vals)| {
                let device = &device;
                let delay = Duration::from_micros(stagger_us[i % stagger_us.len()]);
                scope.spawn(move || {
                    std::thread::sleep(delay);
                    run_client(device, sum, double, vals)
                })
            })
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().unwrap());
        }
    });
    device.shutdown();
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// Three overlapped clients on a single worker must be byte-identical to
/// the same three clients run serially, on both real backends, and their
/// reports must carry three distinct non-zero region ids.
#[test]
fn overlapped_clients_match_serial_byte_for_byte() {
    with_timeout(WATCHDOG, || {
        let clients: Vec<Vec<f64>> =
            vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0], vec![5.0, 5.0, 5.0, 5.0]];
        for backend in REAL_BACKENDS {
            let serial = serial_outcomes(backend, 1, &clients);
            let concurrent = concurrent_outcomes(backend, 1, &clients, &[0, 150, 300]);
            let mut regions: Vec<u64> = concurrent.iter().map(|(r, _)| *r).collect();
            for (i, ((region, got), want)) in concurrent.iter().zip(&serial).enumerate() {
                assert_ne!(*region, 0, "{}: client {i} got the default epoch", backend.name());
                assert_eq!(got, want, "{}: client {i} diverged from serial", backend.name());
                assert_eq!(got.output, vec![2.0 * clients[i].iter().sum::<f64>()]);
            }
            regions.sort_unstable();
            regions.dedup();
            assert_eq!(regions.len(), clients.len(), "{}: region ids collided", backend.name());
        }
    });
}

/// Seeded interleavings: random client counts, payloads, and start
/// staggers. Every interleaving must reproduce the serial outcomes
/// exactly, on both real backends.
#[test]
fn seeded_interleavings_match_serial() {
    with_timeout(WATCHDOG, || {
        for seed in 0..4u64 {
            let mut rng = Rng::new(0x5eed_0000 + seed);
            let clients: Vec<Vec<f64>> = (0..rng.range_usize(2, 5))
                .map(|_| {
                    (0..rng.range_usize(1, 6)).map(|i| rng.range(0, 50) as f64 + i as f64).collect()
                })
                .collect();
            let stagger: Vec<u64> = (0..clients.len()).map(|_| rng.range(0, 800)).collect();
            for backend in REAL_BACKENDS {
                let serial = serial_outcomes(backend, 1, &clients);
                let concurrent = concurrent_outcomes(backend, 1, &clients, &stagger);
                for (i, ((_, got), want)) in concurrent.iter().zip(&serial).enumerate() {
                    assert_eq!(
                        got,
                        want,
                        "seed {seed} {}: client {i} diverged from serial",
                        backend.name()
                    );
                }
            }
        }
    });
}

/// With `max_concurrent_regions: 1` the admission gate serializes eager
/// clients FIFO: all of them complete, with distinct region epochs, and
/// the device-level epoch counter advances once per client.
#[test]
fn admission_gate_serializes_when_limit_is_one() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let clients: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64 + 1.0]).collect();
            let mut device = ClusterDevice::with_config(
                1,
                OmpcConfig { max_concurrent_regions: 1, ..config_for(backend, 1) },
            );
            let (sum, double) = register_kernels(&device);
            let mut results: Vec<(u64, ClientOutcome)> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = clients
                    .iter()
                    .map(|vals| {
                        let device = &device;
                        scope.spawn(move || run_client(device, sum, double, vals))
                    })
                    .collect();
                for handle in handles {
                    results.push(handle.join().unwrap());
                }
            });
            let epoch = device.region_epoch();
            device.shutdown();
            assert_eq!(epoch, clients.len() as u64, "{}", backend.name());
            let mut regions: Vec<u64> = results.iter().map(|(r, _)| *r).collect();
            regions.sort_unstable();
            assert_eq!(regions, vec![1, 2, 3], "{}", backend.name());
            for (i, (_, outcome)) in results.iter().enumerate() {
                assert_eq!(outcome.output, vec![2.0 * clients[i][0]], "{}", backend.name());
            }
        }
    });
}

/// Load-aware incremental scheduling: while region 1's long kernel holds
/// worker 1, an overlapped region admitted mid-flight must see region 1's
/// reserved load and place its own kernel on the *other* worker.
#[test]
fn overlapped_region_is_planned_around_inflight_load() {
    with_timeout(WATCHDOG, || {
        let mut device = ClusterDevice::with_config(
            2,
            OmpcConfig {
                backend: BackendKind::Threaded,
                max_concurrent_regions: 2,
                ..OmpcConfig::small()
            },
        );
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let started_tx = std::sync::Mutex::new(started_tx);
        let release_rx = std::sync::Mutex::new(release_rx);
        let blocker = device.register_kernel_fn("blocker", 10.0, move |args| {
            started_tx.lock().unwrap().send(()).unwrap();
            release_rx.lock().unwrap().recv().unwrap();
            args.set_f64s(0, &[1.0]);
        });
        let quick = device.register_kernel_fn("quick", 1e-6, |args| {
            args.set_f64s(0, &[2.0]);
        });

        std::thread::scope(|scope| {
            let device_ref = &device;
            let long_region = scope.spawn(move || {
                let mut region = device_ref.target_region();
                let out = region.map_alloc(8);
                let t = region.target(blocker, vec![Dependence::output(out)]);
                let (_, record) = region.run_recorded().unwrap();
                record.assignment[t.0]
            });
            // Only launch the second client once region 1's kernel is
            // actually executing, so its reserved load is registered.
            started_rx.recv().unwrap();
            let mut region = device.target_region();
            let out = region.map_alloc(8);
            let t = region.target(quick, vec![Dependence::output(out)]);
            let (_, record) = region.run_recorded().unwrap();
            let quick_node = record.assignment[t.0];
            release_tx.send(()).unwrap();
            let blocker_node = long_region.join().unwrap();
            assert_ne!(
                quick_node, blocker_node,
                "the overlapped region must be planned around the in-flight load"
            );
        });
        device.shutdown();
    });
}

/// The supported shared-buffer tenancy shape: a buffer whose device
/// placement is already settled (here: made resident by an earlier,
/// completed region) can be read by overlapped tenants with **no**
/// retransfer — residency is shared, and neither tenant's transfer log
/// mentions the shared buffer.
#[test]
fn overlapped_tenants_share_settled_resident_buffer() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let mut device = ClusterDevice::with_config(1, config_for(backend, 2));
            let sum = device.register_kernel_fn("sum", 1e-6, |args| {
                let total: f64 = args.as_f64s(0).iter().sum();
                args.set_f64s(1, &[total]);
            });
            // Settle the shared input on the worker first.
            let shared = {
                let mut region = device.target_region();
                let shared = region.map_to_resident_f64s(&[3.0, 4.0]);
                let out = region.map_alloc(8);
                region.target(sum, vec![Dependence::input(shared), Dependence::output(out)]);
                region.map_from(out);
                region.run().unwrap();
                shared
            };
            let outcomes: Vec<(Vec<f64>, Vec<TransferRecord>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let device = &device;
                        scope.spawn(move || {
                            let mut region = device.target_region();
                            let out = region.map_alloc(8);
                            region.target(
                                sum,
                                vec![Dependence::input(shared), Dependence::output(out)],
                            );
                            region.map_from(out);
                            let (_, record) = region.run_recorded().unwrap();
                            (device.buffer_f64s(out).unwrap(), record.transfers)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            device.shutdown();
            for (output, transfers) in &outcomes {
                assert_eq!(output, &vec![7.0], "{}", backend.name());
                assert!(
                    transfers.iter().all(|t| t.buffer != shared),
                    "{}: a settled resident buffer must not be retransferred",
                    backend.name()
                );
            }
        }
    });
}
