//! Backend-equivalence properties of the unified execution core: for the
//! same seeded workload and the same [`RuntimePlan`], the simulated
//! backend, the real threaded backend, and the message-passing MPI backend
//! must make identical scheduling and dispatch decisions — the acceptance
//! bar for the `RuntimeCore` / `ExecutionBackend` refactor, now three
//! backends wide. The cross-backend sweeps run under ompc-testutil's 120 s
//! watchdog so a protocol hang fails fast.

use ompc::prelude::*;
use ompc::sched::{Platform, TaskGraph};
use ompc::sim::ClusterConfig;
use ompc_testutil::{with_timeout, Rng};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

/// Execute `workload` under `plan` on a real device with the given
/// backend, returning the decision record.
fn device_record(
    backend: BackendKind,
    workers: usize,
    config: &OmpcConfig,
    workload: &WorkloadGraph,
    plan: &RuntimePlan,
) -> RunRecord {
    let mut device = ClusterDevice::with_config(workers, OmpcConfig { backend, ..config.clone() });
    let record = device.run_workload(workload, plan).unwrap();
    device.shutdown();
    record
}

/// A random layered DAG whose edges always point forward and carry the
/// producer's output size — the shape both backends can execute (the
/// threaded one materializes it as a region of per-task output buffers).
fn random_workload(rng: &mut Rng) -> WorkloadGraph {
    let tasks = rng.range(2, 14) as usize;
    let mut graph = TaskGraph::new();
    let mut output_bytes = Vec::with_capacity(tasks);
    for _ in 0..tasks {
        graph.add_task(rng.range(1, 40) as f64 * 1e-4);
        output_bytes.push(rng.range(1, 64) * 1024);
    }
    // Edges grouped by consumer, predecessors ascending, so the scheduler
    // sees the same adjacency order the region materialization produces.
    for t in 1..tasks {
        let max_preds = t.min(3);
        let preds = rng.range(0, max_preds as u64 + 1) as usize;
        let mut chosen: Vec<usize> = (0..preds).map(|_| rng.range(0, t as u64) as usize).collect();
        chosen.sort_unstable();
        chosen.dedup();
        for p in chosen {
            graph.add_edge(p, t, output_bytes[p]);
        }
    }
    WorkloadGraph::new(graph, output_bytes)
}

fn is_topological(order: &[usize], workload: &WorkloadGraph) -> bool {
    let pos: std::collections::HashMap<usize, usize> =
        order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    workload.graph.edges().iter().all(|e| pos[&e.from] < pos[&e.to])
}

/// The input-forward transfers of a record — the transfer-plan surface all
/// three backends share for a workload run. (Enter-data and retrieval
/// records are modelled differently by design: the simulator distributes
/// root inputs and retrieves sink outputs, while the materialized region
/// allocates root outputs in place and has no exit tasks.)
fn input_transfers(record: &RunRecord) -> Vec<TransferRecord> {
    record.transfers_with_reason(TransferReason::Input)
}

/// With a serial dispatch window all three backends must agree on
/// everything: the HEFT assignment, the dispatch order, and the
/// task-completion order.
#[test]
fn backends_agree_on_assignment_and_completion_order() {
    with_timeout(WATCHDOG, || {
        for seed in 0..10u64 {
            let mut rng = Rng::new(seed);
            let workload = random_workload(&mut rng);
            let workers = rng.range(2, 5) as usize;
            let platform = Platform::cluster(workers);
            let mut config = OmpcConfig::small();
            config.max_inflight_tasks = Some(1);

            // The scheduler is deterministic: planning twice from the same
            // inputs gives the same plan.
            let plan = RuntimePlan::for_workload(&workload, &platform, &config);
            let replan = RuntimePlan::for_workload(&workload, &platform, &config);
            assert_eq!(plan, replan, "seed {seed}: scheduling is not deterministic");
            assert!(
                plan.assignment.iter().all(|&n| n >= 1 && n <= workers),
                "seed {seed}: tasks must be assigned to worker nodes"
            );

            let cluster = ClusterConfig::santos_dumont(workers + 1);
            let (sim_result, sim_record) = simulate_ompc_with_plan(
                &workload,
                &cluster,
                &config,
                &OverheadModel::default(),
                &plan,
            )
            .unwrap();
            assert_eq!(sim_result.stats.total_tasks(), workload.len() as u64, "seed {seed}");

            for backend in [BackendKind::Threaded, BackendKind::Mpi] {
                let record = device_record(backend, workers, &config, &workload, &plan);
                let name = backend.name();
                assert_eq!(
                    sim_record.assignment, record.assignment,
                    "seed {seed}: sim and {name} disagree on the HEFT assignment"
                );
                assert_eq!(
                    sim_record.dispatch_order, record.dispatch_order,
                    "seed {seed}: sim and {name} disagree on the dispatch order"
                );
                assert_eq!(
                    sim_record.completion_order, record.completion_order,
                    "seed {seed}: sim and {name} disagree on the task-completion order"
                );
                // With a serial window the transfer *plans* agree exactly:
                // same buffers, same sources, same destinations, same
                // sizes, in the same order.
                assert_eq!(
                    input_transfers(&sim_record),
                    input_transfers(&record),
                    "seed {seed}: sim and {name} disagree on the input-transfer plan"
                );
            }
            assert_eq!(sim_record.peak_in_flight, 1, "seed {seed}");
            assert!(is_topological(&sim_record.completion_order, &workload), "seed {seed}");
        }
    });
}

/// With a wide window the threaded and MPI completion orders become timing
/// dependent, but every backend must still execute every task exactly once
/// in a dependence-respecting order, under the configured window bound.
#[test]
fn backends_respect_dependences_under_wide_windows() {
    with_timeout(WATCHDOG, || {
        for seed in 0..6u64 {
            let mut rng = Rng::new(1000 + seed);
            let workload = random_workload(&mut rng);
            let workers = 3;
            let platform = Platform::cluster(workers);
            let mut config = OmpcConfig::small();
            config.max_inflight_tasks = Some(4);
            let plan = RuntimePlan::for_workload(&workload, &platform, &config);
            let cluster = ClusterConfig::santos_dumont(workers + 1);

            let (_, sim_record) = simulate_ompc_with_plan(
                &workload,
                &cluster,
                &config,
                &OverheadModel::default(),
                &plan,
            )
            .unwrap();
            let threaded_record =
                device_record(BackendKind::Threaded, workers, &config, &workload, &plan);
            let mpi_record = device_record(BackendKind::Mpi, workers, &config, &workload, &plan);

            for (name, record) in
                [("sim", &sim_record), ("threaded", &threaded_record), ("mpi", &mpi_record)]
            {
                let mut seen = record.completion_order.clone();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..workload.len()).collect::<Vec<_>>(),
                    "seed {seed}: {name} backend did not execute every task exactly once"
                );
                assert!(
                    is_topological(&record.completion_order, &workload),
                    "seed {seed}: {name} backend violated a dependence"
                );
                assert!(
                    record.peak_in_flight <= 4,
                    "seed {seed}: {name} backend exceeded the in-flight window"
                );
                // The assignment is static, so it matches exactly.
                assert_eq!(sim_record.assignment, record.assignment, "seed {seed}: {name}");
                // Under a wide window the planning *order* is timing
                // dependent, but the transfer plan as a set is not: the
                // same bytes move between the same nodes in every backend.
                let sort = |mut v: Vec<TransferRecord>| {
                    v.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
                    v
                };
                assert_eq!(
                    sort(input_transfers(&sim_record)),
                    sort(input_transfers(record)),
                    "seed {seed}: {name} backend moved a different input-transfer set"
                );
            }
        }
    });
}

/// Task-train batching is a message-*packaging* optimisation only: with
/// batching on or off, the MPI backend must produce the same decisions as
/// the simulated and threaded backends — strict equality of dispatch and
/// completion orders at a serial window, set-equality of the transfer plan
/// (and a dependence-respecting completion permutation) at a wide window.
#[test]
fn task_train_batching_matrix_is_equivalent_three_ways() {
    with_timeout(WATCHDOG, || {
        for seed in 0..6u64 {
            let mut rng = Rng::new(2000 + seed);
            let workload = random_workload(&mut rng);
            let workers = rng.range(2, 5) as usize;
            let platform = Platform::cluster(workers);
            let cluster = ClusterConfig::santos_dumont(workers + 1);
            for (window, strict) in [(1usize, true), (4, false)] {
                let mut config = OmpcConfig::small();
                config.max_inflight_tasks = Some(window);
                let plan = RuntimePlan::for_workload(&workload, &platform, &config);
                let (_, sim_record) = simulate_ompc_with_plan(
                    &workload,
                    &cluster,
                    &config,
                    &OverheadModel::default(),
                    &plan,
                )
                .unwrap();
                let threaded_record =
                    device_record(BackendKind::Threaded, workers, &config, &workload, &plan);
                for batching in [true, false] {
                    let mpi_config = OmpcConfig { task_train_batching: batching, ..config.clone() };
                    let record =
                        device_record(BackendKind::Mpi, workers, &mpi_config, &workload, &plan);
                    let tag = format!("seed {seed} window {window} batching {batching}");
                    assert_eq!(sim_record.assignment, record.assignment, "{tag}: assignment");
                    if strict {
                        assert_eq!(
                            sim_record.dispatch_order, record.dispatch_order,
                            "{tag}: dispatch order"
                        );
                        assert_eq!(
                            sim_record.completion_order, record.completion_order,
                            "{tag}: completion order"
                        );
                        assert_eq!(
                            threaded_record.completion_order, record.completion_order,
                            "{tag}: threaded vs mpi completion order"
                        );
                        assert_eq!(
                            input_transfers(&sim_record),
                            input_transfers(&record),
                            "{tag}: input-transfer plan"
                        );
                    } else {
                        let mut seen = record.completion_order.clone();
                        seen.sort_unstable();
                        assert_eq!(
                            seen,
                            (0..workload.len()).collect::<Vec<_>>(),
                            "{tag}: every task exactly once"
                        );
                        assert!(
                            is_topological(&record.completion_order, &workload),
                            "{tag}: dependence-respecting completion order"
                        );
                        assert!(record.peak_in_flight <= window, "{tag}: window bound");
                        let sort = |mut v: Vec<TransferRecord>| {
                            v.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
                            v
                        };
                        assert_eq!(
                            sort(input_transfers(&sim_record)),
                            sort(input_transfers(&record)),
                            "{tag}: input-transfer set"
                        );
                    }
                }
            }
        }
    });
}

/// The simulated §7 reproduction: with the legacy libomptarget-style window
/// the makespan of a wide graph degrades, and the recorded peak concurrency
/// honours `max_inflight_tasks` in both modes.
#[test]
fn window_is_honored_and_bottleneck_reproduces() {
    let mut rng = Rng::new(42);
    // A wide, shallow workload: plenty of available parallelism.
    let width = 24usize;
    let mut graph = TaskGraph::new();
    let mut output_bytes = Vec::new();
    for _ in 0..width {
        graph.add_task(2e-3);
        output_bytes.push(rng.range(1, 8) * 1024);
    }
    let workload = WorkloadGraph::new(graph, output_bytes);
    let cluster = ClusterConfig::santos_dumont(9);

    let run = |window: usize| {
        let config = OmpcConfig { max_inflight_tasks: Some(window), ..OmpcConfig::default() };
        simulate_ompc_recorded(&workload, &cluster, &config, &OverheadModel::default()).unwrap()
    };
    let (narrow_result, narrow_record) = run(2);
    let (wide_result, wide_record) = run(width);
    assert_eq!(narrow_record.peak_in_flight, 2);
    assert!(wide_record.peak_in_flight > 2);
    assert!(
        narrow_result.makespan > wide_result.makespan,
        "the narrow window must reproduce the head-node bottleneck"
    );

    // The threaded and MPI backends honour the same bound.
    let mut config = OmpcConfig::small();
    config.max_inflight_tasks = Some(2);
    let platform = Platform::cluster(3);
    let plan = RuntimePlan::for_workload(&workload, &platform, &config);
    for backend in [BackendKind::Threaded, BackendKind::Mpi] {
        let record = device_record(backend, 3, &config, &workload, &plan);
        assert!(record.peak_in_flight <= 2, "{}", backend.name());
    }
}

/// Asynchronous enter-data is a data-*timing* optimisation only: with
/// `enter_data_async` on or off, both real backends must produce the same
/// region assignments, the same outputs, and the same per-region transfer
/// plans as the synchronous threaded reference — exact order at a serial
/// window, set equality at a wide one. This mirrors the task-train
/// batching matrix above: the async data path may overlap transfers with
/// anything, but it may never change what moves where.
#[test]
fn async_enter_data_matrix_is_equivalent() {
    /// Run the seeded enter/consume script: interleaved device-level
    /// enter-data calls (async when the flag is on) and single-reader
    /// regions consuming the entered buffers oldest first.
    fn enter_data_script(
        backend: BackendKind,
        window: usize,
        enter_async: bool,
        seed: u64,
    ) -> (Vec<Vec<usize>>, Vec<Vec<TransferRecord>>, Vec<f64>) {
        let mut rng = Rng::new(seed);
        let workers = rng.range(2, 4) as usize;
        let config = OmpcConfig {
            backend,
            enter_data_async: enter_async,
            max_inflight_tasks: Some(window),
            ..OmpcConfig::small()
        };
        let mut device = ClusterDevice::with_config(workers, config);
        let sum = device.register_kernel_fn("sum", 1e-6, |args| {
            let total: f64 = args.as_f64s(0).iter().sum();
            args.set_f64s(1, &[total]);
        });
        let mut pending: Vec<BufferId> = Vec::new();
        let mut assignments = Vec::new();
        let mut transfers = Vec::new();
        let mut outputs = Vec::new();
        let mut consume = |device: &ClusterDevice, input: BufferId| {
            let mut region = device.target_region();
            let out = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
            region.map_from(out);
            region.run().unwrap();
            let record = device.last_run_record().unwrap();
            assignments.push(record.assignment);
            transfers.push(record.transfers);
            outputs.push(device.buffer_f64s(out).unwrap()[0]);
        };
        for _ in 0..10 {
            if rng.range(0, 2) == 0 || pending.is_empty() {
                let len = rng.range(1, 6) as usize;
                let vals: Vec<f64> =
                    (0..len).map(|i| rng.range(0, 100) as f64 + i as f64).collect();
                // Routed through `enter_data_async` when the flag is on;
                // the first region reader awaits the in-flight transfer.
                pending.push(device.enter_data_f64s(&vals));
            } else {
                let input = pending.remove(0);
                consume(&device, input);
            }
        }
        while !pending.is_empty() {
            let input = pending.remove(0);
            consume(&device, input);
        }
        device.shutdown();
        (assignments, transfers, outputs)
    }

    with_timeout(WATCHDOG, || {
        for seed in 0..4u64 {
            for (window, strict) in [(1usize, true), (4, false)] {
                let baseline = enter_data_script(BackendKind::Threaded, window, false, seed);
                for backend in [BackendKind::Threaded, BackendKind::Mpi] {
                    for enter_async in [false, true] {
                        if backend == BackendKind::Threaded && !enter_async {
                            continue; // the baseline itself
                        }
                        let got = enter_data_script(backend, window, enter_async, seed);
                        let tag = format!(
                            "seed {seed} window {window} {} async {enter_async}",
                            backend.name()
                        );
                        assert_eq!(baseline.0, got.0, "{tag}: region assignments");
                        assert_eq!(baseline.2, got.2, "{tag}: region outputs");
                        if strict {
                            assert_eq!(
                                baseline.1, got.1,
                                "{tag}: per-region transfer plan (exact order)"
                            );
                        } else {
                            let sort =
                                |regions: &[Vec<TransferRecord>]| -> Vec<Vec<TransferRecord>> {
                                    regions
                                        .iter()
                                        .map(|r| {
                                            let mut r = r.clone();
                                            r.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
                                            r
                                        })
                                        .collect()
                                };
                            assert_eq!(
                                sort(&baseline.1),
                                sort(&got.1),
                                "{tag}: per-region transfer set"
                            );
                        }
                    }
                }
            }
        }
    });
}

/// Collective distribution is a data-*movement* optimisation only: with
/// broadcast trees on or off (and with or without chunked frames), both
/// real backends must produce the same region assignment, the same
/// outputs, and the same distribution *set* — each destination receives
/// the shared buffer exactly once, with the same size and reason — while
/// below-threshold and disabled configurations stay byte-identical to the
/// star baseline. The tree's visible signature is the head link: a star
/// sources every copy from the head, a binomial tree only ⌈log₂(k+1)⌉ of
/// them.
#[test]
fn collective_distribution_matrix_is_equivalent() {
    /// One shared read-only 8 KiB input consumed by four target tasks
    /// (each with a private scale factor), returning the region
    /// assignment, the region's transfer log, and the four outputs.
    fn collective_script(
        backend: BackendKind,
        fanout: usize,
        chunk_kib: usize,
        window: usize,
    ) -> (Vec<usize>, Vec<TransferRecord>, Vec<f64>, BufferId) {
        let workers = 4;
        let config = OmpcConfig {
            backend,
            collective_min_fanout: fanout,
            collective_chunk_kib: chunk_kib,
            max_inflight_tasks: Some(window),
            ..OmpcConfig::small()
        };
        let mut device = ClusterDevice::with_config(workers, config);
        let scale = device.register_kernel_fn("scale", 1e-2, |args| {
            let total: f64 = args.as_f64s(0).iter().sum();
            let factor = args.as_f64s(1)[0];
            args.set_f64s(2, &[total * factor]);
        });
        let mut region = device.target_region();
        let vals: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let shared = region.map_to_f64s(&vals);
        let mut outs = Vec::new();
        for i in 0..4 {
            let factor = region.map_to_f64s(&[(i + 1) as f64]);
            let out = region.map_alloc(8);
            region.target(
                scale,
                vec![Dependence::input(shared), Dependence::input(factor), Dependence::output(out)],
            );
            region.map_from(out);
            outs.push(out);
        }
        region.run().unwrap();
        let record = device.last_run_record().unwrap();
        let outputs: Vec<f64> = outs.iter().map(|&o| device.buffer_f64s(o).unwrap()[0]).collect();
        device.shutdown();
        (record.assignment, record.transfers, outputs, shared)
    }

    /// The distribution surface a tree may legally reshape: who received
    /// which buffer, how many bytes, and why — but not from where.
    fn distribution(transfers: &[TransferRecord]) -> Vec<(BufferId, usize, u64, TransferReason)> {
        let mut d: Vec<_> = transfers.iter().map(|t| (t.buffer, t.to, t.bytes, t.reason)).collect();
        d.sort_unstable();
        d
    }

    with_timeout(WATCHDOG, || {
        for (window, strict) in [(1usize, true), (4, false)] {
            let baseline = collective_script(BackendKind::Threaded, 0, 0, window);
            let (_, ref base_transfers, _, shared) = baseline;
            // The star baseline sources every copy of the shared buffer
            // from the head node — the serialization the tree removes.
            let star_head_edges =
                base_transfers.iter().filter(|t| t.buffer == shared && t.from == 0).count();
            let shared_dests: std::collections::BTreeSet<usize> =
                base_transfers.iter().filter(|t| t.buffer == shared).map(|t| t.to).collect();
            assert_eq!(
                shared_dests.len(),
                4,
                "window {window}: the script must spread the shared buffer to all four \
                 workers for the matrix to exercise a fanout-4 step: {base_transfers:?}"
            );
            assert_eq!(star_head_edges, 4, "window {window}: a star is head-sourced");

            for backend in [BackendKind::Threaded, BackendKind::Mpi] {
                for (fanout, chunk_kib) in [(0usize, 0usize), (9, 1), (2, 0), (2, 1)] {
                    let got = collective_script(backend, fanout, chunk_kib, window);
                    let tag = format!(
                        "window {window} {} fanout {fanout} chunk {chunk_kib}",
                        backend.name()
                    );
                    assert_eq!(baseline.0, got.0, "{tag}: region assignment");
                    assert_eq!(baseline.2, got.2, "{tag}: task outputs");
                    let collective_on = fanout > 0 && fanout <= 4;
                    if !collective_on {
                        // Disabled or below threshold: the plan must be
                        // byte-identical to the star baseline — exact
                        // records (source included) at a serial window,
                        // the exact record set at a wide one.
                        if strict {
                            assert_eq!(baseline.1, got.1, "{tag}: transfer log (exact)");
                        } else {
                            let sort = |mut v: Vec<TransferRecord>| {
                                v.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
                                v
                            };
                            assert_eq!(
                                sort(baseline.1.clone()),
                                sort(got.1.clone()),
                                "{tag}: transfer-record set"
                            );
                        }
                        continue;
                    }
                    // Tree mode: same distribution set (every destination
                    // exactly once, same bytes, same reason)...
                    assert_eq!(
                        distribution(&baseline.1),
                        distribution(&got.1),
                        "{tag}: distribution set"
                    );
                    // ...but the head link now carries ⌈log₂ 5⌉ = 3 copies
                    // instead of 4, and the remaining edge rides a
                    // worker-to-worker relay.
                    let head_edges =
                        got.1.iter().filter(|t| t.buffer == shared && t.from == 0).count();
                    let relay_edges: Vec<&TransferRecord> =
                        got.1.iter().filter(|t| t.buffer == shared && t.from != 0).collect();
                    assert_eq!(head_edges, 3, "{tag}: tree head-link copies: {:?}", got.1);
                    assert_eq!(relay_edges.len(), 1, "{tag}: one relay edge: {:?}", got.1);
                    assert!(
                        shared_dests.contains(&relay_edges[0].from),
                        "{tag}: the relay edge must be fed by a fellow recipient: {:?}",
                        relay_edges[0]
                    );
                }
            }
        }
    });
}
