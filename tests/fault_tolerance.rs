//! Integration tests of the fault-tolerance subsystem (paper §3.1): a
//! deterministically injected worker failure must be detected by the ring
//! heartbeat, its lost work re-executed on the survivors, and the final
//! results must be byte-identical to a failure-free run — in **all three**
//! execution backends (simulated, threaded, message-passing MPI), which
//! must also agree on the recovered task sets. The cross-backend tests
//! run under ompc-testutil's 120 s watchdog.

use ompc::prelude::*;
use ompc::sched::TaskGraph;
use ompc::sim::ClusterConfig;
use ompc_testutil::with_timeout;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

fn fault_config(plan: FaultPlan) -> OmpcConfig {
    OmpcConfig { fault_plan: plan, ..OmpcConfig::small() }
}

/// Run the paper's Listing-1-style chain (`foo` then `bar` on one vector)
/// on a two-worker device, optionally killing `victim` right after its
/// `kill_after`-th task completion. Returns the final host buffer and the
/// run record.
fn run_listing1_chain(fault: Option<(usize, usize)>) -> (Vec<f64>, RunRecord) {
    run_listing1_chain_on(BackendKind::Threaded, fault)
}

/// [`run_listing1_chain`] on an explicit device backend.
fn run_listing1_chain_on(
    backend: BackendKind,
    fault: Option<(usize, usize)>,
) -> (Vec<f64>, RunRecord) {
    let plan = match fault {
        Some((victim, kill_after)) => FaultPlan::none().fail_after_completions(victim, kill_after),
        None => FaultPlan::none(),
    };
    let mut device = ClusterDevice::with_config(2, OmpcConfig { backend, ..fault_config(plan) });
    let plus_one = device.register_kernel_fn("plus-one", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });
    let times_ten = device.register_kernel_fn("times-ten", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
    region.target(plus_one, vec![Dependence::inout(a)]);
    region.target(times_ten, vec![Dependence::inout(a)]);
    region.map_from(a);
    region.run().unwrap();
    let result = device.buffer_f64s(a).unwrap();
    let record = device.last_run_record().expect("the device executed a region");
    device.shutdown();
    (result, record)
}

#[test]
fn threaded_region_survives_a_mid_region_failure_with_identical_buffers() {
    // Failure-free baseline, and the node HEFT placed the chain on.
    let (clean, clean_record) = run_listing1_chain(None);
    assert_eq!(clean, vec![20.0, 30.0, 40.0, 50.0]);
    assert!(clean_record.failures.is_empty());
    let victim = clean_record.assignment[1];
    assert!(victim >= 1, "foo must run on a worker");

    // Kill the victim after its second completion: enter-data and foo have
    // retired there, bar's work is lost mid-region.
    let (recovered, record) = run_listing1_chain(Some((victim, 2)));
    assert_eq!(recovered, clean, "recovery must reproduce the failure-free bytes");
    assert_eq!(record.failures.len(), 1);
    assert_eq!(record.failures[0].node, victim);
    assert!(record.failures[0].detected_at >= record.failures[0].silenced_at);
    assert!(record.failures[0].lost_buffers >= 1, "the chain's buffer died with the node");
    // The lost lineage (enter-data + foo at least) re-executed.
    assert!(record.reexecuted.contains(&0) && record.reexecuted.contains(&1));
    // Recovery moved the affected tasks off the dead node.
    assert!(!record.replanned.is_empty());
    assert!(record.replanned.iter().all(|r| r.from == victim && r.to != victim));
}

#[test]
fn threaded_region_recovers_with_full_replan_too() {
    let (clean, clean_record) = run_listing1_chain(None);
    let victim = clean_record.assignment[1];
    let plan = FaultPlan::none().fail_after_completions(victim, 2);
    let config = OmpcConfig { replan_on_failure: true, ..fault_config(plan) };
    let mut device = ClusterDevice::with_config(2, config);
    let plus_one = device.register_kernel_fn("plus-one", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });
    let times_ten = device.register_kernel_fn("times-ten", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
    region.target(plus_one, vec![Dependence::inout(a)]);
    region.target(times_ten, vec![Dependence::inout(a)]);
    region.map_from(a);
    region.run().unwrap();
    assert_eq!(device.buffer_f64s(a).unwrap(), clean);
    let record = device.last_run_record().unwrap();
    assert_eq!(record.failures.len(), 1);
    assert!(record.replanned.iter().all(|r| r.to != victim), "HEFT replan avoids the dead node");
    device.shutdown();
}

/// The backend-equivalence property under failure: for the same seeded
/// chain, the same explicit plan, and the same injected failure, all three
/// backends must retire tasks in the same order and recover exactly the
/// same task sets.
#[test]
fn backends_recover_the_same_tasks_from_the_same_failure() {
    with_timeout(WATCHDOG, || {
        let n = 8usize;
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(0.02);
        }
        for t in 1..n {
            g.add_edge(t - 1, t, 32 * 1024);
        }
        let workload = WorkloadGraph::new(g, vec![32 * 1024; n]);
        // First half of the chain on worker 1 (which dies after two
        // retirements), second half on worker 2.
        let assignment: Vec<NodeId> = (0..n).map(|t| if t < n / 2 { 1 } else { 2 }).collect();
        let mut config = fault_config(FaultPlan::none().fail_after_completions(1, 2));
        config.max_inflight_tasks = Some(1);
        let plan = RuntimePlan { assignment, window: config.inflight_window() };

        let (_, sim_record) = simulate_ompc_with_plan(
            &workload,
            &ClusterConfig::santos_dumont(3),
            &config,
            &OverheadModel::default(),
            &plan,
        )
        .unwrap();

        let mut records = vec![("sim", sim_record)];
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let mut device =
                ClusterDevice::with_config(2, OmpcConfig { backend, ..config.clone() });
            let record = device.run_workload(&workload, &plan).unwrap();
            device.shutdown();
            records.push((backend.name(), record));
        }

        for (name, record) in &records {
            assert_eq!(record.failures.len(), 1, "{name}: exactly one declared failure");
            assert_eq!(record.failures[0].node, 1, "{name}");
            // Every task's final retirement exists exactly once.
            let mut retired: Vec<usize> = record.completion_order.clone();
            retired.sort_unstable();
            retired.dedup();
            assert_eq!(retired, (0..n).collect::<Vec<_>>(), "{name}: every task must retire");
        }
        // The backends agree on every recovery decision (timing aside).
        let (_, sim_record) = &records[0];
        for (name, record) in &records[1..] {
            assert_eq!(
                sim_record.completion_order, record.completion_order,
                "sim and {name} disagree on the retirement order under failure"
            );
            assert_eq!(
                sim_record.reexecuted, record.reexecuted,
                "sim and {name} disagree on the re-executed task set"
            );
            assert_eq!(
                sim_record.replanned, record.replanned,
                "sim and {name} disagree on the recovery reassignment"
            );
            assert_eq!(sim_record.assignment, record.assignment, "{name}");
            assert_eq!(sim_record.failures[0].lost_buffers, record.failures[0].lost_buffers);
            assert_eq!(sim_record.failures[0].lineage_tasks, record.failures[0].lineage_tasks);
            // The transfer plans agree too, failure included: the same
            // re-sourcing transfers are planned for the re-executed work
            // in every backend (input forwards compared — enter-data and
            // sink retrieval are modelled asymmetrically by design).
            assert_eq!(
                sim_record.transfers_with_reason(TransferReason::Input),
                record.transfers_with_reason(TransferReason::Input),
                "sim and {name} disagree on the transfer plan under failure"
            );
        }
        // The lost lineage (tasks 0 and 1 completed on the dead node) re-ran.
        assert!(sim_record.reexecuted.contains(&0) && sim_record.reexecuted.contains(&1));
    });
}

/// The MPI backend's fault surface end to end at the region level: the
/// victim's event loop dies for real mid-region, recovery re-executes the
/// lost lineage on the survivor through fresh composite task messages, and
/// the final bytes are identical to a failure-free run.
#[test]
fn mpi_region_survives_a_mid_region_failure_with_identical_buffers() {
    with_timeout(WATCHDOG, || {
        let (clean, clean_record) = run_listing1_chain_on(BackendKind::Mpi, None);
        assert_eq!(clean, vec![20.0, 30.0, 40.0, 50.0]);
        assert!(clean_record.failures.is_empty());
        let victim = clean_record.assignment[1];
        assert!(victim >= 1, "foo must run on a worker");

        let (recovered, record) = run_listing1_chain_on(BackendKind::Mpi, Some((victim, 2)));
        assert_eq!(recovered, clean, "recovery must reproduce the failure-free bytes");
        assert_eq!(record.failures.len(), 1);
        assert_eq!(record.failures[0].node, victim);
        assert!(record.failures[0].detected_at >= record.failures[0].silenced_at);
        assert!(record.failures[0].lost_buffers >= 1, "the chain's buffer died with the node");
        assert!(record.reexecuted.contains(&0) && record.reexecuted.contains(&1));
        assert!(!record.replanned.is_empty());
        assert!(record.replanned.iter().all(|r| r.from == victim && r.to != victim));
    });
}

/// Per-task blame inside a task train: one broken car must not poison its
/// siblings. With a single worker and a wide-open window, every task of the
/// region departs in one multi-car train; the worker keeps the train rolling
/// past the failing car, so the siblings execute and the region surfaces the
/// bad car's own typed error, blamed on the worker that ran it.
#[test]
fn train_car_errors_blame_only_the_failing_task() {
    with_timeout(WATCHDOG, || {
        let config = OmpcConfig {
            backend: BackendKind::Mpi,
            max_inflight_tasks: Some(8),
            ..OmpcConfig::small()
        };
        assert!(config.task_train_batching, "batching is the default under test");
        let device = ClusterDevice::with_config(1, config);
        let counter = Arc::new(AtomicUsize::new(0));
        let count = {
            let counter = Arc::clone(&counter);
            device.register_kernel_fn("count", 1e-6, move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        };
        let bogus = KernelId(424_242);
        let mut region = device.target_region();
        let buffers: Vec<BufferId> = (0..5).map(|i| region.map_to_f64s(&[i as f64])).collect();
        region.target(count, vec![Dependence::inout(buffers[0])]);
        region.target(count, vec![Dependence::inout(buffers[1])]);
        region.target(bogus, vec![Dependence::inout(buffers[2])]);
        region.target(count, vec![Dependence::inout(buffers[3])]);
        region.target(count, vec![Dependence::inout(buffers[4])]);
        let err = region.run().unwrap_err();
        assert_eq!(err.root_cause(), &OmpcError::UnknownKernel(bogus), "got {err:?}");
        assert_eq!(err.origin_node(), Some(1), "blame stays on the car's own worker");
        assert_eq!(
            counter.load(Ordering::SeqCst),
            4,
            "the train rolled past the broken car: every sibling executed"
        );
    });
}

/// A node dying while a multi-car train is outstanding on it: the zombie
/// gate refuses the unretired cars individually, the head blames the node
/// (not the tasks), and recovery re-executes the lost work on the survivor.
#[test]
fn mid_train_node_death_recovers_on_the_survivors() {
    with_timeout(WATCHDOG, || {
        // Eight independent tasks, interleaved across both workers, window
        // wide open: with batching on, the whole assignment departs as two
        // multi-car trains. Node 1 dies right after its first retirement,
        // with the rest of its train still outstanding.
        let n = 8usize;
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(0.02);
        }
        let workload = WorkloadGraph::new(g, vec![4 * 1024; n]);
        let assignment: Vec<NodeId> = (0..n).map(|t| if t % 2 == 0 { 1 } else { 2 }).collect();
        let mut config = fault_config(FaultPlan::none().fail_after_completions(1, 1));
        config.backend = BackendKind::Mpi;
        config.max_inflight_tasks = Some(n);
        assert!(config.task_train_batching, "batching is the default under test");
        let plan = RuntimePlan { assignment, window: config.inflight_window() };
        let mut device = ClusterDevice::with_config(2, config);
        let record = device.run_workload(&workload, &plan).unwrap();
        device.shutdown();

        assert_eq!(record.failures.len(), 1, "exactly one declared failure");
        assert_eq!(record.failures[0].node, 1);
        let mut retired: Vec<usize> = record.completion_order.clone();
        retired.sort_unstable();
        retired.dedup();
        assert_eq!(retired, (0..n).collect::<Vec<_>>(), "every task must still retire once");
        assert!(!record.replanned.is_empty(), "the dead node's cars moved somewhere");
        assert!(
            record.replanned.iter().all(|r| r.from == 1 && r.to == 2),
            "recovery must move work off the dead node onto the survivor: {:?}",
            record.replanned
        );
    });
}

#[test]
fn worker_less_cluster_is_rejected_with_a_clear_error() {
    let mut g = TaskGraph::new();
    g.add_task(0.01);
    let workload = WorkloadGraph::new(g, vec![1024]);
    let err = simulate_ompc(
        &workload,
        &ClusterConfig::santos_dumont(1),
        &OmpcConfig::default(),
        &OverheadModel::default(),
    )
    .unwrap_err();
    assert!(matches!(err, OmpcError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("no worker nodes"), "unclear message: {err}");
}

#[test]
fn cancellation_stops_tasks_queued_behind_a_failure() {
    // One head pool thread and a wide-open window: the failing task and all
    // counting tasks are queued into the pool together, the failing task
    // first. Without the cancellation flag every counter would still
    // execute before the error propagates; with it, none do.
    let config =
        OmpcConfig { head_worker_threads: 1, max_inflight_tasks: Some(256), ..OmpcConfig::small() };
    let device = ClusterDevice::with_config(2, config);
    let counter = Arc::new(AtomicUsize::new(0));
    let count = {
        let counter = Arc::clone(&counter);
        device.register_kernel_fn("count", 1e-6, move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        })
    };
    let noop = device.register_kernel_fn("noop", 1e-6, |_| {});

    let mut region = device.target_region();
    // The first task reads a buffer that was never mapped: its input
    // forwarding fails on the head node before the kernel can run.
    region.target(noop, vec![Dependence::input(BufferId(424_242))]);
    let buffers: Vec<BufferId> = (0..32).map(|i| region.map_to_f64s(&[i as f64])).collect();
    for &b in &buffers {
        region.target(count, vec![Dependence::inout(b)]);
    }
    let err = region.run().unwrap_err();
    assert!(matches!(err, OmpcError::UnknownBuffer(_)), "{err:?}");
    assert_eq!(
        counter.load(Ordering::SeqCst),
        0,
        "tasks queued behind the failed task must not execute"
    );
}

#[test]
fn cancellation_never_masks_the_root_cause_error() {
    // With several pool threads, a task skipped by the cancellation flag
    // can report its synthetic error before the task that actually failed
    // reports the real one; the run must still surface the root cause.
    let config =
        OmpcConfig { head_worker_threads: 4, max_inflight_tasks: Some(256), ..OmpcConfig::small() };
    let device = ClusterDevice::with_config(2, config);
    let noop = device.register_kernel_fn("noop", 1e-6, |_| {});
    let mut region = device.target_region();
    region.target(noop, vec![Dependence::input(BufferId(424_242))]);
    let buffers: Vec<BufferId> = (0..32).map(|i| region.map_to_f64s(&[i as f64])).collect();
    for &b in &buffers {
        region.target(noop, vec![Dependence::inout(b)]);
    }
    let err = region.run().unwrap_err();
    assert!(matches!(err, OmpcError::UnknownBuffer(_)), "root cause lost: {err:?}");
}

#[test]
fn explicit_plan_naming_a_long_dead_node_is_rejected_not_fake_completed() {
    with_timeout(WATCHDOG, || {
        // After node 1 dies in region 1 and its triggers are spent, a later
        // `run_workload` whose explicit plan still names node 1 must fail
        // up front with `InvalidConfig` — previously the dead-node branch
        // fake-completed the task (its kernel never ran) and, with no
        // remaining trigger, the core retired the lie as a genuine
        // completion. Both real backends share the guard.
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let config = OmpcConfig {
                backend,
                ..fault_config(FaultPlan::none().fail_after_completions(1, 1))
            };
            let mut device = ClusterDevice::with_config(2, config);
            let bump = device.register_kernel_fn("bump", 1e-5, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            // Region 1: node 1 dies after its first retirement; recovery
            // completes the region on node 2.
            let mut region = device.target_region();
            let a = region.map_to_f64s(&[1.0]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(device.alive_workers(), vec![2], "{}", backend.name());

            // Region 2: an explicit plan naming the long-dead node 1.
            let mut g = TaskGraph::new();
            g.add_task(0.001);
            g.add_task(0.001);
            g.add_edge(0, 1, 64);
            let workload = WorkloadGraph::new(g, vec![64; 2]);
            let plan = RuntimePlan { assignment: vec![1, 2], window: 1 };
            let err = device.run_workload(&workload, &plan).unwrap_err();
            assert!(
                matches!(err, OmpcError::InvalidConfig(_)),
                "{}: expected InvalidConfig, got {err:?}",
                backend.name()
            );
            assert!(
                err.to_string().contains("node 1"),
                "{}: unclear message: {err}",
                backend.name()
            );

            // A plan over the survivors still runs.
            let plan = RuntimePlan { assignment: vec![2, 2], window: 1 };
            let record = device.run_workload(&workload, &plan).unwrap();
            assert_eq!(record.completion_order, vec![0, 1], "{}", backend.name());
            device.shutdown();
        }
    });
}

#[test]
fn device_stays_usable_after_a_failure_in_an_earlier_region() {
    let (_, clean_record) = run_listing1_chain(None);
    let victim = clean_record.assignment[1];
    let plan = FaultPlan::none().fail_after_completions(victim, 2);
    let mut device = ClusterDevice::with_config(2, fault_config(plan));
    let bump = device.register_kernel_fn("bump", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });

    // Region 1: the victim dies mid-region; recovery completes the region.
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[1.0, 2.0]);
    region.target(bump, vec![Dependence::inout(a)]);
    region.target(bump, vec![Dependence::inout(a)]);
    region.map_from(a);
    region.run().unwrap();
    assert_eq!(device.buffer_f64s(a).unwrap(), vec![3.0, 4.0]);
    assert_eq!(device.alive_workers(), vec![3 - victim], "one worker survived");

    // Region 2: planned exclusively over the survivor; the dead node stays
    // excommunicated for the rest of the device lifetime.
    let mut region = device.target_region();
    let b = region.map_to_f64s(&[10.0]);
    region.target(bump, vec![Dependence::inout(b)]);
    region.map_from(b);
    region.run().unwrap();
    assert_eq!(device.buffer_f64s(b).unwrap(), vec![11.0]);
    let record = device.last_run_record().unwrap();
    assert!(
        record.assignment.iter().all(|&n| n != victim),
        "region 2 must avoid the dead node: {:?}",
        record.assignment
    );
    device.shutdown();
}

/// Fault recovery under concurrent admission: a node dies while two
/// tenants are overlapped on one device. Only the tenant with tasks on
/// the victim is blamed and replanned; the untouched tenant's record
/// stays clean (no failures, no re-executions, no replans, no task on
/// the victim) and its bytes are identical to a failure-free run. Both
/// real backends.
#[test]
fn node_death_during_overlapped_regions_blames_only_the_victim_tenant() {
    with_timeout(WATCHDOG, || {
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            // Probe, fault-free: tenant A admitted first on an idle
            // three-worker device; deterministic HEFT places its chain on
            // the same node the real run will use — the victim.
            let run_tenant_a =
                |device: &ClusterDevice, chain: KernelId| -> (Vec<f64>, RegionReport, RunRecord) {
                    let mut region = device.target_region();
                    let a = region.map_to_f64s(&[1.0, 2.0]);
                    region.target(chain, vec![Dependence::inout(a)]);
                    region.target(chain, vec![Dependence::inout(a)]);
                    region.map_from(a);
                    let (report, record) = region.run_recorded().unwrap();
                    (device.buffer_f64s(a).unwrap(), report, record)
                };
            let (clean_bytes, victim) = {
                let mut device = ClusterDevice::with_config(
                    3,
                    OmpcConfig { backend, ..fault_config(FaultPlan::none()) },
                );
                // Big hints so the load-aware planner sees tenant A's
                // reservation; the closures themselves are instant.
                let chain = device.register_kernel_fn("chain", 10.0, |args| {
                    let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                    args.set_f64s(0, &v);
                });
                let (bytes, _, record) = run_tenant_a(&device, chain);
                let victim = record.assignment[1];
                assert!(victim >= 1, "tenant A's chain runs on a worker");
                device.shutdown();
                (bytes, victim)
            };

            // Real run: the victim dies after tenant A's enter-data and
            // first kernel retire there; tenant B is admitted mid-flight
            // (the first kernel signals through the channel before the
            // death is declared) and planned around A's reserved load.
            let plan = FaultPlan::none().fail_after_completions(victim, 2);
            let config = OmpcConfig { backend, max_concurrent_regions: 2, ..fault_config(plan) };
            let mut device = ClusterDevice::with_config(3, config);
            let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
            let started_tx = std::sync::Mutex::new(started_tx);
            let chain = device.register_kernel_fn("chain", 10.0, move |args| {
                let _ = started_tx.lock().unwrap().send(());
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let (b_bytes, b_report, b_record) = std::thread::scope(|scope| {
                let device_ref = &device;
                let tenant_a = scope.spawn(move || run_tenant_a(device_ref, chain));

                // Admit tenant B only once tenant A's first kernel is
                // executing on the victim, so the regions truly overlap.
                started_rx.recv().unwrap();
                let mut region = device.target_region();
                let b = region.map_to_f64s(&[10.0]);
                region.target(bump, vec![Dependence::inout(b)]);
                region.map_from(b);
                let (report, record) = region.run_recorded().unwrap();
                let bytes = device.buffer_f64s(b).unwrap();

                let (a_bytes, a_report, a_record) = tenant_a.join().unwrap();
                // Tenant A: blamed, replanned off the victim, recovered to
                // the failure-free bytes.
                assert_eq!(a_bytes, clean_bytes, "{}: tenant A must recover", backend.name());
                assert_eq!(a_record.failures.len(), 1, "{}", backend.name());
                assert_eq!(a_record.failures[0].node, victim, "{}", backend.name());
                assert!(!a_record.reexecuted.is_empty(), "{}", backend.name());
                assert!(
                    a_record.replanned.iter().all(|r| r.from == victim && r.to != victim),
                    "{}: recovery must move tenant A off the victim: {:?}",
                    backend.name(),
                    a_record.replanned
                );
                assert_ne!(a_report.region, report.region, "{}", backend.name());
                (bytes, report, record)
            });
            device.shutdown();

            // Tenant B: untouched. Same bytes as a failure-free run of the
            // same region, no blame, no re-execution, no replanning, and
            // no task ever placed on the victim.
            assert_eq!(b_bytes, vec![11.0], "{}: tenant B's bytes changed", backend.name());
            assert_ne!(b_report.region, 0, "{}", backend.name());
            assert!(
                b_record.failures.is_empty(),
                "{}: the untouched tenant was blamed: {:?}",
                backend.name(),
                b_record.failures
            );
            assert!(b_record.reexecuted.is_empty(), "{}", backend.name());
            assert!(b_record.replanned.is_empty(), "{}", backend.name());
            assert!(
                b_record.assignment.iter().all(|&n| n != victim),
                "{}: tenant B was planned onto the victim: {:?}",
                backend.name(),
                b_record.assignment
            );
        }
    });
}

/// The async data path's failure interaction: a node dies while an
/// `enter_data_async` transfer towards it is still in flight. The booking
/// must roll back — the ticket reports the failure instead of hanging —
/// the next consumer re-sources the bytes from a survivor, and the aborted
/// movement is withdrawn from the transfer accounting so nothing is
/// double-counted. Threaded backend: the device's hold gate freezes the
/// transfer job deterministically while the fault fires (the MPI
/// first-reader protocol resolves in-flight failures through its
/// `AwaitLocal` timeout instead, which is too slow for a unit test).
#[test]
fn prefetch_in_flight_node_death_rolls_back_and_resources() {
    with_timeout(WATCHDOG, || {
        // Probe run, fault-free: a single-reader region has exactly the
        // shape of the async entry point's prediction probe, so its
        // placement IS the predicted destination — the node to kill.
        let register_sum = |device: &ClusterDevice| {
            device.register_kernel_fn("sum", 1e-6, |args| {
                let total: f64 = args.as_f64s(0).iter().sum();
                args.set_f64s(1, &[total]);
            })
        };
        let victim = {
            let mut device = ClusterDevice::with_config(2, fault_config(FaultPlan::none()));
            let sum = register_sum(&device);
            let input = device.enter_data_f64s(&[7.0, 8.0, 9.0]);
            let mut region = device.target_region();
            let out = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
            region.run().unwrap();
            let record = device.last_run_record().unwrap();
            let node = *record.assignment.iter().find(|&&n| n >= 1).unwrap();
            device.shutdown();
            node
        };

        // Real run: freeze the wire, book the async enter-data towards the
        // predicted victim, then kill the victim under a sacrificial
        // region that never touches the in-flight buffer.
        let plan = FaultPlan::none().fail_after_completions(victim, 1);
        let mut device = ClusterDevice::with_config(2, fault_config(plan));
        let sum = register_sum(&device);
        let bump = device.register_kernel_fn("bump", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        device.debug_hold_async_transfers(true);
        let (buffer, ticket) = device.enter_data_async_f64s(&[7.0, 8.0, 9.0]);

        let mut region = device.target_region();
        for _ in 0..4 {
            let b = region.map_to_f64s(&[1.0]);
            region.target(bump, vec![Dependence::inout(b)]);
            region.map_from(b);
        }
        region.run().unwrap();
        let record = device.last_run_record().unwrap();
        assert_eq!(record.failures.len(), 1, "the victim must die during the sacrifice");
        assert_eq!(record.failures[0].node, victim);

        // Release the frozen job: it observes the death and rolls the
        // booking back without touching the wire; the ticket reports the
        // failure instead of blocking forever.
        device.debug_hold_async_transfers(false);
        let error =
            device.await_transfer(ticket).expect_err("a prefetch towards a dead node must fail");
        assert_eq!(
            error.origin_node(),
            Some(victim),
            "the rollback must blame the dead node, got {error:?}"
        );

        // The consuming region re-sources the bytes from the survivors:
        // correct result, exactly one Input transfer of the buffer — the
        // aborted movement is not in the log, so nothing double-counts.
        device.take_unattributed_transfers();
        let mut region = device.target_region();
        let out = region.map_alloc(8);
        region.target(sum, vec![Dependence::input(buffer), Dependence::output(out)]);
        region.map_from(out);
        region.run().unwrap();
        assert_eq!(device.buffer_f64s(out).unwrap(), vec![24.0]);
        let record = device.last_run_record().unwrap();
        let moved: Vec<&TransferRecord> =
            record.transfers.iter().filter(|t| t.buffer == buffer).collect();
        assert_eq!(
            moved.len(),
            1,
            "the buffer must cross the wire exactly once after the rollback: {moved:?}"
        );
        assert_eq!(moved[0].reason, TransferReason::Input);
        assert_eq!(moved[0].bytes, 24, "three f64s");
        assert!(
            moved[0].to != victim && moved[0].from != victim,
            "re-sourcing must avoid the dead node: {:?}",
            moved[0]
        );
        assert!(
            device.take_unattributed_transfers().iter().all(|t| t.buffer != buffer),
            "no stray transfer record of the aborted prefetch may remain"
        );
        device.shutdown();
    });
}

/// A relay node dying mid-broadcast: with collectives on, a region's
/// shared input is booked as ONE binomial tree over four destinations —
/// the lowest-numbered destination is the tree's only interior relay,
/// responsible for forwarding the payload to one subtree child. The
/// device's hold gate freezes the broadcast job while the wall-clock
/// fault kills that relay; on release, the relay's gate refuses its
/// event, and the broadcast must rescue exactly the undelivered subtree
/// from a recipient that already acknowledged the payload — delivered
/// nodes are not re-sent, the dead node's booking rolls back, and the
/// region's log records the true per-edge bytes, rescue edge included.
#[test]
fn relay_node_death_mid_broadcast_rescues_the_undelivered_subtree() {
    with_timeout(WATCHDOG, || {
        let collective_config = |plan: FaultPlan| OmpcConfig {
            enter_data_async: true,
            collective_min_fanout: 2,
            collective_chunk_kib: 1,
            max_inflight_tasks: Some(8),
            ..fault_config(plan)
        };
        let register_scale = |device: &ClusterDevice| {
            device.register_kernel_fn("scale", 1e-2, |args| {
                let total: f64 = args.as_f64s(0).iter().sum();
                let factor = args.as_f64s(1)[0];
                args.set_f64s(2, &[total * factor]);
            })
        };
        // The broadcast region: one shared 8 KiB read-only input, four
        // readers with private factors. Returns the shared buffer, the
        // outputs, and the run record.
        let run_broadcast_region =
            |device: &ClusterDevice, scale: KernelId| -> (BufferId, Vec<f64>, RunRecord) {
                let mut region = device.target_region();
                let vals: Vec<f64> = (0..1024).map(|i| i as f64).collect();
                let shared = region.map_to_f64s(&vals);
                let mut outs = Vec::new();
                for i in 0..4 {
                    let factor = region.map_to_f64s(&[(i + 1) as f64]);
                    let out = region.map_alloc(8);
                    region.target(
                        scale,
                        vec![
                            Dependence::input(shared),
                            Dependence::input(factor),
                            Dependence::output(out),
                        ],
                    );
                    region.map_from(out);
                    outs.push(out);
                }
                region.run().unwrap();
                let record = device.last_run_record().unwrap();
                let outputs = outs.iter().map(|&o| device.buffer_f64s(o).unwrap()[0]).collect();
                (shared, outputs, record)
            };
        let total: f64 = (0..1024).map(|i| i as f64).sum();
        let clean: Vec<f64> = (1..=4).map(|i| total * i as f64).collect();

        // Probe, fault-free: discover the tree. The booking iterates
        // destinations in ascending node order, so over destinations
        // [d0, d1, d2, d3] the head feeds d0, d1, d3 and the relay d0
        // feeds d2 — d0 is the node whose death orphans a subtree.
        let dests: Vec<usize> = {
            let mut device = ClusterDevice::with_config(4, collective_config(FaultPlan::none()));
            let scale = register_scale(&device);
            let (shared, outputs, record) = run_broadcast_region(&device, scale);
            device.shutdown();
            assert_eq!(outputs, clean, "probe outputs");
            let edges: Vec<&TransferRecord> =
                record.transfers.iter().filter(|t| t.buffer == shared).collect();
            let mut dests: Vec<usize> = edges.iter().map(|t| t.to).collect();
            dests.sort_unstable();
            assert_eq!(
                dests,
                vec![1, 2, 3, 4],
                "the script must reach all four workers in one planning step: {edges:?}"
            );
            let relayed: Vec<&&TransferRecord> = edges.iter().filter(|t| t.from != 0).collect();
            assert_eq!(relayed.len(), 1, "probe: one relay edge: {edges:?}");
            assert_eq!(
                (relayed[0].from, relayed[0].to),
                (dests[0], dests[2]),
                "probe: the lowest destination relays to its binomial child: {edges:?}"
            );
            dests
        };
        let (victim, orphan) = (dests[0], dests[2]);

        // Real run: freeze the broadcast job and kill the relay on its
        // first completion. With every data-carrying task parked on a held
        // booking, the only runnable work on the victim is its reader's
        // alloc task — which retires within milliseconds of admission, so
        // the trigger fires while the broadcast is still frozen.
        let plan = FaultPlan::none().fail_after_completions(victim, 1);
        let mut device = ClusterDevice::with_config(4, collective_config(plan));
        let scale = register_scale(&device);
        device.debug_hold_async_transfers(true);
        let (shared, outputs, record) = std::thread::scope(|scope| {
            let device_ref = &device;
            let run = scope.spawn(move || run_broadcast_region(device_ref, scale));
            // The kill fires at the victim's first retirement; the ring
            // heartbeat declares the silent relay a few periods later.
            // Release the frozen tree only after the death has landed.
            std::thread::sleep(Duration::from_millis(700));
            device_ref.debug_hold_async_transfers(false);
            run.join().unwrap()
        });
        device.shutdown();

        assert_eq!(outputs, clean, "the region must recover the failure-free bytes");
        assert_eq!(record.failures.len(), 1, "exactly one declared failure");
        assert_eq!(record.failures[0].node, victim);

        let edges: Vec<&TransferRecord> =
            record.transfers.iter().filter(|t| t.buffer == shared).collect();
        // The dead relay's booking rolled back; every survivor received
        // the payload exactly once (no re-sends), with exact wire bytes.
        let mut delivered_to: Vec<usize> = edges.iter().map(|t| t.to).collect();
        delivered_to.sort_unstable();
        assert_eq!(
            delivered_to,
            dests.iter().copied().filter(|&n| n != victim).collect::<Vec<_>>(),
            "survivors exactly once, victim rolled back: {edges:?}"
        );
        assert!(
            edges.iter().all(|t| t.bytes == 8192),
            "each edge carries the full 8 KiB payload: {edges:?}"
        );
        // The orphaned subtree was re-sourced from a surviving recipient —
        // not from the head, and certainly not from the corpse.
        let rescue = edges.iter().find(|t| t.to == orphan).expect("the orphan was delivered");
        assert!(
            rescue.from != 0 && rescue.from != victim && delivered_to.contains(&rescue.from),
            "the rescue edge must come from a surviving recipient: {rescue:?}"
        );
        // The head-fed subtree roots kept their planned edges.
        for t in edges.iter().filter(|t| t.to != orphan) {
            assert_eq!(t.from, 0, "direct subtree roots stay head-fed: {t:?}");
        }
    });
}
