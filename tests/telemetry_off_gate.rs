//! The "near-zero cost when disabled" gate, made deterministic: every
//! telemetry clock read goes through `monotonic_us()`, which counts
//! itself, so a run at the default `TelemetryLevel::Off` must finish with
//! the counter exactly where it started — no clock reads, no span
//! allocations, no measurable overhead. This lives in its own test binary
//! so no concurrently running `Spans`-level test can touch the
//! process-global counter mid-measurement.

use ompc::prelude::*;
use ompc::runtime::runtime::clock_reads;
use ompc_testutil::with_timeout;
use std::time::Duration;

#[test]
fn telemetry_off_reads_no_clock_on_either_real_backend() {
    with_timeout(Duration::from_secs(120), || {
        let before = clock_reads();
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let config = OmpcConfig { backend, ..OmpcConfig::small() };
            assert_eq!(config.telemetry, TelemetryLevel::Off, "Off is the default");
            let mut device = ClusterDevice::with_config(2, config);
            let bump = device.register_kernel_fn("bump", 1e-5, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let mut region = device.target_region();
            let a = region.map_to_f64s(&[1.0, 2.0]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(device.buffer_f64s(a).unwrap(), vec![3.0, 4.0]);
            device.shutdown();
        }
        assert_eq!(
            clock_reads(),
            before,
            "a telemetry-off run must never touch the monotonic clock"
        );
    });
}
