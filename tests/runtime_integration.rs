//! End-to-end integration tests of the threaded OMPC runtime, spanning the
//! facade crate: cluster device + regions + event system + data manager.

use ompc::prelude::*;
use ompc::runtime::config::OmpcConfig;

/// A multi-stage numerical pipeline whose result is easy to verify: the
/// cluster must reproduce exactly what a sequential execution produces.
#[test]
fn multi_stage_region_matches_sequential_result() {
    let mut device = ClusterDevice::spawn(3);
    let square = device.register_kernel_fn("square", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * x).collect();
        args.set_f64s(0, &v);
    });
    let sum_into = device.register_kernel_fn("sum-into", 1e-5, |args| {
        let total: f64 = args.as_f64s(0).iter().sum();
        let mut acc = args.as_f64s(1);
        acc[0] += total;
        args.set_f64s(1, &acc);
    });

    let input: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let expected: f64 = input.iter().map(|x| x * x).sum();

    let mut region = device.target_region();
    let data = region.map_to_f64s(&input);
    let acc = region.map_to_f64s(&[0.0]);
    region.target(square, vec![Dependence::inout(data)]);
    region.target(sum_into, vec![Dependence::input(data), Dependence::inout(acc)]);
    region.map_from(acc);
    region.map_from(data);
    let report = region.run().unwrap();

    assert_eq!(device.buffer_f64s(acc).unwrap(), vec![expected]);
    assert_eq!(device.buffer_f64s(data).unwrap(), input.iter().map(|x| x * x).collect::<Vec<_>>());
    assert_eq!(report.target_tasks, 2);
    device.shutdown();
}

/// Several regions executed one after another on the same device must all
/// work and be reported separately (buffers persist across regions).
#[test]
fn successive_regions_on_one_device() {
    let mut device = ClusterDevice::spawn(2);
    let increment = device.register_kernel_fn("increment", 1e-6, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });

    let mut buffer = None;
    for round in 0..3 {
        let mut region = device.target_region();
        let b = region.map_to_f64s(&[round as f64]);
        region.target(increment, vec![Dependence::inout(b)]);
        region.map_from(b);
        region.run().unwrap();
        assert_eq!(device.buffer_f64s(b).unwrap(), vec![round as f64 + 1.0]);
        buffer = Some(b);
    }
    assert!(buffer.is_some());
    device.shutdown();
    assert_eq!(device.report().regions.len(), 3);
}

/// A diamond dependence pattern: one producer, two parallel consumers, one
/// combiner. Exercises read-only replication (both consumers read the same
/// buffer) and worker-to-worker forwarding into the combiner.
#[test]
fn diamond_dependences_execute_correctly() {
    let mut device = ClusterDevice::spawn(3);
    let produce = device.register_kernel_fn("produce", 1e-6, |args| {
        args.set_f64s(0, &[3.0]);
    });
    let add = device.register_kernel_fn("add", 1e-6, |args| {
        let x = args.as_f64s(0)[0];
        args.set_f64s(1, &[x + 10.0]);
    });
    let mul = device.register_kernel_fn("mul", 1e-6, |args| {
        let x = args.as_f64s(0)[0];
        args.set_f64s(1, &[x * 10.0]);
    });
    let combine = device.register_kernel_fn("combine", 1e-6, |args| {
        let a = args.as_f64s(0)[0];
        let b = args.as_f64s(1)[0];
        args.set_f64s(2, &[a + b]);
    });

    let mut region = device.target_region();
    let src = region.map_alloc(8);
    let left = region.map_alloc(8);
    let right = region.map_alloc(8);
    let out = region.map_alloc(8);
    region.target(produce, vec![Dependence::output(src)]);
    region.target(add, vec![Dependence::input(src), Dependence::output(left)]);
    region.target(mul, vec![Dependence::input(src), Dependence::output(right)]);
    region.target(
        combine,
        vec![Dependence::input(left), Dependence::input(right), Dependence::output(out)],
    );
    region.map_from(out);
    region.run().unwrap();

    // (3 + 10) + (3 * 10) = 43.
    assert_eq!(device.buffer_f64s(out).unwrap(), vec![43.0]);
    device.shutdown();
}

/// The same program must produce the same answer regardless of the number
/// of worker nodes and scheduler choice — placement is a performance
/// decision, never a correctness one.
#[test]
fn results_are_placement_independent() {
    let run = |workers: usize, scheduler: SchedulerKind| -> Vec<f64> {
        let mut config = OmpcConfig::small();
        config.scheduler = scheduler;
        let mut device = ClusterDevice::with_config(workers, config);
        let scale = device.register_kernel_fn("scale", 1e-6, |args| {
            let f = args.as_f64s(1)[0];
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * f).collect();
            args.set_f64s(0, &v);
        });
        let mut region = device.target_region();
        let data = region.map_to_f64s(&[1.0, 2.0, 3.0]);
        for factor in 2..5 {
            let f = region.map_to_f64s(&[factor as f64]);
            region.target(scale, vec![Dependence::inout(data), Dependence::input(f)]);
        }
        region.map_from(data);
        region.run().unwrap();
        let out = device.buffer_f64s(data).unwrap();
        device.shutdown();
        out
    };
    let reference = run(1, SchedulerKind::Heft);
    assert_eq!(reference, vec![24.0, 48.0, 72.0]);
    for workers in [2, 4] {
        for scheduler in [SchedulerKind::Heft, SchedulerKind::RoundRobin, SchedulerKind::Eager] {
            assert_eq!(run(workers, scheduler), reference);
        }
    }
}

/// Exercising the in-flight limit on the real runtime: a wide region with a
/// tiny head worker pool must still complete (throttled, not deadlocked).
#[test]
fn tiny_in_flight_limit_still_completes() {
    let mut config = OmpcConfig::small();
    config.head_worker_threads = 2;
    let mut device = ClusterDevice::with_config(2, config);
    let bump = device.register_kernel_fn("bump", 1e-6, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let buffers: Vec<_> = (0..12).map(|i| region.map_to_f64s(&[i as f64])).collect();
    for &b in &buffers {
        region.target(bump, vec![Dependence::inout(b)]);
    }
    for &b in &buffers {
        region.map_from(b);
    }
    region.run().unwrap();
    for (i, &b) in buffers.iter().enumerate() {
        assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
    }
    device.shutdown();
}

/// The event counters must reflect the data movement the data manager
/// plans: a two-task chain on separate workers needs an initial submit, a
/// worker-to-worker exchange, and a final retrieve.
#[test]
fn event_counters_track_data_movement() {
    let mut device = ClusterDevice::spawn(2);
    let touch = device.register_kernel_fn("touch", 1e-6, |args| {
        let mut v = args.as_f64s(0);
        v[0] += 1.0;
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[0.0; 1024]);
    region.target(touch, vec![Dependence::inout(a)]);
    region.target(touch, vec![Dependence::inout(a)]);
    region.map_from(a);
    let report = region.run().unwrap();
    // At least: one submit of the buffer, one retrieve; the exchange only
    // happens when the two tasks land on different workers.
    assert!(report.data_events >= 2);
    assert!(report.bytes_moved >= 2 * 1024 * 8);
    assert_eq!(device.buffer_f64s(a).unwrap()[0], 2.0);
    device.shutdown();
}

/// Many concurrent readers of one shared buffer with a wide dispatch window:
/// every reader must observe the producer's full payload even when two
/// readers land on the same node and one's input forward is still in flight
/// when the other is dispatched (the transfer-gate race).
#[test]
fn concurrent_same_node_readers_see_complete_data() {
    let mut config = OmpcConfig::small();
    config.head_worker_threads = 8;
    config.max_inflight_tasks = Some(16);
    let mut device = ClusterDevice::with_config(2, config);
    let produce = device.register_kernel_fn("produce", 1e-5, |args| {
        let n = args.as_f64s(0).len();
        args.set_f64s(0, &vec![3.5; n]);
    });
    let sum_into = device.register_kernel_fn("sum-into", 1e-5, |args| {
        let total: f64 = args.as_f64s(0).iter().sum();
        args.set_f64s(1, &[total]);
    });
    for _ in 0..10 {
        let mut region = device.target_region();
        let shared = region.map_alloc(256 * 8);
        region.target(produce, vec![Dependence::output(shared)]);
        let outs: Vec<BufferId> = (0..12)
            .map(|_| {
                let out = region.map_alloc(8);
                region.target(sum_into, vec![Dependence::input(shared), Dependence::output(out)]);
                out
            })
            .collect();
        for &out in &outs {
            region.map_from(out);
        }
        region.release(shared);
        region.run().unwrap();
        for &out in &outs {
            // A reader that raced an in-flight forward would have summed an
            // empty buffer and produced 0.0.
            assert_eq!(device.buffer_f64s(out).unwrap(), vec![256.0 * 3.5]);
        }
    }
    device.shutdown();
}
