//! Integration tests of the experiment pipeline: Task Bench → runtimes →
//! figure shapes. These run reduced versions of the paper's experiments and
//! assert the qualitative results the paper reports.

use ompc::baselines::{
    block_assignment, BaselineRuntime, CharmRuntime, MpiSyncRuntime, StarPuRuntime,
};
use ompc::prelude::*;
use ompc::sim::{ClusterConfig, NetworkConfig};
use ompc::taskbench::{generate_workload, DependencePattern, TaskBenchConfig};

fn ompc_time(workload: &WorkloadGraph, nodes: usize, config: &OmpcConfig) -> f64 {
    simulate_ompc(workload, &ClusterConfig::santos_dumont(nodes), config, &OverheadModel::default())
        .unwrap()
        .makespan
        .as_secs_f64()
}

fn baseline_time(
    runtime: &dyn BaselineRuntime,
    workload: &WorkloadGraph,
    cfg: &TaskBenchConfig,
    nodes: usize,
) -> f64 {
    runtime
        .run(
            workload,
            &ClusterConfig::santos_dumont(nodes),
            &block_assignment(cfg.width, cfg.steps, nodes),
        )
        .makespan
        .as_secs_f64()
}

/// Figure 5's qualitative ordering at 16 nodes, reduced task duration:
/// MPI <= StarPU <= OMPC < Charm++ for the communication-bearing patterns.
#[test]
fn figure5_ordering_holds_at_16_nodes() {
    let nodes = 16;
    for pattern in [DependencePattern::Stencil1D, DependencePattern::Fft, DependencePattern::Tree] {
        let mut cfg = TaskBenchConfig::new(pattern, 2 * nodes, 8, 10_000_000, 0);
        cfg.output_bytes = cfg.bytes_for_ccr(1.0, &NetworkConfig::infiniband());
        let workload = generate_workload(&cfg);
        let ompc = ompc_time(&workload, nodes, &OmpcConfig::default());
        let mpi = baseline_time(&MpiSyncRuntime::new(), &workload, &cfg, nodes);
        let starpu = baseline_time(&StarPuRuntime::new(), &workload, &cfg, nodes);
        let charm = baseline_time(&CharmRuntime::new(), &workload, &cfg, nodes);
        assert!(mpi <= starpu * 1.05, "{pattern}: MPI {mpi} vs StarPU {starpu}");
        assert!(starpu <= ompc * 1.05, "{pattern}: StarPU {starpu} vs OMPC {ompc}");
        assert!(ompc < charm, "{pattern}: OMPC {ompc} must beat Charm {charm}");
    }
}

/// Figure 6's qualitative behaviour: Charm++ degrades much faster than OMPC
/// when the CCR drops (communication grows), while OMPC tracks StarPU/MPI
/// within a bounded factor.
#[test]
fn figure6_charm_collapse_at_low_ccr() {
    let nodes = 16;
    let time_at_ccr = |ccr: f64| {
        let mut cfg = TaskBenchConfig::new(DependencePattern::Stencil1D, 16, 8, 50_000_000, 0);
        cfg.output_bytes = cfg.bytes_for_ccr(ccr, &NetworkConfig::infiniband());
        let workload = generate_workload(&cfg);
        (
            ompc_time(&workload, nodes, &OmpcConfig::default()),
            baseline_time(&CharmRuntime::new(), &workload, &cfg, nodes),
            baseline_time(&MpiSyncRuntime::new(), &workload, &cfg, nodes),
        )
    };
    let (ompc_high, charm_high, _) = time_at_ccr(2.0);
    let (ompc_low, charm_low, mpi_low) = time_at_ccr(0.5);
    // Dropping the CCR hurts Charm++ more than OMPC.
    let charm_degradation = charm_low / charm_high;
    let ompc_degradation = ompc_low / ompc_high;
    assert!(
        charm_degradation > ompc_degradation,
        "Charm++ degradation {charm_degradation} must exceed OMPC's {ompc_degradation}"
    );
    // And OMPC stays within a sane factor of the MPI best case (the paper
    // reports 1.4x–2.9x).
    assert!(ompc_low / mpi_low < 3.5);
}

/// The weak-scaling trend of Fig. 5: OMPC's execution time grows once the
/// graph width exceeds the head node's in-flight capacity, while the
/// MPI baseline stays nearly flat.
#[test]
fn figure5_ompc_degrades_beyond_in_flight_capacity() {
    let run_at = |nodes: usize| {
        let cfg = {
            let mut c =
                TaskBenchConfig::new(DependencePattern::Trivial, 2 * nodes, 8, 10_000_000, 0);
            c.output_bytes = 0;
            c
        };
        let workload = generate_workload(&cfg);
        (
            ompc_time(&workload, nodes, &OmpcConfig::default()),
            baseline_time(&MpiSyncRuntime::new(), &workload, &cfg, nodes),
        )
    };
    let (ompc_small, mpi_small) = run_at(8);
    let (ompc_large, mpi_large) = run_at(64);
    let ompc_growth = ompc_large / ompc_small;
    let mpi_growth = mpi_large / mpi_small;
    assert!(
        ompc_growth > mpi_growth * 1.3,
        "OMPC weak-scaling degradation ({ompc_growth}) must exceed MPI's ({mpi_growth})"
    );
}

/// Removing the in-flight limit (the paper's proposed libomptarget fix)
/// recovers most of the lost scalability.
#[test]
fn lifting_the_in_flight_limit_restores_scalability() {
    let nodes = 64;
    let cfg = TaskBenchConfig::new(DependencePattern::Trivial, 2 * nodes, 8, 10_000_000, 0);
    let workload = generate_workload(&cfg);
    let limited = ompc_time(&workload, nodes, &OmpcConfig::default());
    let unlimited_cfg = OmpcConfig { enforce_in_flight_limit: false, ..OmpcConfig::default() };
    let unlimited = ompc_time(&workload, nodes, &unlimited_cfg);
    assert!(
        unlimited < limited * 0.6,
        "lifting the limit should cut the 64-node trivial makespan substantially \
         (limited {limited}, unlimited {unlimited})"
    );
}

/// The data manager's worker-to-worker forwarding is worth a measurable
/// amount on communication-heavy graphs (paper §4.3).
#[test]
fn forwarding_beats_staging_through_the_head() {
    let nodes = 16;
    let mut cfg = TaskBenchConfig::new(DependencePattern::Stencil1D, 16, 8, 10_000_000, 0);
    cfg.output_bytes = cfg.bytes_for_ccr(1.0, &NetworkConfig::infiniband());
    let workload = generate_workload(&cfg);
    let forwarding = ompc_time(&workload, nodes, &OmpcConfig::default());
    let staged_cfg = OmpcConfig { worker_to_worker_forwarding: false, ..OmpcConfig::default() };
    let staged = ompc_time(&workload, nodes, &staged_cfg);
    assert!(
        staged > forwarding * 1.1,
        "staging through the head ({staged}) must be noticeably slower than forwarding ({forwarding})"
    );
}

/// Heartbeat fault tolerance: a failed worker is detected and its tasks are
/// re-planned onto the survivors.
#[test]
fn heartbeat_detects_failure_and_replans() {
    use ompc::runtime::heartbeat::{plan_recovery, HeartbeatMonitor, NodeHealth};

    let mut monitor = HeartbeatMonitor::new(5, 100, 3);
    for t in (0..=1000).step_by(100) {
        for node in 0..5 {
            if node != 3 || t < 300 {
                monitor.record_heartbeat(node, t);
            }
        }
    }
    let failed = monitor.check(1000);
    assert_eq!(failed, vec![3]);
    assert_eq!(monitor.health(3), NodeHealth::Failed);

    // Node 3's tasks move to surviving workers.
    let assignment = vec![1, 2, 3, 4, 3, 1];
    let alive: Vec<usize> = monitor.alive_nodes().into_iter().filter(|&n| n != 0).collect();
    let plan = plan_recovery(&assignment, &failed, &alive);
    assert_eq!(plan.len(), 2);
    for (&task, &node) in &plan {
        assert!(assignment[task] == 3 && node != 3);
    }
}
