//! Smoke tests exercising reduced versions of every `examples/` program, so
//! the exact flows a user runs with `cargo run --example …` are covered by
//! `cargo test` end-to-end (threaded cluster, Awave RTM, Task Bench real +
//! simulated, and the dataflow pipeline).

use ompc::awave::{migrate, run_shots_on_cluster, ModelKind, RtmParams, Shot, VelocityModel};
use ompc::baselines::{block_assignment, BaselineRuntime, MpiSyncRuntime};
use ompc::prelude::*;
use ompc::sim::ClusterConfig;
use ompc::taskbench::{
    generate_workload, register_taskbench_kernel, DependencePattern, TaskBenchConfig,
};

/// `examples/quickstart.rs`: the paper's Listing 1 (foo then bar on A).
#[test]
fn quickstart_listing1() {
    let mut device = ClusterDevice::spawn(3);
    let foo = device.register_kernel_fn("foo", 1e-4, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });
    let bar = device.register_kernel_fn("bar", 1e-4, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
    region.target(foo, vec![Dependence::inout(a)]);
    region.target(bar, vec![Dependence::inout(a)]);
    region.map_from(a);
    let report = region.run().expect("region execution failed");
    assert_eq!(device.buffer_f64s(a).unwrap(), vec![20.0, 30.0, 40.0, 50.0]);
    assert_eq!(report.target_tasks, 2);
    assert!(report.peak_in_flight >= 1);
    device.shutdown();
}

/// `examples/seismic_rtm.rs`, reduced: a tiny Sigsbee-like survey migrated
/// sequentially and on the cluster must agree to numerical precision.
#[test]
fn seismic_rtm_cluster_matches_sequential() {
    let model = VelocityModel::generate(ModelKind::SigsbeeLike, 24, 24, 20.0);
    let shots: Vec<Shot> =
        [6usize, 12, 18].iter().map(|&x| Shot { source_x: x, source_z: 2 }).collect();
    let params = RtmParams { nt: 40, snapshot_every: 4, smoothing_passes: 2 };
    let reference = migrate(&model, &shots, &params);
    let mut device = ClusterDevice::spawn(2);
    let clustered =
        run_shots_on_cluster(&device, &model, &shots, &params).expect("clustered migration failed");
    device.shutdown();
    let max_diff = clustered
        .values
        .iter()
        .zip(&reference.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "clustered image deviates by {max_diff}");
}

/// `examples/taskbench_stencil.rs`, reduced: the real-mode stencil plus the
/// simulated paper configuration.
#[test]
fn taskbench_stencil_real_and_simulated() {
    // Real mode: 4-point × 4-step stencil on 2 workers.
    let width = 4usize;
    let steps = 4usize;
    let mut device = ClusterDevice::spawn(2);
    let kernel = register_taskbench_kernel(&device, 5_000);
    let mut region = device.target_region();
    let buffers: Vec<BufferId> = (0..width)
        .map(|p| region.map_to(ompc::mpi::typed::u64s_to_bytes(&[p as u64 + 1])))
        .collect();
    let pattern = DependencePattern::Stencil1D;
    for step in 1..steps {
        for point in 0..width {
            let mut deps = vec![Dependence::inout(buffers[point])];
            for dep in pattern.dependencies(point, step, width) {
                if dep != point {
                    deps.push(Dependence::input(buffers[dep]));
                }
            }
            region.target(kernel, deps);
        }
    }
    for &b in &buffers {
        region.map_from(b);
    }
    let report = region.run().expect("stencil region failed");
    assert_eq!(report.target_tasks, width * (steps - 1));
    for &b in &buffers {
        let out = ompc::mpi::typed::bytes_to_u64s(&device.buffer_data(b).unwrap()).unwrap();
        assert!(!out.is_empty());
    }
    device.shutdown();

    // Simulated mode: OMPC vs the synchronous-MPI baseline on 8 nodes.
    let config = TaskBenchConfig::new(DependencePattern::Stencil1D, 8, 4, 1_000_000, 1 << 14);
    let workload = generate_workload(&config);
    let cluster = ClusterConfig::santos_dumont(8);
    let ompc_time =
        simulate_ompc(&workload, &cluster, &OmpcConfig::default(), &OverheadModel::default())
            .unwrap();
    let mpi = MpiSyncRuntime::new().run(
        &workload,
        &cluster,
        &block_assignment(config.width, config.steps, 8),
    );
    assert!(ompc_time.makespan.as_secs_f64() > 0.0);
    assert!(mpi.makespan.as_secs_f64() > 0.0);
}

/// `examples/pipeline_dataflow.rs`, reduced: produce → fan-out transforms →
/// reduce → host task, checking the data-manager forwarding semantics.
#[test]
fn pipeline_dataflow_produces_expected_sum() {
    const LANES: usize = 4;
    const N: usize = 8;
    let mut device = ClusterDevice::spawn(3);
    let produce = device.register_kernel_fn("produce", 1e-5, |args| {
        let n = args.as_f64s(0).len();
        let ramp: Vec<f64> = (0..n).map(|i| i as f64).collect();
        args.set_f64s(0, &ramp);
    });
    let transform = device.register_kernel_fn("transform", 1e-5, |args| {
        let factor = args.as_f64s(1)[0];
        let scaled: Vec<f64> = args.as_f64s(0).iter().map(|x| x * factor).collect();
        args.set_f64s(2, &scaled);
    });
    let reduce = device.register_kernel_fn("reduce", 1e-5, |args| {
        let lanes = args.len() - 1;
        let n = args.as_f64s(0).len();
        let mut total = vec![0.0f64; n];
        for lane in 0..lanes {
            for (t, v) in total.iter_mut().zip(args.as_f64s(lane)) {
                *t += v;
            }
        }
        args.set_f64s(lanes, &total);
    });

    let mut region = device.target_region();
    let input = region.map_alloc(N * 8);
    region.target(produce, vec![Dependence::output(input)]);
    let mut lane_outputs = Vec::new();
    for lane in 0..LANES {
        let factor = region.map_to_f64s(&[(lane + 1) as f64]);
        let out = region.map_alloc(N * 8);
        region.target(
            transform,
            vec![Dependence::input(input), Dependence::input(factor), Dependence::output(out)],
        );
        lane_outputs.push(out);
    }
    let total = region.map_alloc(N * 8);
    let mut reduce_deps: Vec<Dependence> =
        lane_outputs.iter().map(|&b| Dependence::input(b)).collect();
    reduce_deps.push(Dependence::output(total));
    region.target(reduce, reduce_deps);
    region.map_from(total);
    region.run().expect("pipeline region failed");

    // Sum over lanes of (lane+1) * i == i * LANES*(LANES+1)/2.
    let factor_sum = (LANES * (LANES + 1) / 2) as f64;
    let expected: Vec<f64> = (0..N).map(|i| i as f64 * factor_sum).collect();
    assert_eq!(device.buffer_f64s(total).unwrap(), expected);
    device.shutdown();
}
