//! Integration tests of the error-aware event protocol: a worker-side
//! handler failure (unregistered kernel, injected task error) or a worker
//! death mid-run must surface as a propagated `OmpcError` from **all
//! three** execution backends (simulated, threaded, message-passing MPI)
//! within bounded time — never as a head-side hang — and the backends must
//! agree on the decision record of the failed run. Every test body runs
//! under a 120 s watchdog so any future protocol hang fails fast instead
//! of wedging the suite.

use ompc::prelude::*;
use ompc::sched::TaskGraph;
use ompc::sim::ClusterConfig;
use ompc_testutil::with_timeout;
use std::time::Duration;

/// Per-test watchdog: generous for slow CI, tiny next to a wedged job.
const WATCHDOG: Duration = Duration::from_secs(120);

fn chain_workload(n: usize, cost: f64, bytes: u64) -> WorkloadGraph {
    let mut g = TaskGraph::new();
    for _ in 0..n {
        g.add_task(cost);
    }
    for t in 1..n {
        g.add_edge(t - 1, t, bytes);
    }
    WorkloadGraph::new(g, vec![bytes; n])
}

#[test]
fn unregistered_kernel_errors_all_backends_with_equivalent_records() {
    with_timeout(WATCHDOG, || {
        // A 6-task chain alternating between two workers; task 3's
        // execution is forced to fail at the protocol layer (the threaded
        // and MPI backends execute a genuinely unregistered kernel, the
        // simulated backend models the same failed reply).
        let n = 6usize;
        let workload = chain_workload(n, 0.002, 1024);
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().error_on_task(3),
            max_inflight_tasks: Some(1),
            ..OmpcConfig::small()
        };
        let assignment: Vec<NodeId> = (0..n).map(|t| 1 + t % 2).collect();
        let plan = RuntimePlan { assignment, window: config.inflight_window() };

        let outcome = simulate_ompc_outcome(
            &workload,
            &ClusterConfig::santos_dumont(3),
            &config,
            &OverheadModel::default(),
            Some(&plan),
        );
        let sim_record = outcome.record;
        let sim_err = outcome.result.unwrap_err();
        assert!(
            matches!(sim_err.root_cause(), OmpcError::UnknownKernel(_)),
            "sim: expected an unknown-kernel root cause, got {sim_err:?}"
        );
        assert_eq!(sim_err.origin_node(), Some(plan.assignment[3]), "sim blames the wrong node");

        let mut records = Vec::new();
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let mut device =
                ClusterDevice::with_config(2, OmpcConfig { backend, ..config.clone() });
            let err = device.run_workload(&workload, &plan).unwrap_err();
            assert!(
                matches!(err.root_cause(), OmpcError::UnknownKernel(_)),
                "{}: expected an unknown-kernel root cause, got {err:?}",
                backend.name()
            );
            assert_eq!(err.origin_node(), Some(plan.assignment[3]), "{}", backend.name());
            records.push((
                backend.name(),
                device.last_run_record().expect("failed runs keep their record"),
            ));
            device.shutdown();
        }

        // Backend-equivalent records of the failed run: identical
        // dispatches and identical completions before the propagated error.
        assert_eq!(sim_record.completion_order, vec![0, 1, 2]);
        for (name, record) in &records {
            assert_eq!(sim_record.completion_order, record.completion_order, "{name}");
            assert_eq!(sim_record.dispatch_order, record.dispatch_order, "{name}");
            assert_eq!(sim_record.assignment, record.assignment, "{name}");
            assert!(record.failures.is_empty(), "{name}");
        }
        assert!(sim_record.failures.is_empty());
    });
}

#[test]
fn unregistered_kernel_in_a_target_region_is_an_error_not_a_hang() {
    with_timeout(WATCHDOG, || {
        // Offload a kernel id that was never registered: the worker's
        // handler fails, and the typed error reply propagates out of
        // `TargetRegion::run` attributing the executing node.
        let mut device = ClusterDevice::spawn(2);
        let bogus = KernelId(424_242);
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0, 2.0]);
        region.target(bogus, vec![Dependence::inout(a)]);
        region.map_from(a);
        let err = region.run().unwrap_err();
        assert_eq!(err.root_cause(), &OmpcError::UnknownKernel(bogus), "got {err:?}");
        let node = err.origin_node().expect("the error names the failing node");
        assert!((1..=2).contains(&node), "blamed node {node} is not a worker");
        device.shutdown();
    });
}

#[test]
fn mid_run_death_of_the_only_worker_errors_all_backends_in_bounded_time() {
    with_timeout(WATCHDOG, || {
        // The only worker dies after its second retirement, with work (and
        // its data) still on it: nothing can recover, so every backend
        // must report `NodeFailure` — the threaded and MPI backends kill
        // the worker's event loop for real, so this also proves the killed
        // node's error replies keep the head from hanging (for the MPI
        // backend: the zombie gate answers composite task messages with
        // typed refusals).
        let n = 6usize;
        let workload = chain_workload(n, 0.002, 1024);
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().fail_after_completions(1, 2),
            max_inflight_tasks: Some(1),
            ..OmpcConfig::small()
        };
        let plan = RuntimePlan { assignment: vec![1; n], window: config.inflight_window() };

        let outcome = simulate_ompc_outcome(
            &workload,
            &ClusterConfig::santos_dumont(2),
            &config,
            &OverheadModel::default(),
            Some(&plan),
        );
        let sim_record = outcome.record;
        assert_eq!(outcome.result.unwrap_err(), OmpcError::NodeFailure(1));
        assert_eq!(sim_record.completion_order, vec![0, 1]);
        assert_eq!(sim_record.failures.len(), 1);
        assert_eq!(sim_record.failures[0].node, 1);

        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let mut device =
                ClusterDevice::with_config(1, OmpcConfig { backend, ..config.clone() });
            let err = device.run_workload(&workload, &plan).unwrap_err();
            assert_eq!(err, OmpcError::NodeFailure(1), "{}", backend.name());
            let record = device.last_run_record().unwrap();
            device.shutdown();

            // Equivalent decision records (fault-clock timestamps aside):
            // the same completions retired before the death, the same
            // failure declared, the same tasks caught by the
            // lineage/restart machinery.
            let name = backend.name();
            assert_eq!(sim_record.completion_order, record.completion_order, "{name}");
            assert_eq!(record.failures.len(), 1, "{name}");
            assert_eq!(record.failures[0].node, 1, "{name}");
            assert_eq!(sim_record.failures[0].lost_buffers, record.failures[0].lost_buffers);
            assert_eq!(sim_record.failures[0].lineage_tasks, record.failures[0].lineage_tasks);
            assert_eq!(sim_record.reexecuted, record.reexecuted, "{name}");
            assert_eq!(sim_record.assignment, record.assignment, "{name}");
        }
    });
}

#[test]
fn device_survives_a_task_error_and_reuses_its_long_lived_pool() {
    with_timeout(WATCHDOG, || {
        // Region 1 fails with a worker-side handler error; region 2 on the
        // same device must still run to completion through the same
        // long-lived pool (no stale work from the failed region bleeds in).
        let mut device = ClusterDevice::spawn(2);
        let bump = device.register_kernel_fn("bump", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });

        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0]);
        region.target(KernelId(999_999), vec![Dependence::inout(a)]);
        region.map_from(a);
        let err = region.run().unwrap_err();
        assert!(matches!(err.root_cause(), OmpcError::UnknownKernel(_)));
        let threads_after_failure = device.pool_threads();
        assert!(threads_after_failure > 0, "the pool survives a failed region");

        let mut region = device.target_region();
        let b = region.map_to_f64s(&[10.0, 20.0]);
        region.target(bump, vec![Dependence::inout(b)]);
        region.map_from(b);
        region.run().unwrap();
        assert_eq!(device.buffer_f64s(b).unwrap(), vec![11.0, 21.0]);
        device.shutdown();
    });
}

#[test]
fn pool_is_sized_by_min_of_threads_window_and_tasks_and_grows_lazily() {
    with_timeout(WATCHDOG, || {
        let config = OmpcConfig { head_worker_threads: 4, ..OmpcConfig::small() };
        let mut device = ClusterDevice::with_config(2, config);
        assert_eq!(device.pool_threads(), 0, "no region executed, no pool threads yet");
        let noop = device.register_kernel_fn("noop", 1e-6, |_| {});

        // A 3-task region (enter + target + exit) needs only 3 threads.
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[0.0]);
        region.target(noop, vec![Dependence::inout(a)]);
        region.map_from(a);
        region.run().unwrap();
        assert_eq!(device.pool_threads(), 3, "pool sized min(threads=4, window=4, tasks=3)");

        // A larger region grows the pool to the thread cap — and reuses
        // the existing threads instead of respawning.
        let mut region = device.target_region();
        let buffers: Vec<BufferId> = (0..8).map(|i| region.map_to_f64s(&[i as f64])).collect();
        for &b in &buffers {
            region.target(noop, vec![Dependence::inout(b)]);
        }
        region.run().unwrap();
        assert_eq!(device.pool_threads(), 4, "pool grew to head_worker_threads and no further");

        // A small region afterwards keeps the grown pool (no churn).
        let mut region = device.target_region();
        let c = region.map_to_f64s(&[0.0]);
        region.target(noop, vec![Dependence::inout(c)]);
        region.run().unwrap();
        assert_eq!(device.pool_threads(), 4);
        device.shutdown();
        assert_eq!(device.pool_threads(), 0, "shutdown drains the pool");
    });
}

#[test]
fn wall_clock_trigger_kills_a_worker_during_a_long_run() {
    with_timeout(WATCHDOG, || {
        // `AtWallMillis(0)` fires on the first heartbeat round of the run:
        // the victim dies by real elapsed time (the soak-test trigger) and
        // recovery completes the region on the survivor with correct bytes.
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().fail_at_wall_millis(1, 0),
            ..OmpcConfig::small()
        };
        let mut device = ClusterDevice::with_config(2, config);
        let bump = device.register_kernel_fn("bump", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0, 2.0]);
        region.target(bump, vec![Dependence::inout(a)]);
        region.target(bump, vec![Dependence::inout(a)]);
        region.map_from(a);
        region.run().unwrap();
        assert_eq!(device.buffer_f64s(a).unwrap(), vec![3.0, 4.0]);
        let record = device.last_run_record().unwrap();
        assert_eq!(record.failures.len(), 1);
        assert_eq!(record.failures[0].node, 1);
        assert_eq!(device.alive_workers(), vec![2]);
        device.shutdown();
    });
}

#[test]
fn out_of_range_task_error_is_rejected_by_all_backends() {
    with_timeout(WATCHDOG, || {
        // A typo'd task index in `error_on_task` must fail the run up
        // front with `InvalidConfig`, not silently degrade the fault plan
        // to a no-op.
        let n = 4usize;
        let workload = chain_workload(n, 0.002, 1024);
        let config =
            OmpcConfig { fault_plan: FaultPlan::none().error_on_task(30), ..OmpcConfig::small() };
        let plan = RuntimePlan { assignment: vec![1; n], window: config.inflight_window() };

        let outcome = simulate_ompc_outcome(
            &workload,
            &ClusterConfig::santos_dumont(2),
            &config,
            &OverheadModel::default(),
            Some(&plan),
        );
        assert!(matches!(outcome.result.unwrap_err(), OmpcError::InvalidConfig(_)));

        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let mut device =
                ClusterDevice::with_config(1, OmpcConfig { backend, ..config.clone() });
            let err = device.run_workload(&workload, &plan).unwrap_err();
            assert!(matches!(err, OmpcError::InvalidConfig(_)), "{}: got {err:?}", backend.name());
            device.shutdown();
        }
    });
}

#[test]
fn idle_pool_threads_are_reaped_after_the_timeout() {
    with_timeout(WATCHDOG, || {
        // With `pool_idle_timeout_ms` set, the long-lived pool shrinks
        // below its high-water mark once the device goes quiet — the fix
        // for devices alternating huge and tiny regions — and re-grows
        // lazily when the next region needs threads again.
        let config = OmpcConfig {
            head_worker_threads: 4,
            pool_idle_timeout_ms: Some(100),
            ..OmpcConfig::small()
        };
        let mut device = ClusterDevice::with_config(2, config);
        let noop = device.register_kernel_fn("noop", 1e-6, |_| {});

        let mut region = device.target_region();
        let buffers: Vec<BufferId> = (0..8).map(|i| region.map_to_f64s(&[i as f64])).collect();
        for &b in &buffers {
            region.target(noop, vec![Dependence::inout(b)]);
        }
        region.run().unwrap();
        assert_eq!(device.pool_threads(), 4, "the region grew the pool to the thread cap");

        // Past the idle timeout every thread exits; poll rather than
        // assuming exact reaper timing.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while device.pool_threads() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(device.pool_threads(), 0, "idle threads must be reaped after the timeout");

        // The next region re-grows the pool and still runs correctly.
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[41.0]);
        let bump = device.register_kernel_fn("bump", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        region.target(bump, vec![Dependence::inout(a)]);
        region.map_from(a);
        region.run().unwrap();
        assert_eq!(device.buffer_f64s(a).unwrap(), vec![42.0]);
        assert!(device.pool_threads() > 0, "the pool re-grew for the new region");
        device.shutdown();
        assert_eq!(device.pool_threads(), 0);
    });
}
