use ompc::prelude::*;
use ompc::sched::TaskGraph;

#[test]
fn second_region_failure_must_not_recover_onto_a_node_dead_from_region_one() {
    // 3 workers. Region 1 kills node 1; region 2 kills node 2.
    let plan = FaultPlan::none().fail_after_completions(1, 1).fail_after_completions(2, 2);
    let config = OmpcConfig { fault_plan: plan, ..OmpcConfig::small() };
    let device = ClusterDevice::with_config(3, config.clone());

    // Region 1: a 3-task chain pinned to node 1; node 1 dies, recovery moves it.
    let mut g = TaskGraph::new();
    for _ in 0..3 {
        g.add_task(0.005);
    }
    for t in 1..3 {
        g.add_edge(t - 1, t, 1024);
    }
    let w1 = WorkloadGraph::new(g, vec![1024; 3]);
    let p1 = RuntimePlan { assignment: vec![1, 1, 1], window: 1 };
    let r1 = device.run_workload(&w1, &p1).unwrap();
    assert_eq!(r1.failures.len(), 1);
    assert_eq!(device.alive_workers(), vec![2, 3]);

    // Region 2: a chain on nodes 2 and 3; node 2 dies mid-region.
    let mut g = TaskGraph::new();
    for _ in 0..8 {
        g.add_task(0.005);
    }
    for t in 1..8 {
        g.add_edge(t - 1, t, 1024);
    }
    let w2 = WorkloadGraph::new(g, vec![1024; 8]);
    let p2 = RuntimePlan { assignment: vec![2, 2, 2, 2, 3, 3, 3, 3], window: 1 };
    let r2 = device.run_workload(&w2, &p2).unwrap();
    assert_eq!(r2.failures.len(), 1, "node 2 must die in region 2");
    // Recovery must only ever target node 3, the sole true survivor.
    for rp in &r2.replanned {
        assert_ne!(
            rp.to, 1,
            "recovery reassigned task {} onto node 1, which died in region 1: {:?}",
            rp.task, r2.replanned
        );
    }
    for (t, &n) in r2.assignment.iter().enumerate() {
        assert_ne!(n, 1, "task {t} ended on long-dead node 1: {:?}", r2.assignment);
    }
}
