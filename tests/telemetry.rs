//! Integration tests of the runtime telemetry subsystem: lifecycle spans
//! recorded by the two real backends must nest correctly on the shared
//! monotonic clock, retirement spans must track execution attempts exactly
//! (including under injected node failures), and telemetry must be purely
//! observational — a run at `TelemetryLevel::Off` produces the same
//! `RunRecord` (modulo the then-empty span list) as a run at `Spans`.

use ompc::prelude::*;
use ompc::sched::TaskGraph;
use ompc_testutil::with_timeout;
use std::collections::HashMap;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

fn spans_config(backend: BackendKind) -> OmpcConfig {
    OmpcConfig { backend, telemetry: TelemetryLevel::Spans, ..OmpcConfig::small() }
}

/// Run the Listing-1-style chain (`plus_one` then `times_ten` on one
/// vector) on a two-worker device and return the final bytes plus the
/// run record.
fn run_chain(config: OmpcConfig) -> (Vec<f64>, RunRecord) {
    let mut device = ClusterDevice::with_config(2, config);
    let plus_one = device.register_kernel_fn("plus-one", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
        args.set_f64s(0, &v);
    });
    let times_ten = device.register_kernel_fn("times-ten", 1e-5, |args| {
        let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
        args.set_f64s(0, &v);
    });
    let mut region = device.target_region();
    let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
    region.target(plus_one, vec![Dependence::inout(a)]);
    region.target(times_ten, vec![Dependence::inout(a)]);
    region.map_from(a);
    region.run().unwrap();
    let result = device.buffer_f64s(a).unwrap();
    let record = device.last_run_record().expect("the device executed a region");
    device.shutdown();
    (result, record)
}

/// A three-task chain workload and the fixed plan both backends execute it
/// under — completion order is forced by the dependences, so the records
/// of two runs are comparable field by field.
fn chain_workload() -> (WorkloadGraph, RuntimePlan) {
    let mut g = TaskGraph::new();
    for _ in 0..3 {
        g.add_task(0.001);
    }
    g.add_edge(0, 1, 256);
    g.add_edge(1, 2, 256);
    let workload = WorkloadGraph::new(g, vec![256; 3]);
    let plan = RuntimePlan { assignment: vec![1, 1, 2], window: 4 };
    (workload, plan)
}

#[test]
fn spans_nest_on_the_shared_clock_on_both_real_backends() {
    with_timeout(WATCHDOG, || {
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let (result, record) = run_chain(spans_config(backend));
            assert_eq!(result, vec![20.0, 30.0, 40.0, 50.0]);
            assert!(!record.spans.is_empty(), "{backend:?}: a Spans run records spans");
            for span in &record.spans {
                assert!(
                    span.end_us >= span.start_us,
                    "{backend:?}: span ends never precede their start: {span:?}"
                );
            }
            // The lifecycle phases of a real dispatch all appear. The
            // wire-protocol phases (per-payload sends, worker replies,
            // train envelopes) only exist on the message-passing backend;
            // the threaded backend moves co-located data without them.
            let mut expected = vec![
                SpanPhase::Schedule,
                SpanPhase::Dispatch,
                SpanPhase::Serialize,
                SpanPhase::WorkerRecv,
                SpanPhase::WorkerAwait,
                SpanPhase::Compute,
                SpanPhase::Retire,
            ];
            if backend == BackendKind::Mpi {
                expected.extend([SpanPhase::Send, SpanPhase::Reply, SpanPhase::TrainFlush]);
            }
            for phase in expected {
                assert!(
                    record.spans.iter().any(|s| s.phase == phase),
                    "{backend:?}: the chain run records a {phase:?} span"
                );
            }
            // Head-side phases sit on node 0, kernel bodies on workers.
            for span in &record.spans {
                match span.phase {
                    SpanPhase::Schedule | SpanPhase::Dispatch | SpanPhase::Retire => {
                        assert_eq!(span.node, 0, "{backend:?}: {span:?} belongs to the head")
                    }
                    SpanPhase::Compute => {
                        assert!(span.node >= 1, "{backend:?}: kernels run on workers: {span:?}")
                    }
                    _ => {}
                }
            }
            // Worker-side nesting per attempt: the receive stamp opens the
            // await window, the kernel body starts inside it, and the head
            // retires the task only after the kernel body ended.
            for compute in record.spans.iter().filter(|s| s.phase == SpanPhase::Compute) {
                let key = (compute.task, compute.attempt);
                let recv = record
                    .spans
                    .iter()
                    .find(|s| s.phase == SpanPhase::WorkerRecv && (s.task, s.attempt) == key)
                    .unwrap_or_else(|| panic!("{backend:?}: no WorkerRecv for {key:?}"));
                let await_span = record
                    .spans
                    .iter()
                    .find(|s| s.phase == SpanPhase::WorkerAwait && (s.task, s.attempt) == key)
                    .unwrap_or_else(|| panic!("{backend:?}: no WorkerAwait for {key:?}"));
                let retire = record
                    .spans
                    .iter()
                    .find(|s| s.phase == SpanPhase::Retire && (s.task, s.attempt) == key)
                    .unwrap_or_else(|| panic!("{backend:?}: no Retire for {key:?}"));
                assert!(recv.start_us <= await_span.start_us);
                assert!(await_span.start_us <= compute.start_us);
                assert!(compute.start_us <= compute.end_us);
                assert!(
                    retire.start_us >= compute.end_us,
                    "{backend:?}: task {key:?} retired before its kernel body ended"
                );
            }
            // The derived views hold together: every bucket total is
            // within the wall window, and the critical path is a
            // time-respecting chain ending at the last span.
            let attribution = record.attribution();
            assert!(attribution.wall_us > 0);
            assert!(attribution.compute_us > 0, "{backend:?}: kernel bodies were measured");
            let path = record.critical_path();
            assert!(!path.is_empty());
            // The extractor returns the chain in ascending time order:
            // each hop finishes before the next one starts.
            for pair in path.windows(2) {
                assert!(
                    pair[0].end_us <= pair[1].start_us,
                    "{backend:?}: critical path is not a time-respecting chain"
                );
            }
        }
    });
}

#[test]
fn exactly_one_retire_span_per_attempt_under_injected_failure() {
    with_timeout(WATCHDOG, || {
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let (clean, clean_record) = run_chain(spans_config(backend));
            let victim = clean_record.assignment[1];
            assert!(victim >= 1, "the first kernel runs on a worker");
            let config = OmpcConfig {
                fault_plan: FaultPlan::none().fail_after_completions(victim, 2),
                ..spans_config(backend)
            };
            let (recovered, record) = run_chain(config);
            assert_eq!(recovered, clean, "recovery reproduces the failure-free bytes");
            assert_eq!(record.failures.len(), 1);
            assert!(!record.reexecuted.is_empty());

            // One Retire span per retirement, keyed (task, attempt):
            // re-executions retire again at a higher attempt, stale
            // completions from the dead node retire nothing.
            let retires: Vec<_> =
                record.spans.iter().filter(|s| s.phase == SpanPhase::Retire).collect();
            assert_eq!(
                retires.len(),
                record.completion_order.len(),
                "{backend:?}: every retirement records exactly one Retire span"
            );
            let mut seen: HashMap<(Option<usize>, u32), usize> = HashMap::new();
            for retire in &retires {
                *seen.entry((retire.task, retire.attempt)).or_insert(0) += 1;
            }
            assert!(
                seen.values().all(|&n| n == 1),
                "{backend:?}: no (task, attempt) pair retires twice: {seen:?}"
            );
            for &task in &record.reexecuted {
                assert!(
                    retires.iter().any(|s| s.task == Some(task) && s.attempt >= 1),
                    "{backend:?}: re-executed task {task} retires at a later attempt"
                );
            }
            // The failure's replanning is visible on the timeline.
            assert!(
                record.spans.iter().any(|s| s.phase == SpanPhase::Replan),
                "{backend:?}: the recovery replan records a span"
            );
        }
    });
}

#[test]
fn telemetry_off_is_observationally_identical_on_both_real_backends() {
    with_timeout(WATCHDOG, || {
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let (workload, plan) = chain_workload();
            let run = |level: TelemetryLevel| {
                let config = OmpcConfig { telemetry: level, ..spans_config(backend) };
                let mut device = ClusterDevice::with_config(2, config);
                let record = device.run_workload(&workload, &plan).unwrap();
                device.shutdown();
                record
            };
            let off = run(TelemetryLevel::Off);
            let mut spans = run(TelemetryLevel::Spans);
            assert!(off.spans.is_empty(), "{backend:?}: Off records no spans");
            assert!(!spans.spans.is_empty(), "{backend:?}: Spans records the timeline");
            spans.spans = Vec::new();
            assert_eq!(
                off, spans,
                "{backend:?}: spans are observational — the record is identical modulo them"
            );
        }
    });
}

/// Overlapped regions own their timelines: each client's record carries
/// spans tagged with *its* region epoch, and a combined Chrome trace
/// renders the tenants as separate process rows (`pid` = region), so an
/// overlapped run is readable instead of one interleaved soup.
#[test]
fn overlapped_regions_render_as_separate_trace_rows() {
    with_timeout(WATCHDOG, || {
        for backend in [BackendKind::Threaded, BackendKind::Mpi] {
            let config = OmpcConfig { max_concurrent_regions: 2, ..spans_config(backend) };
            let mut device = ClusterDevice::with_config(2, config);
            let sum = device.register_kernel_fn("sum", 1e-6, |args| {
                let total: f64 = args.as_f64s(0).iter().sum();
                args.set_f64s(1, &[total]);
            });
            let results: Vec<(RegionReport, RunRecord)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..2)
                    .map(|i| {
                        let device = &device;
                        scope.spawn(move || {
                            let mut region = device.target_region();
                            let a = region.map_to_f64s(&[i as f64 + 1.0, 2.0]);
                            let out = region.map_alloc(8);
                            region.target(sum, vec![Dependence::input(a), Dependence::output(out)]);
                            region.map_from(out);
                            region.run_recorded().unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            device.shutdown();

            let regions: Vec<u64> = results.iter().map(|(report, _)| report.region).collect();
            assert_ne!(regions[0], regions[1], "{backend:?}: tenants share a region id");
            for (report, record) in &results {
                // The lifecycle spans of this client's record are tagged
                // with this client's epoch — never a neighbour's. (Device-
                // level spans drained alongside may be untagged; region-
                // tagged spans must be ours.)
                let lifecycle = [SpanPhase::Schedule, SpanPhase::Dispatch, SpanPhase::Compute];
                for phase in lifecycle {
                    let spans: Vec<_> = record.spans.iter().filter(|s| s.phase == phase).collect();
                    assert!(!spans.is_empty(), "{backend:?}: no {phase:?} span recorded");
                    for span in spans {
                        assert_eq!(
                            span.region,
                            Some(report.region),
                            "{backend:?}: {phase:?} span tagged with a foreign region: {span:?}"
                        );
                    }
                }
            }

            // A combined trace of both tenants renders one process row
            // group per region epoch.
            let mut all_spans: Vec<Span> = Vec::new();
            for (_, record) in &results {
                all_spans.extend(record.spans.iter().cloned());
            }
            let text = chrome_trace(&all_spans, "overlap").to_string_pretty();
            for &region in &regions {
                assert!(
                    text.contains(&format!("overlap · region {region}")),
                    "{backend:?}: trace is missing the row group for region {region}"
                );
            }
        }
    });
}

#[test]
fn chrome_trace_export_is_valid_for_a_real_run() {
    with_timeout(WATCHDOG, || {
        let (_, record) = run_chain(spans_config(BackendKind::Mpi));
        let trace = chrome_trace(&record.spans, "mpi chain");
        let text = trace.to_string_pretty();
        assert!(text.starts_with('{'));
        assert!(text.contains("traceEvents"));
        assert!(text.contains("\"ph\""), "the export carries trace events");
        // Attribution shares sum to 1 over the covered wall window.
        let attribution = record.attribution();
        let shares = attribution.scheduling_us
            + attribution.serialization_us
            + attribution.wire_us
            + attribution.compute_us
            + attribution.idle_us;
        assert!(shares > 0);
    });
}
