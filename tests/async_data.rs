//! The asynchronous data path proven byte-identical to the synchronous
//! one: seeded interleavings race `enter_data_async` jobs, host reads,
//! region launches, and `exit_data` against each other, and every run must
//! produce the same bytes and the same per-region transfer plan as the
//! synchronous path executing the identical op script. The interleaving
//! diversity comes from the device's test-only hold gate
//! (`debug_hold_async_transfers`): the seed decides when async jobs are
//! frozen and released, so each seed is a reproducible schedule. Everything
//! runs under ompc-testutil's 120 s watchdog and on both real backends.

use ompc::prelude::*;
use ompc_testutil::{with_timeout, Rng};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

const REAL_BACKENDS: [BackendKind; 2] = [BackendKind::Threaded, BackendKind::Mpi];

/// Seeded interleavings per backend (the ISSUE's floor is 20).
const INTERLEAVINGS: u64 = 20;

fn async_config(backend: BackendKind, enter_data_async: bool) -> OmpcConfig {
    OmpcConfig {
        backend,
        enter_data_async,
        // Serial dispatch window: the regime where async and sync transfer
        // plans are comparable entry for entry.
        max_inflight_tasks: Some(1),
        ..OmpcConfig::small()
    }
}

/// The reader kernel used throughout: out[0] = sum of the input.
fn register_sum(device: &ClusterDevice) -> KernelId {
    device.register_kernel_fn("sum", 1e-6, |args| {
        let total: f64 = args.as_f64s(0).iter().sum();
        args.set_f64s(1, &[total]);
    })
}

fn sorted(mut transfers: Vec<TransferRecord>) -> Vec<TransferRecord> {
    transfers.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
    transfers
}

/// Everything observable about one scripted run, in script order.
#[derive(Debug, Default, PartialEq)]
struct Observed {
    /// Per-region transfer plans (sorted — "set-identical").
    region_transfers: Vec<Vec<TransferRecord>>,
    /// Region outputs, host reads, and post-exit reads, byte for byte.
    outputs: Vec<f64>,
    host_reads: Vec<Vec<u8>>,
    /// Final host contents of every buffer ever entered.
    finals: Vec<Vec<u8>>,
}

/// Run the op script derived from `seed` on a fresh device. Both modes
/// draw **exactly the same** random values in the same order — async-only
/// decisions (hold/release, ticket awaits) are drawn unconditionally and
/// ignored in sync mode — so the scripts are aligned step for step.
fn scripted_run(backend: BackendKind, seed: u64, use_async: bool) -> Observed {
    let mut rng = Rng::new(seed);
    let workers = rng.range_usize(2, 4);
    let mut device = ClusterDevice::with_config(workers, async_config(backend, use_async));
    let sum = register_sum(&device);

    let mut observed = Observed::default();
    // Buffers entered but not yet read by a region, oldest first.
    let mut pending: Vec<BufferId> = Vec::new();
    // Buffers some region has read (still mapped on the device).
    let mut consumed: Vec<BufferId> = Vec::new();
    let mut entered: Vec<BufferId> = Vec::new();
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut held = false;

    let release = |device: &ClusterDevice, held: &mut bool| {
        if use_async && *held {
            device.debug_hold_async_transfers(false);
            *held = false;
        }
    };

    for _step in 0..14 {
        match rng.range(0, 10) {
            // Enter a fresh buffer; the async job may start frozen so it
            // races a seed-chosen number of later ops.
            0..=3 => {
                let len = rng.range_usize(1, 9);
                let vals: Vec<f64> =
                    (0..len).map(|i| rng.range(0, 1000) as f64 + i as f64).collect();
                let hold_this = rng.range(0, 2) == 0;
                let await_now = rng.range(0, 3) == 0;
                let buffer = if use_async {
                    if hold_this && !held {
                        device.debug_hold_async_transfers(true);
                        held = true;
                    }
                    let (buffer, ticket) = device.enter_data_async_f64s(&vals);
                    tickets.push(ticket);
                    buffer
                } else {
                    device.enter_data_f64s(&vals)
                };
                pending.push(buffer);
                entered.push(buffer);
                if await_now && use_async {
                    release(&device, &mut held);
                    device.await_transfer(*tickets.last().unwrap()).unwrap();
                }
            }
            // Launch a region reading the oldest pending buffer: in async
            // mode its first reader awaits the (possibly still in-flight)
            // enter-data transfer in place.
            4..=6 => {
                if pending.is_empty() {
                    continue;
                }
                release(&device, &mut held);
                let input = pending.remove(0);
                let mut region = device.target_region();
                let out = region.map_alloc(8);
                region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
                region.map_from(out);
                region.run().unwrap();
                let record = device.last_run_record().unwrap();
                observed.region_transfers.push(sorted(record.transfers));
                observed.outputs.push(device.buffer_f64s(out).unwrap()[0]);
                consumed.push(input);
            }
            // Host read of a device-resident buffer — the lazy-flush path;
            // async mode may overlap it with a double-buffered flush job.
            7..=8 => {
                if consumed.is_empty() {
                    continue;
                }
                let pick = rng.range_usize(0, consumed.len());
                let await_now = rng.range(0, 2) == 0;
                let buffer = consumed[pick];
                if use_async {
                    release(&device, &mut held);
                    let ticket = device.flush_async(buffer).unwrap();
                    if await_now {
                        device.await_transfer(ticket).unwrap();
                    }
                }
                observed.host_reads.push(device.buffer_data(buffer).unwrap());
            }
            // End a mapping: the flush + release must serialize behind any
            // transfer of the buffer still in flight.
            _ => {
                if consumed.is_empty() {
                    continue;
                }
                let pick = rng.range_usize(0, consumed.len());
                let buffer = consumed.remove(pick);
                release(&device, &mut held);
                device.exit_data(buffer).unwrap();
                observed.host_reads.push(device.buffer_data(buffer).unwrap());
            }
        }
    }

    release(&device, &mut held);
    if use_async {
        for ticket in tickets {
            device.await_transfer(ticket).unwrap();
        }
    }
    for &buffer in &entered {
        observed.finals.push(device.buffer_data(buffer).unwrap());
    }
    device.shutdown();
    observed
}

fn interleavings_match_sync(backend: BackendKind) {
    with_timeout(WATCHDOG, move || {
        for seed in 0..INTERLEAVINGS {
            let sync = scripted_run(backend, seed, false);
            let async_ = scripted_run(backend, seed, true);
            assert_eq!(
                sync,
                async_,
                "{} seed {seed}: async run diverged from the sync path",
                backend.name()
            );
        }
    });
}

/// ≥20 seeded interleavings, threaded backend: results and per-region
/// transfer plans byte/set-identical to the synchronous path.
#[test]
fn async_interleavings_match_sync_path_threaded() {
    interleavings_match_sync(BackendKind::Threaded);
}

/// ≥20 seeded interleavings, MPI backend: the first-reader `AwaitLocal`
/// protocol (one-car prefetch trains on the reserved tag) is observably
/// indistinguishable from the synchronous distribution.
#[test]
fn async_interleavings_match_sync_path_mpi() {
    interleavings_match_sync(BackendKind::Mpi);
}

/// The ticket surface: `enter_data_async` returns immediately even with
/// the wire frozen, awaiting is optional and idempotent, unknown tickets
/// read as completed, and the data is correct end to end.
#[test]
fn enter_data_async_tickets_resolve_and_overlap() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let mut device = ClusterDevice::with_config(2, async_config(backend, true));
            let sum = register_sum(&device);
            device.debug_hold_async_transfers(true);
            // Returns with the transfer frozen: the entry point is provably
            // non-blocking.
            let (input, ticket) = device.enter_data_async_f64s(&[1.0, 2.0, 3.0]);
            device.debug_hold_async_transfers(false);
            device.await_transfer(ticket).unwrap();
            // Awaiting twice (and awaiting a ticket never issued) is fine.
            device.await_transfer(ticket).unwrap();
            device.await_transfer(Ticket(u64::MAX)).unwrap();
            let mut region = device.target_region();
            let out = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
            region.map_from(out);
            region.run().unwrap();
            assert_eq!(
                device.buffer_f64s(out).unwrap()[0],
                6.0,
                "{}: region must read the async-entered data",
                backend.name()
            );
            device.shutdown();
        }
    });
}

/// Regression test for the latent double-flush: a host read racing an
/// in-flight retrieval of the same buffer must wait for it instead of
/// scheduling a second retrieve. The hold gate freezes the async flush so
/// the reader provably lands inside the race window.
#[test]
fn concurrent_flushes_schedule_exactly_one_retrieve() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let device =
                std::sync::Arc::new(ClusterDevice::with_config(2, async_config(backend, false)));
            let sum = register_sum(&device);
            let input = device.enter_data_f64s(&[4.0, 5.0]);
            let mut region = device.target_region();
            let out = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
            region.run().unwrap();
            // `out` now lives on a worker and the host copy is stale.
            device.take_unattributed_transfers();

            // Freeze the async flush mid-flight, then read from the host:
            // the read must block on the booked retrieval, not start its own.
            device.debug_hold_async_transfers(true);
            let ticket = device.flush_async(out).unwrap();
            // A second async flush of the same buffer piggybacks on the
            // first booking instead of scheduling a duplicate.
            let ticket2 = device.flush_async(out).unwrap();
            assert_eq!(ticket, ticket2, "{}: duplicate flush booked", backend.name());
            let reader = {
                let device = std::sync::Arc::clone(&device);
                std::thread::spawn(move || device.buffer_data(out).unwrap())
            };
            // Give the reader time to reach the wait, then release the job.
            std::thread::sleep(Duration::from_millis(50));
            device.debug_hold_async_transfers(false);
            device.await_transfer(ticket).unwrap();
            assert_eq!(
                reader.join().unwrap(),
                device.buffer_data(out).unwrap(),
                "{}: racing readers saw different bytes",
                backend.name()
            );
            assert_eq!(device.buffer_f64s(out).unwrap()[0], 9.0, "{}", backend.name());

            let retrieves: Vec<TransferRecord> = device
                .take_unattributed_transfers()
                .into_iter()
                .filter(|t| t.buffer == out)
                .collect();
            assert_eq!(
                retrieves.len(),
                1,
                "{}: one flush must reach the wire, got {retrieves:?}",
                backend.name()
            );

            // The purely synchronous race: many threads call `buffer_data`
            // at once; the in-flight table serializes them onto one retrieve.
            let mut region = device.target_region();
            let out2 = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(input), Dependence::output(out2)]);
            region.run().unwrap();
            device.take_unattributed_transfers();
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let device = std::sync::Arc::clone(&device);
                    std::thread::spawn(move || device.buffer_data(out2).unwrap())
                })
                .collect();
            let reads: Vec<Vec<u8>> = readers.into_iter().map(|r| r.join().unwrap()).collect();
            assert!(reads.windows(2).all(|w| w[0] == w[1]), "{}", backend.name());
            let retrieves = device
                .take_unattributed_transfers()
                .into_iter()
                .filter(|t| t.buffer == out2)
                .count();
            assert_eq!(retrieves, 1, "{}: concurrent host reads double-flushed", backend.name());
            match std::sync::Arc::try_unwrap(device) {
                Ok(mut device) => device.shutdown(),
                Err(_) => panic!("a reader thread leaked the device"),
            }
        }
    });
}

/// Region-level `map(to:)` inputs stream through the async prefetch
/// engine when `enter_data_async` is set: admission books the enter-data
/// transfers in flight before the backend starts, the backend's own
/// enter-data tasks await those bookings instead of re-planning, and the
/// adopted records leave the region's transfer plan **identical** to the
/// synchronous run — same buffers, sources, destinations, bytes, reasons.
#[test]
fn streamed_map_to_inputs_keep_transfer_plan_identity() {
    fn scripted(backend: BackendKind, stream: bool) -> (Vec<f64>, Vec<Vec<TransferRecord>>) {
        let mut device = ClusterDevice::with_config(2, async_config(backend, stream));
        let sum = register_sum(&device);
        let mut outputs = Vec::new();
        let mut plans = Vec::new();
        for round in 0..3 {
            let mut region = device.target_region();
            let a = region.map_to_f64s(&[round as f64 + 1.0, 2.0]);
            let b = region.map_to_f64s(&[10.0, 20.0, 30.0 + round as f64]);
            let out_a = region.map_alloc(8);
            let out_b = region.map_alloc(8);
            region.target(sum, vec![Dependence::input(a), Dependence::output(out_a)]);
            region.target(sum, vec![Dependence::input(b), Dependence::output(out_b)]);
            region.map_from(out_a);
            region.map_from(out_b);
            let (_, record) = region.run_recorded().unwrap();
            outputs.push(device.buffer_f64s(out_a).unwrap()[0]);
            outputs.push(device.buffer_f64s(out_b).unwrap()[0]);
            // Normalize buffer ids to their offset within the round so the
            // two devices' logs compare entry for entry.
            let base = a;
            let mut plan: Vec<TransferRecord> = record
                .transfers
                .iter()
                .map(|t| TransferRecord { buffer: BufferId(t.buffer.0 - base.0), ..*t })
                .collect();
            plan.sort_by_key(|t| (t.buffer, t.from, t.to, t.bytes));
            plans.push(plan);
        }
        device.shutdown();
        (outputs, plans)
    }

    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let sync = scripted(backend, false);
            let streamed = scripted(backend, true);
            assert_eq!(sync.0, streamed.0, "{}: streamed outputs diverged", backend.name());
            assert_eq!(
                sync.1,
                streamed.1,
                "{}: streamed map(to:) changed the region transfer plan",
                backend.name()
            );
            // The plan is not vacuously empty: every round distributes its
            // two fresh inputs.
            for plan in &streamed.1 {
                assert_eq!(
                    plan.iter().filter(|t| t.reason == TransferReason::EnterData).count(),
                    2,
                    "{}: expected both map(to:) distributions in the plan",
                    backend.name()
                );
            }
        }
    });
}

/// Cross-region prefetch through `run_pipeline`: outputs and the final
/// region's transfer plan match the sequential reference, and the prefetch
/// planner never duplicates a transfer for data that is already
/// worker-resident (or consumed by an earlier queued region).
#[test]
fn pipeline_prefetch_matches_sequential_and_never_duplicates() {
    with_timeout(WATCHDOG, || {
        for backend in REAL_BACKENDS {
            let data: Vec<Vec<f64>> =
                (0..4).map(|i| (0..4).map(|j| (i * 7 + j) as f64).collect()).collect();

            // Sequential reference: same regions, run one by one.
            let reference = {
                let mut device = ClusterDevice::with_config(2, async_config(backend, false));
                let sum = register_sum(&device);
                let inputs: Vec<BufferId> =
                    data.iter().map(|d| device.enter_data_f64s(d)).collect();
                let mut outputs = Vec::new();
                let mut last = Vec::new();
                for &input in &inputs {
                    let mut region = device.target_region();
                    let out = region.map_alloc(8);
                    region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
                    region.map_from(out);
                    region.run().unwrap();
                    outputs.push(device.buffer_f64s(out).unwrap()[0]);
                    last = sorted(device.last_run_record().unwrap().transfers);
                }
                device.shutdown();
                (outputs, last)
            };

            // Pipelined run with cross-region prefetch two regions deep.
            let config = OmpcConfig { prefetch_depth: 2, ..async_config(backend, false) };
            let mut device = ClusterDevice::with_config(2, config);
            let sum = register_sum(&device);
            let inputs: Vec<BufferId> = data.iter().map(|d| device.enter_data_f64s(d)).collect();
            let mut outs = Vec::new();
            let regions: Vec<TargetRegion<'_>> = inputs
                .iter()
                .map(|&input| {
                    let mut region = device.target_region();
                    let out = region.map_alloc(8);
                    region.target(sum, vec![Dependence::input(input), Dependence::output(out)]);
                    region.map_from(out);
                    outs.push(out);
                    region
                })
                .collect();
            let reports = device.run_pipeline(regions).unwrap();
            assert_eq!(reports.len(), 4, "{}", backend.name());
            let outputs: Vec<f64> =
                outs.iter().map(|&out| device.buffer_f64s(out).unwrap()[0]).collect();
            assert_eq!(outputs, reference.0, "{}: pipeline changed the results", backend.name());
            // The adopted prefetch records make the final region's plan
            // identical to the sequential one: one Input transfer, same
            // source, same destination, same bytes.
            let last = sorted(device.last_run_record().unwrap().transfers);
            assert_eq!(
                last,
                reference.1,
                "{}: pipelined transfer plan diverged from sequential",
                backend.name()
            );

            // Never-duplicate, hazard rule: a pipeline whose regions read
            // the *same* buffer must not prefetch it (an earlier queued
            // region still touches it) — the second region reads the
            // resident copy, moving nothing.
            let repeat = inputs[0];
            let regions: Vec<TargetRegion<'_>> = (0..2)
                .map(|_| {
                    let mut region = device.target_region();
                    let out = region.map_alloc(8);
                    region.target(sum, vec![Dependence::input(repeat), Dependence::output(out)]);
                    region.map_from(out);
                    region
                })
                .collect();
            device.run_pipeline(regions).unwrap();
            let record = device.last_run_record().unwrap();
            assert!(
                record
                    .transfers
                    .iter()
                    .all(|t| t.buffer != repeat || t.reason != TransferReason::Input),
                "{}: prefetch duplicated a worker-resident buffer: {:?}",
                backend.name(),
                record.transfers
            );
            device.shutdown();
        }
    });
}
