//! # ompc — the OpenMP Cluster programming model in Rust
//!
//! This is the facade crate of the workspace: it re-exports the crates that
//! make up the reproduction of *The OpenMP Cluster Programming Model*
//! (Yviquel et al., ICPP 2022) so examples, integration tests, and
//! downstream users can depend on a single crate.
//!
//! * [`mpi`] — in-process MPI-like message passing (ranks, tags,
//!   communicators, collectives).
//! * [`sim`] — deterministic discrete-event cluster simulator.
//! * [`sched`] — HEFT and the baseline schedulers.
//! * [`runtime`] — the OMPC runtime itself: cluster device, target regions,
//!   event system, data manager, simulated runtime.
//! * [`taskbench`] — the Task Bench workload generator.
//! * [`baselines`] — the Charm++-like, StarPU-like, and synchronous-MPI
//!   runtime models used for comparison.
//! * [`awave`] — the RTM seismic-imaging application.
//!
//! ```
//! use ompc::prelude::*;
//!
//! let mut device = ClusterDevice::spawn(2);
//! let double = device.register_kernel_fn("double", 1e-6, |args| {
//!     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| 2.0 * x).collect();
//!     args.set_f64s(0, &v);
//! });
//! let mut region = device.target_region();
//! let a = region.map_to_f64s(&[1.0, 2.0, 3.0]);
//! region.target(double, vec![Dependence::inout(a)]);
//! region.map_from(a);
//! region.run().unwrap();
//! assert_eq!(device.buffer_f64s(a).unwrap(), vec![2.0, 4.0, 6.0]);
//! device.shutdown();
//! ```

pub use ompc_awave as awave;
pub use ompc_baselines as baselines;
pub use ompc_core as runtime;
pub use ompc_mpi as mpi;
pub use ompc_sched as sched;
pub use ompc_sim as sim;
pub use ompc_taskbench as taskbench;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use ompc_core::prelude::*;
}
