//! Task Bench configuration: graph shape, task duration, and CCR control.

use crate::pattern::DependencePattern;
use ompc_sim::NetworkConfig;

/// Seconds per iteration of the Task Bench compute loop.
///
/// The paper reports 10M iterations ≈ 50 ms and 100M iterations ≈ 500 ms per
/// task, i.e. 5 ns per iteration on the Cascade Lake nodes; the same
/// calibration is used here so iteration counts from the paper translate
/// directly.
pub const SECONDS_PER_ITERATION: f64 = 5e-9;

/// A complete Task Bench problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBenchConfig {
    /// Dependence pattern (paper Fig. 4).
    pub pattern: DependencePattern,
    /// Number of points per timestep.
    pub width: usize,
    /// Number of timesteps.
    pub steps: usize,
    /// Iterations of the compute loop per task (duration = iterations ×
    /// [`SECONDS_PER_ITERATION`]).
    pub iterations: u64,
    /// Bytes produced by each task and carried on each outgoing dependence
    /// edge.
    pub output_bytes: u64,
}

impl TaskBenchConfig {
    /// A new configuration with explicit output bytes.
    pub fn new(
        pattern: DependencePattern,
        width: usize,
        steps: usize,
        iterations: u64,
        output_bytes: u64,
    ) -> Self {
        Self { pattern, width, steps, iterations, output_bytes }
    }

    /// The scalability experiment of Fig. 5: 10M-iteration (50 ms) tasks, a
    /// graph of width `2 × nodes` and 32 timesteps (weak scaling — the graph
    /// doubles with the node count), and output bytes tuned for a CCR of
    /// 1.0 on an InfiniBand-class network.
    pub fn figure5(pattern: DependencePattern, nodes: usize) -> Self {
        let mut cfg = Self::new(pattern, 2 * nodes, 32, 10_000_000, 0);
        cfg.output_bytes = cfg.bytes_for_ccr(1.0, &NetworkConfig::infiniband());
        cfg
    }

    /// The CCR experiment of Fig. 6: 16 nodes, a 16 × 16 graph, 100M
    /// iteration (500 ms) tasks, and output bytes chosen for the given CCR.
    pub fn figure6(pattern: DependencePattern, ccr: f64) -> Self {
        let mut cfg = Self::new(pattern, 16, 16, 100_000_000, 0);
        cfg.output_bytes = cfg.bytes_for_ccr(ccr, &NetworkConfig::infiniband());
        cfg
    }

    /// The overhead experiment of Fig. 7(a): one worker node, a 1 × 16
    /// graph with the Trivial (dependence-free) pattern, and a variable
    /// workload; the paper runs it with a single worker thread so tasks
    /// serialize on the node.
    pub fn figure7a(iterations: u64) -> Self {
        Self::new(DependencePattern::Trivial, 1, 16, iterations, 8)
    }

    /// Duration of one task in seconds.
    pub fn task_duration_secs(&self) -> f64 {
        self.iterations as f64 * SECONDS_PER_ITERATION
    }

    /// Total number of tasks in the graph.
    pub fn num_tasks(&self) -> usize {
        self.width * self.steps
    }

    /// Communication time per task implied by the current output size on
    /// `network`: incoming edges × unloaded transfer time.
    pub fn comm_time_per_task(&self, network: &NetworkConfig) -> f64 {
        let deps = self.pattern.mean_in_degree(self.width);
        deps * network.transfer_time(self.output_bytes).as_secs_f64()
    }

    /// The computation-to-communication ratio implied by the current
    /// configuration on `network` (infinite when no data is exchanged).
    pub fn ccr(&self, network: &NetworkConfig) -> f64 {
        let comm = self.comm_time_per_task(network);
        if comm == 0.0 {
            f64::INFINITY
        } else {
            self.task_duration_secs() / comm
        }
    }

    /// Output bytes needed to reach `target_ccr` on `network` given the
    /// current pattern, width, and iteration count. Returns 0 for patterns
    /// with no dependences (Trivial), where CCR is not defined.
    pub fn bytes_for_ccr(&self, target_ccr: f64, network: &NetworkConfig) -> u64 {
        assert!(target_ccr > 0.0, "CCR must be positive");
        let deps = self.pattern.mean_in_degree(self.width);
        if deps == 0.0 {
            return 0;
        }
        // comm_per_task = deps * (overheads + bytes / bandwidth)
        // target: compute / comm = ccr  =>  comm = compute / ccr
        let compute = self.task_duration_secs();
        let per_edge_target = compute / target_ccr / deps;
        let fixed = (network.latency + network.per_message_overhead).as_secs_f64();
        let variable = (per_edge_target - fixed).max(0.0);
        (variable * network.bandwidth_bytes_per_sec).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_calibration_matches_paper() {
        let cfg = TaskBenchConfig::new(DependencePattern::Stencil1D, 8, 8, 10_000_000, 0);
        assert!((cfg.task_duration_secs() - 0.05).abs() < 1e-12);
        let cfg = TaskBenchConfig::new(DependencePattern::Stencil1D, 8, 8, 100_000_000, 0);
        assert!((cfg.task_duration_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ccr_round_trips_through_bytes_for_ccr() {
        let net = NetworkConfig::infiniband();
        for &target in &[0.5, 1.0, 2.0] {
            let mut cfg =
                TaskBenchConfig::new(DependencePattern::Stencil1D, 16, 16, 100_000_000, 0);
            cfg.output_bytes = cfg.bytes_for_ccr(target, &net);
            assert!(cfg.output_bytes > 0);
            let achieved = cfg.ccr(&net);
            assert!(
                (achieved - target).abs() / target < 0.05,
                "target CCR {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn trivial_pattern_has_no_communication() {
        let net = NetworkConfig::infiniband();
        let cfg = TaskBenchConfig::figure5(DependencePattern::Trivial, 8);
        assert_eq!(cfg.output_bytes, 0);
        assert!(cfg.ccr(&net).is_infinite());
    }

    #[test]
    fn figure5_configuration_shape() {
        let cfg = TaskBenchConfig::figure5(DependencePattern::Fft, 16);
        assert_eq!(cfg.width, 32);
        assert_eq!(cfg.steps, 32);
        assert_eq!(cfg.num_tasks(), 1024);
        assert_eq!(cfg.iterations, 10_000_000);
        // Weak scaling: doubling nodes doubles the graph.
        let cfg2 = TaskBenchConfig::figure5(DependencePattern::Fft, 32);
        assert_eq!(cfg2.num_tasks(), 2 * cfg.num_tasks());
    }

    #[test]
    fn figure6_configuration_shape() {
        let cfg = TaskBenchConfig::figure6(DependencePattern::Tree, 2.0);
        assert_eq!((cfg.width, cfg.steps), (16, 16));
        assert_eq!(cfg.iterations, 100_000_000);
        let low = TaskBenchConfig::figure6(DependencePattern::Tree, 0.5);
        // Lower CCR (more communication) needs more bytes per edge.
        assert!(low.output_bytes > cfg.output_bytes);
    }

    #[test]
    fn figure7a_is_a_single_column() {
        let cfg = TaskBenchConfig::figure7a(1_000);
        assert_eq!(cfg.width, 1);
        assert_eq!(cfg.steps, 16);
        assert_eq!(cfg.pattern, DependencePattern::Trivial);
        assert!((cfg.task_duration_secs() - 5e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CCR must be positive")]
    fn non_positive_ccr_is_rejected() {
        let cfg = TaskBenchConfig::figure6(DependencePattern::Fft, 1.0);
        cfg.bytes_for_ccr(0.0, &NetworkConfig::infiniband());
    }
}
