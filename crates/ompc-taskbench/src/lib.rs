//! # ompc-taskbench — a Task Bench reimplementation
//!
//! Task Bench (Slaughter et al., SC'20) is a parameterized benchmark for
//! distributed task runtimes: a grid of tasks, `width` points wide and
//! `steps` timesteps deep, whose dependence structure, per-task duration,
//! and per-edge data volume are all configurable. The OMPC paper evaluates
//! against the Trivial, Stencil-1D (periodic), FFT, and Tree dependence
//! patterns (its Fig. 4), with task durations expressed in iterations of an
//! internal compute loop (10M iterations ≈ 50 ms) and the communication
//! volume chosen to hit a target computation-to-communication ratio (CCR).
//!
//! This crate rebuilds that benchmark for the Rust runtime:
//!
//! * [`DependencePattern`] — the four dependence patterns of the paper's
//!   Fig. 4 (plus no-comm, used in the overhead study of Fig. 7a);
//! * [`TaskBenchConfig`] — width, steps, iterations, and output bytes, with
//!   helpers matching the paper's parameterization (iterations → seconds,
//!   CCR → bytes);
//! * [`generate_workload`] — produces the abstract [`WorkloadGraph`]
//!   consumed by the simulated OMPC runtime and the baseline runtime
//!   models;
//! * [`kernel`] — the real compute kernel (an iteration-calibrated
//!   arithmetic loop) used when Task Bench runs on the threaded
//!   [`ompc_core::cluster::ClusterDevice`].

pub mod config;
pub mod generator;
pub mod kernel;
pub mod pattern;

pub use config::TaskBenchConfig;
pub use generator::{generate_workload, graph_stats, GraphStats};
pub use kernel::{execute_iterations, register_taskbench_kernel, SECONDS_PER_ITERATION};
pub use ompc_core::model::WorkloadGraph;
pub use pattern::DependencePattern;
