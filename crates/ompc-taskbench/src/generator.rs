//! Generation of the abstract workload graph from a Task Bench
//! configuration.

use crate::config::TaskBenchConfig;
use ompc_core::model::WorkloadGraph;
use ompc_sched::TaskGraph;

/// Summary statistics of a generated graph, printed by the benchmark
/// harness alongside each figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Total compute seconds across all tasks.
    pub total_compute: f64,
    /// Total bytes on all edges.
    pub total_bytes: u64,
    /// Critical-path compute seconds (a lower bound on any makespan).
    pub critical_path: f64,
}

/// Build the [`WorkloadGraph`] for a Task Bench configuration.
///
/// Task `(step, point)` is assigned the dense index `step * width + point`;
/// each task costs `iterations × 5 ns` and produces `output_bytes`, carried
/// on every outgoing dependence edge.
///
/// In addition to the pattern's own dependences, every task is serialized
/// with the previous timestep of its own point through a zero-byte edge:
/// Task Bench reuses one output buffer per point, so timestep `t` of point
/// `i` cannot start before timestep `t - 1` of the same point has finished,
/// even for the Trivial pattern. (The edge carries no data because the
/// buffer already lives wherever that point executes.)
pub fn generate_workload(config: &TaskBenchConfig) -> WorkloadGraph {
    let mut graph = TaskGraph::new();
    let cost = config.task_duration_secs();
    for step in 0..config.steps {
        for point in 0..config.width {
            graph.add_task_full(cost, None, format!("{}[{step},{point}]", config.pattern));
        }
    }
    for step in 1..config.steps {
        for point in 0..config.width {
            let to = step * config.width + point;
            let deps = config.pattern.dependencies(point, step, config.width);
            for &dep in &deps {
                let from = (step - 1) * config.width + dep;
                graph.add_edge(from, to, config.output_bytes);
            }
            if !deps.contains(&point) {
                // Same-point buffer reuse: pure ordering, no data movement.
                graph.add_edge((step - 1) * config.width + point, to, 0);
            }
        }
    }
    let output_bytes = vec![config.output_bytes; config.num_tasks()];
    WorkloadGraph::new(graph, output_bytes)
}

/// Compute summary statistics for a workload.
pub fn graph_stats(workload: &WorkloadGraph) -> GraphStats {
    GraphStats {
        tasks: workload.len(),
        edges: workload.graph.edges().len(),
        total_compute: workload.total_compute(),
        total_bytes: workload.total_edge_bytes(),
        critical_path: workload.graph.critical_path_cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DependencePattern;

    fn cfg(pattern: DependencePattern, width: usize, steps: usize) -> TaskBenchConfig {
        TaskBenchConfig::new(pattern, width, steps, 1_000_000, 4096)
    }

    #[test]
    fn trivial_graph_has_only_serialization_edges() {
        let w = generate_workload(&cfg(DependencePattern::Trivial, 8, 4));
        assert_eq!(w.len(), 32);
        // One zero-byte buffer-reuse edge per task of steps 1..4.
        assert_eq!(w.graph.edges().len(), 8 * 3);
        assert!(w.graph.edges().iter().all(|e| e.bytes == 0));
        let stats = graph_stats(&w);
        assert_eq!(stats.tasks, 32);
        assert_eq!(stats.total_bytes, 0);
        // The per-point chains make the critical path span all timesteps.
        assert!((stats.critical_path - 4.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn stencil_graph_edge_count() {
        // Periodic stencil of width 8: every non-first-step task has 3
        // incoming edges.
        let w = generate_workload(&cfg(DependencePattern::Stencil1D, 8, 4));
        assert_eq!(w.graph.edges().len(), 8 * 3 * 3);
        let stats = graph_stats(&w);
        assert_eq!(stats.total_bytes, (8 * 3 * 3) as u64 * 4096);
        // Critical path spans all timesteps.
        assert!((stats.critical_path - 4.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn fft_graph_edge_count() {
        let w = generate_workload(&cfg(DependencePattern::Fft, 8, 4));
        // Width 8 (power of two): every non-first-step task has exactly 2
        // incoming edges.
        assert_eq!(w.graph.edges().len(), 8 * 2 * 3);
    }

    #[test]
    fn graphs_are_acyclic_and_layered() {
        for pattern in DependencePattern::paper_patterns() {
            let w = generate_workload(&cfg(pattern, 16, 8));
            assert!(w.graph.is_acyclic(), "{pattern} generated a cycle");
            // Edges only go from one timestep to the next.
            for e in w.graph.edges() {
                assert_eq!(e.to / 16, e.from / 16 + 1, "{pattern} edge skips a timestep");
            }
        }
    }

    #[test]
    fn first_row_are_the_only_roots_for_connected_patterns() {
        let w = generate_workload(&cfg(DependencePattern::Stencil1D, 8, 4));
        assert_eq!(w.graph.roots().len(), 8);
        let w = generate_workload(&cfg(DependencePattern::NoComm, 4, 4));
        assert_eq!(w.graph.roots().len(), 4);
        assert_eq!(w.graph.sinks().len(), 4);
    }

    /// The generated graph always has width × steps tasks, is acyclic,
    /// and every edge carries the configured byte count (deterministic
    /// sweep replacing the former proptest property).
    #[test]
    fn prop_generated_graphs_are_well_formed() {
        let mut rng = ompc_testutil::Rng::new(0x9e3779b97f4a7c15);
        for _ in 0..32 {
            let pattern = DependencePattern::paper_patterns()[rng.range_usize(0, 4)];
            let width = rng.range_usize(1, 32);
            let steps = rng.range_usize(1, 16);
            let bytes = rng.range(0, 1_000_000);
            let config = TaskBenchConfig::new(pattern, width, steps, 1000, bytes);
            let w = generate_workload(&config);
            assert_eq!(w.len(), width * steps);
            assert!(w.graph.is_acyclic());
            for e in w.graph.edges() {
                // Pattern edges carry the configured payload; implicit
                // buffer-reuse edges carry nothing.
                assert!(e.bytes == bytes || e.bytes == 0);
                assert!(e.from < e.to);
            }
            // Every non-first-step task is serialized with its own point.
            for step in 1..steps {
                for point in 0..width {
                    let to = step * width + point;
                    let from = (step - 1) * width + point;
                    assert!(w.graph.predecessors(to).contains(&from));
                }
            }
        }
    }
}
