//! The real compute kernel used when Task Bench runs on the threaded
//! cluster device (examples and integration tests).

pub use crate::config::SECONDS_PER_ITERATION;
use ompc_core::cluster::ClusterDevice;
use ompc_core::types::KernelId;

/// Run `iterations` of the Task Bench compute loop over a small state,
/// returning the final state so the optimizer cannot remove the loop. The
/// loop body matches Task Bench's spirit: a handful of integer operations
/// per iteration, dependent on the previous one.
pub fn execute_iterations(iterations: u64, seed: u64) -> u64 {
    let mut state = if seed == 0 { 1 } else { seed };
    for _ in 0..iterations {
        // xorshift* step: cheap, dependent, impossible to vectorize away.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    state
}

/// Register the Task Bench kernel with a cluster device.
///
/// The kernel expects its first buffer to contain at least one `u64`: the
/// iteration count. It runs the compute loop and appends its result to the
/// buffer, so dependent tasks observe (and depend on) real produced data.
pub fn register_taskbench_kernel(device: &ClusterDevice, iterations: u64) -> KernelId {
    let cost = iterations as f64 * SECONDS_PER_ITERATION;
    device.register_kernel_fn("taskbench", cost, move |args| {
        let mut values = args.as_u64s(0);
        let seed = values.first().copied().unwrap_or(1);
        let result = execute_iterations(iterations, seed);
        values.push(result);
        args.set_u64s(0, &values);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompc_core::types::Dependence;

    #[test]
    fn iteration_loop_is_deterministic_and_seed_dependent() {
        let a = execute_iterations(1000, 42);
        let b = execute_iterations(1000, 42);
        let c = execute_iterations(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(execute_iterations(1000, 42), execute_iterations(1001, 42));
    }

    #[test]
    fn zero_iterations_returns_seed_like_state() {
        assert_eq!(execute_iterations(0, 8), 8);
        assert_eq!(execute_iterations(0, 0), 1);
    }

    #[test]
    fn kernel_appends_results_through_the_cluster() {
        let mut device = ClusterDevice::spawn(2);
        let kernel = register_taskbench_kernel(&device, 100);
        let mut region = device.target_region();
        let buf = region.map_to(ompc_mpi_bytes(&[7u64]));
        region.target(kernel, vec![Dependence::inout(buf)]);
        region.target(kernel, vec![Dependence::inout(buf)]);
        region.map_from(buf);
        region.run().unwrap();
        let data = device.buffer_data(buf).unwrap();
        let values = ompc_mpi::typed::bytes_to_u64s(&data).unwrap();
        // Two chained tasks appended two results.
        assert_eq!(values.len(), 3);
        assert_eq!(values[0], 7);
        assert_eq!(values[1], execute_iterations(100, 7));
        assert_eq!(values[2], execute_iterations(100, 7));
        device.shutdown();
    }

    fn ompc_mpi_bytes(values: &[u64]) -> Vec<u8> {
        ompc_mpi::typed::u64s_to_bytes(values)
    }
}
