//! The dependence patterns of Task Bench used in the OMPC evaluation
//! (paper Fig. 4): Trivial, Stencil-1D periodic, FFT, and Tree, plus the
//! no-communication column pattern used by the overhead study.

use std::fmt;

/// A Task Bench dependence pattern: given a point `i` at timestep `t > 0`,
/// which points of timestep `t - 1` does it depend on?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencePattern {
    /// No dependencies at all: every task is independent.
    Trivial,
    /// Each point depends on the same point of the previous step (a set of
    /// independent columns); used by the Fig. 7a overhead experiment, where
    /// a 1 × 16 graph must serialize on a single node.
    NoComm,
    /// Periodic one-dimensional stencil: point `i` depends on `i-1`, `i`,
    /// and `i+1` of the previous step, wrapping around at the edges.
    Stencil1D,
    /// FFT butterfly: point `i` depends on `i` and `i XOR 2^((t-1) mod
    /// log2(width))` of the previous step.
    Fft,
    /// Binary tree: alternating reduce phases (point `i` depends on `2i`
    /// and `2i+1`) and broadcast phases (point `i` depends on `i / 2`).
    Tree,
}

impl DependencePattern {
    /// All patterns used in the paper's figures, in presentation order.
    pub fn paper_patterns() -> [DependencePattern; 4] {
        [
            DependencePattern::Trivial,
            DependencePattern::Tree,
            DependencePattern::Stencil1D,
            DependencePattern::Fft,
        ]
    }

    /// Dependencies of point `point` at timestep `step` on points of the
    /// previous timestep. Timestep 0 never has dependencies.
    pub fn dependencies(self, point: usize, step: usize, width: usize) -> Vec<usize> {
        if step == 0 || width == 0 {
            return Vec::new();
        }
        match self {
            DependencePattern::Trivial => Vec::new(),
            DependencePattern::NoComm => vec![point],
            DependencePattern::Stencil1D => {
                if width == 1 {
                    return vec![0];
                }
                let left = (point + width - 1) % width;
                let right = (point + 1) % width;
                let mut deps = vec![left, point, right];
                deps.sort_unstable();
                deps.dedup();
                deps
            }
            DependencePattern::Fft => {
                let stages = usize::BITS - 1 - width.next_power_of_two().leading_zeros();
                if stages == 0 {
                    return vec![point];
                }
                let stage = ((step - 1) as u32) % stages;
                let partner = point ^ (1usize << stage);
                let mut deps = vec![point];
                if partner < width {
                    deps.push(partner);
                }
                deps.sort_unstable();
                deps
            }
            DependencePattern::Tree => {
                if step % 2 == 1 {
                    // Reduce phase: gather children 2i and 2i + 1.
                    let mut deps = vec![point];
                    let left = 2 * point;
                    let right = 2 * point + 1;
                    if left < width && left != point {
                        deps.push(left);
                    }
                    if right < width {
                        deps.push(right);
                    }
                    deps.sort_unstable();
                    deps.dedup();
                    deps
                } else {
                    // Broadcast phase: read from the parent i / 2.
                    let mut deps = vec![point, point / 2];
                    deps.sort_unstable();
                    deps.dedup();
                    deps
                }
            }
        }
    }

    /// Average number of incoming dependence edges per task for a graph of
    /// the given width (excluding the first timestep, which has none).
    pub fn mean_in_degree(self, width: usize) -> f64 {
        if width == 0 {
            return 0.0;
        }
        let total: usize = (0..width).map(|p| self.dependencies(p, 1, width).len()).sum();
        let total2: usize = (0..width).map(|p| self.dependencies(p, 2, width).len()).sum();
        (total + total2) as f64 / (2 * width) as f64
    }

    /// Short name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            DependencePattern::Trivial => "trivial",
            DependencePattern::NoComm => "no_comm",
            DependencePattern::Stencil1D => "stencil_1d",
            DependencePattern::Fft => "fft",
            DependencePattern::Tree => "tree",
        }
    }
}

impl fmt::Display for DependencePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_timestep_has_no_dependencies() {
        for pattern in [
            DependencePattern::Trivial,
            DependencePattern::NoComm,
            DependencePattern::Stencil1D,
            DependencePattern::Fft,
            DependencePattern::Tree,
        ] {
            assert!(pattern.dependencies(3, 0, 16).is_empty());
        }
    }

    #[test]
    fn trivial_never_depends() {
        for step in 1..5 {
            for p in 0..8 {
                assert!(DependencePattern::Trivial.dependencies(p, step, 8).is_empty());
            }
        }
    }

    #[test]
    fn no_comm_depends_only_on_itself() {
        assert_eq!(DependencePattern::NoComm.dependencies(5, 3, 16), vec![5]);
    }

    #[test]
    fn stencil_wraps_around() {
        let deps = DependencePattern::Stencil1D.dependencies(0, 1, 8);
        assert_eq!(deps, vec![0, 1, 7]);
        let deps = DependencePattern::Stencil1D.dependencies(7, 1, 8);
        assert_eq!(deps, vec![0, 6, 7]);
        let deps = DependencePattern::Stencil1D.dependencies(3, 2, 8);
        assert_eq!(deps, vec![2, 3, 4]);
    }

    #[test]
    fn stencil_of_width_one_collapses() {
        assert_eq!(DependencePattern::Stencil1D.dependencies(0, 1, 1), vec![0]);
    }

    #[test]
    fn fft_partners_change_with_step() {
        let w = 8;
        assert_eq!(DependencePattern::Fft.dependencies(0, 1, w), vec![0, 1]);
        assert_eq!(DependencePattern::Fft.dependencies(0, 2, w), vec![0, 2]);
        assert_eq!(DependencePattern::Fft.dependencies(0, 3, w), vec![0, 4]);
        // Stage wraps around after log2(width) steps.
        assert_eq!(DependencePattern::Fft.dependencies(0, 4, w), vec![0, 1]);
    }

    #[test]
    fn tree_alternates_reduce_and_broadcast() {
        let w = 8;
        // Reduce step: node 1 gathers 2 and 3.
        assert_eq!(DependencePattern::Tree.dependencies(1, 1, w), vec![1, 2, 3]);
        // Broadcast step: node 5 reads from its parent 2.
        assert_eq!(DependencePattern::Tree.dependencies(5, 2, w), vec![2, 5]);
        // Root in broadcast phase reads itself only.
        assert_eq!(DependencePattern::Tree.dependencies(0, 2, w), vec![0]);
    }

    #[test]
    fn mean_in_degree_orders_patterns_sensibly() {
        let stencil = DependencePattern::Stencil1D.mean_in_degree(64);
        let fft = DependencePattern::Fft.mean_in_degree(64);
        let trivial = DependencePattern::Trivial.mean_in_degree(64);
        assert_eq!(trivial, 0.0);
        assert!(stencil > fft);
        assert!((stencil - 3.0).abs() < 1e-9);
        assert!((fft - 2.0).abs() < 1e-9);
    }

    /// Every dependence refers to a valid point of the previous step and
    /// contains no duplicates, for all patterns and sizes (exhaustive sweep
    /// replacing the former proptest property).
    #[test]
    fn prop_dependencies_are_valid() {
        let patterns = [
            DependencePattern::Trivial,
            DependencePattern::NoComm,
            DependencePattern::Stencil1D,
            DependencePattern::Fft,
            DependencePattern::Tree,
        ];
        for pattern in patterns {
            for width in [1usize, 2, 3, 5, 8, 13, 64, 255] {
                for step in [0usize, 1, 2, 3, 7, 15, 63] {
                    for point in (0..width).step_by(1 + width / 16) {
                        let deps = pattern.dependencies(point, step, width);
                        let mut sorted = deps.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        assert_eq!(
                            sorted.len(),
                            deps.len(),
                            "{pattern} w={width} s={step} p={point}: duplicate dependencies"
                        );
                        for d in deps {
                            assert!(d < width, "{pattern}: dependence {d} out of range {width}");
                        }
                    }
                }
            }
        }
    }
}
