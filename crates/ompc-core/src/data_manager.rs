//! The Data Management module (paper §4.3–§4.4).
//!
//! The DM tracks, for every mapped buffer, the set of nodes that currently
//! hold a valid copy and which of them holds the most recent version. When
//! a target task is about to execute it decides how the task's input data
//! must be forwarded:
//!
//! * if the buffer is already present on the executing node, nothing moves;
//! * otherwise it is copied from its most recent location — a worker node
//!   if one has it, which yields the worker-to-worker forwarding that keeps
//!   the head node off the data path;
//! * after a task that writes the buffer (`inout`/`out` dependence), the
//!   copy on the executing node becomes the only valid one and stale copies
//!   are invalidated;
//! * read-only uses replicate the buffer, so later readers can fetch it
//!   from any holder.
//!
//! The same logic drives the threaded, message-passing, and simulated
//! runtimes, so the transfer patterns measured in the benchmarks are
//! produced by exactly this code.
//!
//! ## Cross-region residency
//!
//! The data manager is a **persistent subsystem**: one instance is owned by
//! [`crate::cluster::ClusterDevice`] for its whole lifetime and carries
//! buffer residency *across* target-region executions (the paper's
//! unstructured `target enter data` / `target exit data` environment,
//! §4.3). A buffer mapped once stays on its worker until an exit-data
//! construct releases it, so iterative applications pay the distribution
//! cost once rather than per region. Each region execution advances a
//! **region epoch** ([`DataManager::begin_region`]); every location entry
//! remembers the epoch that last touched it, which is what the residency
//! reports and tests key on.
//!
//! Every forwarding decision is also appended to a per-run **transfer
//! log** ([`TransferRecord`]) that the execution core drains into
//! [`crate::runtime::RunRecord::transfers`] — residency wins are assertable
//! ("this buffer moved exactly once across N regions") instead of inferred
//! from timings.
//!
//! A node failure ([`DataManager::fail_node`]) invalidates the node's
//! resident copies exactly like its per-region copies: the next plan that
//! needs one of them transparently re-sources it from a surviving replica
//! or from the host version.

use crate::types::{BufferId, NodeId, OmpcError};
use std::collections::{BTreeMap, BTreeSet};

/// The head node's id; the host copy of a buffer lives there.
pub const HEAD_NODE: NodeId = 0;

/// The transfer-log namespace of device-level operations performed outside
/// any region execution (`enter_data`, lazy host flushes). Region epochs
/// start at 1 ([`DataManager::begin_region`]), so 0 can never collide with
/// an admitted region.
pub const UNATTRIBUTED: u64 = 0;

/// Identifier of one asynchronous transfer batch started through the
/// device's async data path ([`DataManager::open_ticket`]). A ticket covers
/// every in-flight movement booked against it; awaiting the ticket blocks
/// until all of them have landed (or surfaced the first failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// The state of `buffer`'s copy on a given node as seen by the in-flight
/// transfer table — the waiters' view of the async data path. `Resident`
/// means the bytes are there; `InFlight` means a transfer towards the node
/// has been booked but not confirmed (first readers wait instead of
/// re-submitting); `Invalid` means no valid copy and no pending movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferState {
    /// A valid copy is present on the node.
    Resident,
    /// A transfer towards the node is booked under this ticket and has not
    /// completed yet.
    InFlight(Ticket),
    /// No valid copy and no pending transfer (including a transfer that
    /// failed — see [`DataManager::take_inflight_error`]).
    Invalid,
}

/// Internal per-(buffer, node) entry of the in-flight table.
#[derive(Debug, Clone)]
enum InflightEntry {
    /// Booked and moving under this ticket.
    Moving(Ticket),
    /// The movement failed; waiters consume the error instead of silently
    /// computing on missing data. Cleared when a later plan re-books the
    /// pair.
    Failed(OmpcError),
}

/// Per-ticket completion accounting.
#[derive(Debug, Clone, Default)]
struct TicketState {
    /// Transfers booked under the ticket that have not finished yet.
    remaining: usize,
    /// First failure observed among the ticket's transfers.
    error: Option<OmpcError>,
}

/// A planned data movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Node currently holding the bytes to copy.
    pub from: NodeId,
    /// Node that needs the bytes.
    pub to: NodeId,
    /// The buffer to move.
    pub buffer: BufferId,
}

/// Why a transfer was planned — the classification the cross-backend
/// transfer-set equivalence tests compare on (and sort by).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TransferReason {
    /// An enter-data distribution (`map(to:)` making the buffer available
    /// on the cluster).
    EnterData,
    /// An input forward for a task that reads the buffer (host→worker or
    /// worker→worker, as planned by [`DataManager::plan_input`]).
    Input,
    /// A retrieval of the latest version back to the host (`map(from:)`,
    /// exit data, or a lazy host flush).
    Retrieve,
}

/// One planned transfer, as recorded in the data manager's per-run log and
/// surfaced through [`crate::runtime::RunRecord::transfers`]. `bytes` is
/// the buffer's registered size — the size the mapping declared, updated by
/// [`DataManager::observe_size`] whenever a retrieval observes that a
/// kernel resized the data, so logged bytes stay equal to the bytes that
/// actually crossed the wire ([`crate::event::EventCounters::bytes_moved`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// The buffer that moved.
    pub buffer: BufferId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Registered size of the buffer in bytes.
    pub bytes: u64,
    /// Why the transfer was planned.
    pub reason: TransferReason,
}

#[derive(Debug, Clone, Default)]
struct BufferLocations {
    /// Nodes holding a valid copy.
    holders: BTreeSet<NodeId>,
    /// Node holding the most recent version.
    latest: NodeId,
    /// Registered size in bytes (nominal mapped size).
    bytes: u64,
    /// Whether the buffer was mapped with keep-resident semantics: a
    /// region-level `map(from:)` flushes it to the host but keeps the
    /// device copies (and this entry) alive for later regions.
    resident: bool,
    /// Region epoch that last registered or wrote this buffer.
    epoch: u64,
}

/// Location tracking and forwarding decisions for every mapped buffer.
#[derive(Debug, Clone, Default)]
pub struct DataManager {
    buffers: BTreeMap<BufferId, BufferLocations>,
    /// Nodes that have been declared failed: their copies are gone, their
    /// writes are ignored, and they are never chosen as a transfer source.
    failed: BTreeSet<NodeId>,
    /// Monotonic region counter; see [`DataManager::begin_region`].
    epoch: u64,
    /// Transfer logs, namespaced by the region epoch that planned each
    /// movement so concurrently admitted regions never interleave (or
    /// steal) each other's records. Namespace [`UNATTRIBUTED`] (0) holds
    /// device-level operations outside any region (`enter_data`, lazy host
    /// flushes); each is drained by [`DataManager::take_transfer_log_in`].
    logs: BTreeMap<u64, Vec<TransferRecord>>,
    /// In-flight transfer table: every `(buffer, node)` pair with a booked
    /// but unconfirmed movement towards it (see [`TransferState`]).
    inflight: BTreeMap<(u64, NodeId), InflightEntry>,
    /// Open tickets of the async data path.
    tickets: BTreeMap<u64, TicketState>,
    /// Next ticket id.
    next_ticket: u64,
    /// Transfers booked asynchronously *between* region runs. They are not
    /// part of any region's log yet; [`DataManager::adopt_deferred_for`]
    /// moves them into the fresh per-run log of the region that consumes
    /// the buffers, which is what keeps `RunRecord::transfers` identical to
    /// the synchronous data path.
    deferred: Vec<TransferRecord>,
    /// Buffers whose *first* device copy is being materialized by a
    /// synchronous, region-attributed plan right now: buffer → (optimistic
    /// holder, planning region). While an entry is live, a second
    /// synchronous first-touch plan from a *different* region is a typed
    /// [`OmpcError::InvalidConfig`] rejection instead of the formerly
    /// documented-unsupported race (the second region would compute against
    /// bytes whose arrival nothing orders). Entries are cleared when the
    /// planning region drains its log (region completion), when the
    /// optimistic booking is rolled back, or when the holder node fails.
    settling: BTreeMap<u64, (NodeId, u64)>,
}

impl DataManager {
    /// Create an empty data manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new region epoch. Called once per region execution by the
    /// owning device; entries registered or written from now on carry the
    /// new epoch.
    pub fn begin_region(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The current region epoch (0 before the first region).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The region epoch that last registered or wrote `buffer`.
    pub fn buffer_epoch(&self, buffer: BufferId) -> Option<u64> {
        self.buffers.get(&buffer).map(|l| l.epoch)
    }

    /// Register a buffer whose initial (host) copy lives on the head node.
    /// `bytes` is the nominal mapped size used for transfer accounting.
    pub fn register_host_buffer(&mut self, buffer: BufferId, bytes: u64) {
        let mut holders = BTreeSet::new();
        holders.insert(HEAD_NODE);
        let epoch = self.epoch;
        self.buffers.insert(
            buffer,
            BufferLocations { holders, latest: HEAD_NODE, bytes, resident: false, epoch },
        );
    }

    /// Register a buffer that is allocated directly on `node` without a
    /// host copy (the `map(alloc:)` case). Ignored when `node` has been
    /// declared failed.
    pub fn register_device_buffer(&mut self, buffer: BufferId, node: NodeId, bytes: u64) {
        if self.failed.contains(&node) {
            return;
        }
        let mut holders = BTreeSet::new();
        holders.insert(node);
        let epoch = self.epoch;
        self.buffers.insert(
            buffer,
            BufferLocations { holders, latest: node, bytes, resident: false, epoch },
        );
    }

    /// Whether the buffer is known to the data manager.
    pub fn is_registered(&self, buffer: BufferId) -> bool {
        self.buffers.contains_key(&buffer)
    }

    /// Mark `buffer` keep-resident: a region-level `map(from:)` flushes it
    /// back to the host but keeps the device copies mapped for later
    /// regions. Exit data with `map(release:)` (or the device-level
    /// [`crate::cluster::ClusterDevice::exit_data`]) still ends the
    /// mapping.
    pub fn mark_resident(&mut self, buffer: BufferId) {
        if let Some(loc) = self.buffers.get_mut(&buffer) {
            loc.resident = true;
        }
    }

    /// Whether `buffer` was marked keep-resident.
    pub fn is_resident(&self, buffer: BufferId) -> bool {
        self.buffers.get(&buffer).is_some_and(|l| l.resident)
    }

    /// Registered (nominal) size of the buffer in bytes.
    pub fn bytes_of(&self, buffer: BufferId) -> u64 {
        self.buffers.get(&buffer).map(|l| l.bytes).unwrap_or(0)
    }

    /// Update the registered size of `buffer` to the size actually observed
    /// on the wire. Kernels may resize a buffer on the device (`set_f64s`
    /// with a different length); the first retrieval of the resized data
    /// sees the real byte count and reports it here **before**
    /// [`DataManager::record_retrieve`], so that record — and every later
    /// forward of the buffer — logs the bytes that really moved instead of
    /// the stale mapped size.
    pub fn observe_size(&mut self, buffer: BufferId, bytes: u64) {
        if let Some(loc) = self.buffers.get_mut(&buffer) {
            loc.bytes = bytes;
        }
    }

    /// Nodes currently holding a valid copy of the buffer.
    pub fn holders(&self, buffer: BufferId) -> Vec<NodeId> {
        self.buffers.get(&buffer).map(|l| l.holders.iter().copied().collect()).unwrap_or_default()
    }

    /// The node holding the most recent version of the buffer, if known.
    pub fn latest(&self, buffer: BufferId) -> Option<NodeId> {
        self.buffers.get(&buffer).map(|l| l.latest)
    }

    /// Whether `node` holds a valid copy of `buffer`.
    pub fn is_present(&self, buffer: BufferId, node: NodeId) -> bool {
        self.buffers.get(&buffer).is_some_and(|l| l.holders.contains(&node))
    }

    /// The residency map consulted by region planning: every buffer whose
    /// latest version currently lives on a worker node, with that worker.
    /// Dead nodes never appear (their copies were invalidated by
    /// [`DataManager::fail_node`]).
    pub fn latest_on_workers(&self) -> BTreeMap<BufferId, NodeId> {
        self.buffers
            .iter()
            .filter(|(_, l)| l.latest != HEAD_NODE)
            .map(|(&b, l)| (b, l.latest))
            .collect()
    }

    /// Decide how to make `buffer` available on `node` before a task that
    /// *reads* it executes there. Returns `None` when the buffer is already
    /// present; otherwise returns a transfer from the most recent holder,
    /// records the new replica, and logs the transfer with
    /// [`TransferReason::Input`] in the [`UNATTRIBUTED`] namespace.
    pub fn plan_input(&mut self, buffer: BufferId, node: NodeId) -> Option<TransferPlan> {
        self.plan_input_as_in(UNATTRIBUTED, buffer, node, TransferReason::Input)
            .expect("device-level plans are exempt from the first-touch guard")
    }

    /// [`DataManager::plan_input`] logging into `region`'s namespace — the
    /// entry point of the execution backends, whose records belong to one
    /// admitted region. `Err` means another concurrently admitted region is
    /// still settling the buffer's first device copy (see
    /// [`DataManager::plan_input_as_in`]).
    pub fn plan_input_in(
        &mut self,
        region: u64,
        buffer: BufferId,
        node: NodeId,
    ) -> Result<Option<TransferPlan>, OmpcError> {
        self.plan_input_as_in(region, buffer, node, TransferReason::Input)
    }

    /// [`DataManager::plan_input`] with an explicit log classification —
    /// enter-data distributions use [`TransferReason::EnterData`] so the
    /// transfer observability can tell initial distribution from steady-
    /// state forwarding. Logs into the [`UNATTRIBUTED`] namespace.
    pub fn plan_input_as(
        &mut self,
        buffer: BufferId,
        node: NodeId,
        reason: TransferReason,
    ) -> Option<TransferPlan> {
        self.plan_input_as_in(UNATTRIBUTED, buffer, node, reason)
            .expect("device-level plans are exempt from the first-touch guard")
    }

    /// [`DataManager::plan_input_as`] logging into `region`'s namespace.
    ///
    /// Region-attributed plans enforce the **concurrent first-touch
    /// guard**: the first synchronous host-sourced plan of a buffer that
    /// has no worker copy yet marks the buffer *settling* under its region;
    /// until that region completes, a second synchronous first-touch plan
    /// from a different region returns
    /// [`OmpcError::InvalidConfig`] instead of racing the optimistic
    /// holder whose bytes may still be on the wire. Plans in the
    /// [`UNATTRIBUTED`] namespace (device-level enter-data, recovery) are
    /// exempt and never fail.
    pub fn plan_input_as_in(
        &mut self,
        region: u64,
        buffer: BufferId,
        node: NodeId,
        reason: TransferReason,
    ) -> Result<Option<TransferPlan>, OmpcError> {
        if self.failed.contains(&node) {
            // A dead node never receives data; the caller is a zombie task
            // whose results are discarded anyway.
            return Ok(None);
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("plan_input on unregistered buffer {buffer}"));
        if loc.holders.contains(&node) {
            return Ok(None);
        }
        if region != UNATTRIBUTED {
            if let Some(&(holder, settling_region)) = self.settling.get(&buffer.0) {
                if settling_region != region {
                    return Err(OmpcError::InvalidConfig(format!(
                        "concurrent synchronous first-touch of {buffer}: region {region} \
                         planned it for node {node} while region {settling_region} is still \
                         settling the first device copy on node {holder}"
                    )));
                }
            }
        }
        let from = loc.latest;
        let first_touch = from == HEAD_NODE && loc.holders.iter().all(|&h| h == HEAD_NODE);
        loc.holders.insert(node);
        if region != UNATTRIBUTED && first_touch {
            self.settling.entry(buffer.0).or_insert((node, region));
        }
        // A stale failure record for this pair is superseded by the new
        // booking: the caller performs the transfer synchronously.
        if matches!(self.inflight.get(&(buffer.0, node)), Some(InflightEntry::Failed(_))) {
            self.inflight.remove(&(buffer.0, node));
        }
        self.logs.entry(region).or_default().push(TransferRecord {
            buffer,
            from,
            to: node,
            bytes: loc.bytes,
            reason,
        });
        Ok(Some(TransferPlan { from, to: node, buffer }))
    }

    /// Record one delivered edge of a collective broadcast: `to` now holds
    /// a valid replica of `buffer` whose bytes were fed by `from` (the tree
    /// parent, or the rescue source when the planned parent died). The edge
    /// is logged under `region` with the buffer's registered size, so the
    /// transfer log reports the true per-edge wire bytes of the tree rather
    /// than k star edges out of the original holder. No-op when `to` is
    /// dead or already a holder.
    pub fn note_broadcast_delivery(
        &mut self,
        region: u64,
        buffer: BufferId,
        from: NodeId,
        to: NodeId,
        reason: TransferReason,
    ) {
        if self.failed.contains(&to) {
            return;
        }
        let Some(loc) = self.buffers.get_mut(&buffer) else { return };
        if !loc.holders.insert(to) {
            return;
        }
        if matches!(self.inflight.get(&(buffer.0, to)), Some(InflightEntry::Failed(_))) {
            self.inflight.remove(&(buffer.0, to));
        }
        self.logs.entry(region).or_default().push(TransferRecord {
            buffer,
            from,
            to,
            bytes: loc.bytes,
            reason,
        });
    }

    /// Repoint the source of the async record booked towards
    /// `(buffer, to)` — used when a collective rescue delivers the bytes
    /// from a different node than the planned tree parent, so the record
    /// reports the edge that actually carried the payload. The record may
    /// still be deferred, or already adopted into the consuming region's
    /// log (the region starts before its broadcast job resolves); like
    /// [`DataManager::finish_inflight`]'s rollback, at most one live record
    /// per `(buffer, to)` exists across all namespaces.
    pub fn retarget_deferred_from(&mut self, buffer: BufferId, to: NodeId, new_from: NodeId) {
        if let Some(rec) = self.deferred.iter_mut().rev().find(|t| t.buffer == buffer && t.to == to)
        {
            rec.from = new_from;
            return;
        }
        for log in self.logs.values_mut() {
            if let Some(rec) = log.iter_mut().rev().find(|t| t.buffer == buffer && t.to == to) {
                rec.from = new_from;
                return;
            }
        }
    }

    /// Open a ticket for a batch of asynchronous transfers. Movements are
    /// attached with [`DataManager::begin_inflight`] /
    /// [`DataManager::begin_inflight_retrieve`] and resolved with
    /// [`DataManager::finish_inflight`]; [`DataManager::ticket_result`]
    /// reports (and reaps) the batch outcome.
    pub fn open_ticket(&mut self) -> Ticket {
        let t = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.tickets.insert(t.0, TicketState::default());
        t
    }

    /// Book an asynchronous movement of `buffer` towards worker `node`
    /// under `ticket`: exactly [`DataManager::plan_input_as`], except the
    /// transfer record is *deferred* (adopted into the consuming region's
    /// log by [`DataManager::adopt_deferred_for`]) and the pair is marked
    /// in flight so first readers wait on the ticket instead of
    /// re-submitting. Returns `None` when nothing needs to move (already
    /// present, already in flight, or the node is dead).
    pub fn begin_inflight(
        &mut self,
        buffer: BufferId,
        node: NodeId,
        reason: TransferReason,
        ticket: Ticket,
    ) -> Option<TransferPlan> {
        if self.failed.contains(&node) {
            return None;
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("begin_inflight on unregistered buffer {buffer}"));
        if loc.holders.contains(&node) {
            return None;
        }
        let from = loc.latest;
        loc.holders.insert(node);
        self.deferred.push(TransferRecord { buffer, from, to: node, bytes: loc.bytes, reason });
        self.inflight.insert((buffer.0, node), InflightEntry::Moving(ticket));
        if let Some(ts) = self.tickets.get_mut(&ticket.0) {
            ts.remaining += 1;
        }
        Some(TransferPlan { from, to: node, buffer })
    }

    /// Book an asynchronous (or serialized lazy) retrieval of `buffer` to
    /// the head node under `ticket`, marking `(buffer, HEAD_NODE)` in
    /// flight so a concurrent flush of the same buffer waits instead of
    /// scheduling a second retrieve — the fix for the latent double-flush.
    /// Nothing is logged or committed here; the caller still runs
    /// [`DataManager::record_retrieve`] once the bytes land, then
    /// [`DataManager::finish_inflight`]. Returns the retrieval source, or
    /// `None` when the head already holds the latest version.
    pub fn begin_inflight_retrieve(&mut self, buffer: BufferId, ticket: Ticket) -> Option<NodeId> {
        let from = self.retrieve_source(buffer)?;
        self.inflight.insert((buffer.0, HEAD_NODE), InflightEntry::Moving(ticket));
        if let Some(ts) = self.tickets.get_mut(&ticket.0) {
            ts.remaining += 1;
        }
        Some(from)
    }

    /// Resolve a movement booked by [`DataManager::begin_inflight`] /
    /// [`DataManager::begin_inflight_retrieve`]. On success the booking
    /// becomes a plain resident copy. On failure — or on "success" towards
    /// a node that has been declared failed in the meantime — the booking
    /// is rolled back exactly like [`DataManager::forget_replica`]: the
    /// optimistic holder is forgotten and the deferred (or already adopted)
    /// transfer record is withdrawn, so neither the run record nor
    /// [`crate::event::EventCounters::bytes_moved`] double-counts the
    /// abandoned transfer. Worker-destined failures stay visible to waiters
    /// via [`DataManager::take_inflight_error`]; a failed retrieval is
    /// simply un-booked so the next flush retries from the still-truthful
    /// location state.
    pub fn finish_inflight(
        &mut self,
        buffer: BufferId,
        node: NodeId,
        outcome: Result<(), OmpcError>,
    ) {
        let Some(entry) = self.inflight.remove(&(buffer.0, node)) else { return };
        let ticket = match entry {
            InflightEntry::Moving(t) => Some(t),
            InflightEntry::Failed(_) => None,
        };
        let outcome = match outcome {
            Ok(()) if node != HEAD_NODE && self.failed.contains(&node) => {
                Err(OmpcError::NodeFailure(node))
            }
            other => other,
        };
        if let Err(error) = &outcome {
            if node != HEAD_NODE {
                // Roll back the optimistic booking: the holder (unless the
                // pair survived a failure declaration that already stripped
                // it) and the transfer record, wherever it currently lives.
                if let Some(loc) = self.buffers.get_mut(&buffer) {
                    if loc.latest != node {
                        loc.holders.remove(&node);
                    }
                }
                if let Some(pos) =
                    self.deferred.iter().rposition(|t| t.buffer == buffer && t.to == node)
                {
                    self.deferred.remove(pos);
                } else {
                    // At most one live record per (buffer, node) exists
                    // across all namespaces (the holder record blocks
                    // re-planning), so a global search stays unambiguous.
                    for log in self.logs.values_mut() {
                        if let Some(pos) =
                            log.iter().rposition(|t| t.buffer == buffer && t.to == node)
                        {
                            log.remove(pos);
                            break;
                        }
                    }
                }
                self.inflight.insert((buffer.0, node), InflightEntry::Failed(error.clone()));
            }
        }
        if let Some(t) = ticket {
            if let Some(ts) = self.tickets.get_mut(&t.0) {
                ts.remaining = ts.remaining.saturating_sub(1);
                if let Err(error) = &outcome {
                    ts.error.get_or_insert_with(|| error.clone());
                }
            }
        }
    }

    /// The async-data-path state of `buffer`'s copy on `node` (see
    /// [`TransferState`]).
    pub fn transfer_state(&self, buffer: BufferId, node: NodeId) -> TransferState {
        match self.inflight.get(&(buffer.0, node)) {
            Some(InflightEntry::Moving(t)) => TransferState::InFlight(*t),
            Some(InflightEntry::Failed(_)) => TransferState::Invalid,
            None => {
                if self.is_present(buffer, node) {
                    TransferState::Resident
                } else {
                    TransferState::Invalid
                }
            }
        }
    }

    /// Consume the stored failure of an abandoned movement towards
    /// `(buffer, node)`, if one is recorded. Waiters call this after
    /// observing [`TransferState::Invalid`] so a task never executes
    /// against bytes that silently failed to arrive.
    pub fn take_inflight_error(&mut self, buffer: BufferId, node: NodeId) -> Option<OmpcError> {
        match self.inflight.get(&(buffer.0, node)) {
            Some(InflightEntry::Failed(_)) => match self.inflight.remove(&(buffer.0, node)) {
                Some(InflightEntry::Failed(e)) => Some(e),
                _ => None,
            },
            _ => None,
        }
    }

    /// The outcome of `ticket`, or `None` while transfers are still in
    /// flight. A finished ticket is reaped on first read; an unknown (or
    /// already reaped) ticket reads as successfully completed.
    pub fn ticket_result(&mut self, ticket: Ticket) -> Option<Result<(), OmpcError>> {
        match self.tickets.get(&ticket.0) {
            None => Some(Ok(())),
            Some(ts) if ts.remaining == 0 => {
                let ts = self.tickets.remove(&ticket.0).unwrap_or_default();
                Some(match ts.error {
                    Some(e) => Err(e),
                    None => Ok(()),
                })
            }
            Some(_) => None,
        }
    }

    /// Whether any movement of `buffer` (towards any node) is in flight.
    pub fn buffer_in_flight(&self, buffer: BufferId) -> bool {
        self.inflight
            .iter()
            .any(|(&(b, _), e)| b == buffer.0 && matches!(e, InflightEntry::Moving(_)))
    }

    /// Move the deferred records of async transfers whose buffers belong to
    /// the region about to run into that region's (fresh) log namespace, in
    /// booking order. Called by the device right before a region executes,
    /// so the consuming region's [`crate::runtime::RunRecord::transfers`]
    /// reports the prefetched movements exactly where the synchronous path
    /// would have planned them. Records for other buffers stay deferred.
    pub fn adopt_deferred_for(&mut self, buffers: &BTreeSet<BufferId>, region: u64) {
        let mut kept = Vec::new();
        for record in std::mem::take(&mut self.deferred) {
            if buffers.contains(&record.buffer) {
                self.logs.entry(region).or_default().push(record);
            } else {
                kept.push(record);
            }
        }
        self.deferred = kept;
    }

    /// The async transfer records not yet adopted into any region's log.
    pub fn deferred_transfers(&self) -> &[TransferRecord] {
        &self.deferred
    }

    /// Record that a task executing on `node` wrote `buffer`: the copy on
    /// `node` becomes the only valid one. Returns the nodes whose copies
    /// became stale (and should be deleted), excluding `node` itself.
    pub fn record_write(&mut self, buffer: BufferId, node: NodeId) -> Vec<NodeId> {
        if self.failed.contains(&node) {
            // Writes from a dead node are discarded: its task will be
            // re-executed on a survivor.
            return Vec::new();
        }
        let epoch = self.epoch;
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("record_write on unregistered buffer {buffer}"));
        let stale: Vec<NodeId> = loc.holders.iter().copied().filter(|&n| n != node).collect();
        loc.holders.clear();
        loc.holders.insert(node);
        loc.latest = node;
        loc.epoch = epoch;
        stale
    }

    /// Roll back a replica recorded optimistically by
    /// [`DataManager::plan_input`] whose transfer failed: `node` never
    /// received the bytes, so it must not be remembered as a holder, and
    /// the logged transfer is withdrawn. The most recent copy (`latest`)
    /// is never forgotten.
    pub fn forget_replica(&mut self, buffer: BufferId, node: NodeId) {
        if self.settling.get(&buffer.0).is_some_and(|&(n, _)| n == node) {
            self.settling.remove(&buffer.0);
        }
        if let Some(loc) = self.buffers.get_mut(&buffer) {
            if loc.latest != node && loc.holders.remove(&node) {
                // At most one live log entry can exist per (buffer, node):
                // a second plan is only possible after the first was rolled
                // back (the holder record blocks re-planning otherwise).
                for log in self.logs.values_mut() {
                    if let Some(pos) = log.iter().rposition(|t| t.buffer == buffer && t.to == node)
                    {
                        log.remove(pos);
                        break;
                    }
                }
            }
        }
    }

    /// Record that `node` received a read-only replica of `buffer` (e.g.
    /// after an explicit alloc that bypassed [`DataManager::plan_input`]).
    /// Not logged as a transfer — no bytes moved.
    pub fn record_replica(&mut self, buffer: BufferId, node: NodeId) {
        if self.failed.contains(&node) {
            return;
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("record_replica on unregistered buffer {buffer}"));
        loc.holders.insert(node);
    }

    /// The node a retrieval of `buffer` back to the head (exit data with
    /// `map(from:)`, or a lazy host flush) must fetch from, or `None` when
    /// the head already holds the latest version. Read-only: nothing is
    /// committed until [`DataManager::record_retrieve`] confirms the bytes
    /// actually landed — so a retrieval that fails (or whose source dies
    /// mid-flight) leaves the location state truthful and a later plan
    /// retries from the then-latest holder.
    pub fn retrieve_source(&self, buffer: BufferId) -> Option<NodeId> {
        let loc = self
            .buffers
            .get(&buffer)
            .unwrap_or_else(|| panic!("retrieve_source on unregistered buffer {buffer}"));
        (loc.latest != HEAD_NODE).then_some(loc.latest)
    }

    /// Record that the retrieval planned by [`DataManager::retrieve_source`]
    /// completed: the head now holds the latest version, and the transfer
    /// is logged. The worker's copy stays a valid holder — a flush is a
    /// read, not an invalidation — so a resident buffer keeps its device
    /// copies. No-op when the head is already latest (the source died and
    /// recovery re-sourced the buffer meanwhile).
    pub fn record_retrieve(&mut self, buffer: BufferId) {
        self.record_retrieve_in(UNATTRIBUTED, buffer);
    }

    /// [`DataManager::record_retrieve`] logged under a region's namespace,
    /// so the retrieving region's record owns the transfer.
    pub fn record_retrieve_in(&mut self, region: u64, buffer: BufferId) {
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("record_retrieve on unregistered buffer {buffer}"));
        if loc.latest == HEAD_NODE {
            return;
        }
        let from = loc.latest;
        loc.holders.insert(HEAD_NODE);
        loc.latest = HEAD_NODE;
        self.logs.entry(region).or_default().push(TransferRecord {
            buffer,
            from,
            to: HEAD_NODE,
            bytes: loc.bytes,
            reason: TransferReason::Retrieve,
        });
    }

    /// Remove the buffer from the data manager entirely (exit data with
    /// `map(release:)`), returning the worker nodes that still held copies
    /// and must free them. Ends keep-resident status.
    pub fn remove(&mut self, buffer: BufferId) -> Vec<NodeId> {
        self.settling.remove(&buffer.0);
        self.buffers
            .remove(&buffer)
            .map(|l| l.holders.into_iter().filter(|&n| n != HEAD_NODE).collect())
            .unwrap_or_default()
    }

    /// Declare `node` failed: every copy it held becomes invalid, its
    /// future writes are ignored, and it is never again chosen as a
    /// transfer source. Returns the buffers whose *only* valid copy lived
    /// on the node — their producing tasks must be re-executed (lineage
    /// recovery). For such buffers `latest` falls back to the head node:
    /// the host registry still holds the pre-offload image from which the
    /// re-executed lineage restarts. Resident copies are invalidated the
    /// same way — the next region's plan re-sources them from the host
    /// version or a surviving replica.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<BufferId> {
        assert_ne!(node, HEAD_NODE, "the head node cannot fail");
        self.failed.insert(node);
        self.settling.retain(|_, &mut (holder, _)| holder != node);
        let mut lost = Vec::new();
        for (&buffer, loc) in self.buffers.iter_mut() {
            loc.holders.remove(&node);
            if loc.latest == node {
                if let Some(&survivor) = loc.holders.iter().next() {
                    loc.latest = survivor;
                } else {
                    loc.latest = HEAD_NODE;
                    lost.push(buffer);
                }
            }
        }
        lost
    }

    /// Whether `node` has been declared failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// Whether any node has been declared failed.
    pub fn has_failures(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Drain the per-run transfer log (planned transfers since the last
    /// drain). The execution core attaches this to its
    /// [`crate::runtime::RunRecord`].
    pub fn take_transfer_log(&mut self) -> Vec<TransferRecord> {
        self.settling.clear();
        std::mem::take(&mut self.logs).into_values().flatten().collect()
    }

    /// Drain one region's transfer-log namespace, leaving the others (and
    /// the device-level [`UNATTRIBUTED`] namespace) untouched. This is what
    /// the cluster device attaches to a concurrent region's
    /// [`crate::runtime::RunRecord`].
    pub fn take_transfer_log_in(&mut self, region: u64) -> Vec<TransferRecord> {
        self.settling.retain(|_, &mut (_, r)| r != region);
        self.logs.remove(&region).unwrap_or_default()
    }

    /// The transfers logged since the last [`DataManager::take_transfer_log`].
    pub fn transfer_log(&self) -> Vec<TransferRecord> {
        self.logs.values().flatten().cloned().collect()
    }

    /// Number of tracked buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffers are tracked.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_forwarding_pattern() {
        // Paper §4.3 walk-through: A starts on the head node, foo runs on
        // worker 1, bar on worker 2. The forward for bar must come from
        // worker 1, not the head, and worker 1's copy is invalidated after
        // bar writes.
        let mut dm = DataManager::new();
        let a = BufferId(0);
        dm.register_host_buffer(a, 64);

        // foo (inout A) on node 1: input comes from the head.
        let plan = dm.plan_input(a, 1).unwrap();
        assert_eq!(plan, TransferPlan { from: HEAD_NODE, to: 1, buffer: a });
        let stale = dm.record_write(a, 1);
        assert_eq!(stale, vec![HEAD_NODE]);
        assert_eq!(dm.latest(a), Some(1));

        // bar (inout A) on node 2: input forwarded worker-to-worker.
        let plan = dm.plan_input(a, 2).unwrap();
        assert_eq!(plan, TransferPlan { from: 1, to: 2, buffer: a });
        let stale = dm.record_write(a, 2);
        assert_eq!(stale, vec![1]);
        assert_eq!(dm.holders(a), vec![2]);

        // exit data: retrieve from node 2, then release everywhere.
        assert_eq!(dm.retrieve_source(a), Some(2));
        dm.record_retrieve(a);
        assert_eq!(dm.latest(a), Some(HEAD_NODE));
        let free = dm.remove(a);
        assert_eq!(free, vec![2]);
        assert!(dm.is_empty());

        // The log captured the whole story with the registered size.
        let log = dm.take_transfer_log();
        assert_eq!(log.len(), 3);
        assert!(log.iter().all(|t| t.bytes == 64 && t.buffer == a));
        assert_eq!(log[0].reason, TransferReason::Input);
        assert_eq!((log[1].from, log[1].to), (1, 2));
        assert_eq!(log[2].reason, TransferReason::Retrieve);
        assert!(dm.transfer_log().is_empty(), "the drain empties the log");
    }

    #[test]
    fn read_only_data_is_replicated_not_invalidated() {
        let mut dm = DataManager::new();
        let b = BufferId(1);
        dm.register_host_buffer(b, 8);
        assert!(dm.plan_input(b, 1).is_some());
        assert!(dm.plan_input(b, 2).is_some());
        // Both workers plus the head hold copies now.
        assert_eq!(dm.holders(b), vec![HEAD_NODE, 1, 2]);
        // A third reader on node 1 needs no transfer.
        assert!(dm.plan_input(b, 1).is_none());
    }

    #[test]
    fn second_input_plan_for_same_node_is_free() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert!(dm.plan_input(b, 3).is_some());
        assert!(dm.plan_input(b, 3).is_none());
        assert_eq!(dm.transfer_log().len(), 1, "a free re-plan logs nothing");
    }

    #[test]
    fn retrieve_is_noop_when_head_is_latest() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert_eq!(dm.retrieve_source(b), None);
        dm.record_retrieve(b);
        assert!(dm.transfer_log().is_empty());
    }

    #[test]
    fn device_only_buffer_starts_on_its_node() {
        let mut dm = DataManager::new();
        let b = BufferId(7);
        dm.register_device_buffer(b, 3, 16);
        assert_eq!(dm.latest(b), Some(3));
        assert!(dm.is_present(b, 3));
        assert!(!dm.is_present(b, HEAD_NODE));
        assert_eq!(dm.bytes_of(b), 16);
        assert_eq!(dm.retrieve_source(b), Some(3));
        dm.record_retrieve(b);
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        // A flush is a read: node 3 keeps its copy.
        assert!(dm.is_present(b, 3));
    }

    #[test]
    fn failed_retrieve_commits_nothing_and_recovery_retries_truthfully() {
        // The retrieval plan is read-only: if the bytes never land (the
        // source fails mid-flight), the location state stays truthful —
        // fail_node still sees the worker as latest, reports the loss, and
        // a later plan re-sources from the head's pre-offload image.
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.plan_input(b, 2).unwrap();
        dm.record_write(b, 2);
        assert_eq!(dm.retrieve_source(b), Some(2));
        // ... the retrieve from node 2 fails; nothing was committed:
        assert_eq!(dm.latest(b), Some(2));
        assert!(!dm.is_present(b, HEAD_NODE));
        let lost = dm.fail_node(2);
        assert_eq!(lost, vec![b], "the death must be reported, not masked by a phantom flush");
        assert_eq!(dm.retrieve_source(b), None, "nothing left to retrieve");
        // record_retrieve after recovery moved latest to the head is a
        // no-op, not a phantom transfer.
        dm.record_retrieve(b);
        let retrieves =
            dm.transfer_log().iter().filter(|t| t.reason == TransferReason::Retrieve).count();
        assert_eq!(retrieves, 0);
    }

    #[test]
    fn forget_replica_rolls_back_a_failed_transfer_and_its_log_entry() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert!(dm.plan_input(b, 2).is_some());
        assert_eq!(dm.transfer_log().len(), 1);
        // The transfer failed: node 2 must be forgotten so a later reader
        // plans the transfer again, and the logged transfer is withdrawn.
        dm.forget_replica(b, 2);
        assert!(!dm.is_present(b, 2));
        assert!(dm.transfer_log().is_empty());
        assert!(dm.plan_input(b, 2).is_some());
        assert_eq!(dm.transfer_log().len(), 1);
        // The latest copy is never forgotten.
        dm.forget_replica(b, HEAD_NODE);
        assert!(dm.is_present(b, HEAD_NODE));
        assert_eq!(dm.transfer_log().len(), 1);
    }

    #[test]
    fn observed_resizes_keep_log_bytes_truthful() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.plan_input(b, 1).unwrap();
        dm.record_write(b, 1);
        // A kernel grew the buffer on node 1; the retrieval observes the
        // wire size before committing, so its log entry is truthful.
        dm.observe_size(b, 24);
        dm.record_retrieve(b);
        let log = dm.take_transfer_log();
        assert_eq!(log[0].bytes, 8, "the initial forward moved the mapped size");
        assert_eq!(log[1].bytes, 24, "the retrieve logs the resized payload");
        // Later forwards account the observed size too.
        assert!(dm.plan_input(b, 2).is_some());
        assert_eq!(dm.transfer_log()[0].bytes, 24);
        assert_eq!(dm.bytes_of(b), 24);
        // Unknown buffers are ignored, not invented.
        dm.observe_size(BufferId(99), 1);
        assert_eq!(dm.bytes_of(BufferId(99)), 0);
    }

    #[test]
    fn record_replica_marks_presence() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.record_replica(b, 5);
        assert!(dm.is_present(b, 5));
        // Latest is unchanged by a replica, and nothing was logged.
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        assert!(dm.transfer_log().is_empty());
    }

    #[test]
    fn remove_unknown_buffer_is_empty() {
        let mut dm = DataManager::new();
        assert!(dm.remove(BufferId(9)).is_empty());
        assert!(dm.holders(BufferId(9)).is_empty());
        assert!(!dm.is_registered(BufferId(9)));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn plan_input_on_unregistered_buffer_panics() {
        let mut dm = DataManager::new();
        dm.plan_input(BufferId(0), 1);
    }

    #[test]
    fn failed_node_with_surviving_replica_promotes_a_survivor() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.plan_input(b, 1).unwrap();
        dm.record_write(b, 1);
        // A reader replicates the latest version onto node 2.
        dm.plan_input(b, 2).unwrap();
        let lost = dm.fail_node(1);
        assert!(lost.is_empty(), "node 2 still holds a valid copy");
        assert!(dm.is_failed(1) && dm.has_failures());
        assert_eq!(dm.latest(b), Some(2));
        assert_eq!(dm.holders(b), vec![2]);
    }

    #[test]
    fn failed_node_holding_the_only_copy_loses_the_buffer() {
        let mut dm = DataManager::new();
        let b = BufferId(3);
        dm.register_host_buffer(b, 8);
        dm.plan_input(b, 2).unwrap();
        dm.record_write(b, 2);
        let lost = dm.fail_node(2);
        assert_eq!(lost, vec![b]);
        // Lineage restarts from the head node's pre-offload image.
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        assert!(dm.holders(b).is_empty());
    }

    #[test]
    fn dead_nodes_are_excommunicated_from_all_operations() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.fail_node(4);
        // No transfers to, writes from, or replicas on a dead node.
        assert!(dm.plan_input(b, 4).is_none());
        assert!(dm.record_write(b, 4).is_empty());
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        dm.record_replica(b, 4);
        assert!(!dm.is_present(b, 4));
        dm.register_device_buffer(BufferId(9), 4, 8);
        assert!(!dm.is_registered(BufferId(9)));
        // Live nodes are unaffected.
        assert!(dm.plan_input(b, 1).is_some());
    }

    #[test]
    fn region_epochs_stamp_registration_and_writes() {
        let mut dm = DataManager::new();
        assert_eq!(dm.epoch(), 0);
        assert_eq!(dm.begin_region(), 1);
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert_eq!(dm.buffer_epoch(b), Some(1));
        dm.begin_region();
        // Residency carries the old epoch until something writes.
        assert_eq!(dm.buffer_epoch(b), Some(1));
        dm.plan_input(b, 1);
        assert_eq!(dm.buffer_epoch(b), Some(1), "a read replica does not advance the epoch");
        dm.record_write(b, 1);
        assert_eq!(dm.buffer_epoch(b), Some(2));
        assert_eq!(dm.epoch(), 2);
    }

    #[test]
    fn resident_marking_survives_until_remove() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert!(!dm.is_resident(b));
        dm.mark_resident(b);
        assert!(dm.is_resident(b));
        dm.plan_input(b, 1);
        dm.record_write(b, 1);
        assert!(dm.is_resident(b), "writes keep residency");
        dm.remove(b);
        assert!(!dm.is_resident(b), "release ends residency");
    }

    #[test]
    fn inflight_booking_defers_the_record_and_blocks_replanning() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 64);
        let t = dm.open_ticket();
        let plan = dm.begin_inflight(b, 2, TransferReason::Input, t).unwrap();
        assert_eq!(plan, TransferPlan { from: HEAD_NODE, to: 2, buffer: b });
        // The booking is a holder (no sync re-plan) but the record is
        // deferred, not in the per-run log.
        assert!(dm.plan_input(b, 2).is_none());
        assert!(dm.transfer_log().is_empty());
        assert_eq!(dm.deferred_transfers().len(), 1);
        assert_eq!(dm.transfer_state(b, 2), TransferState::InFlight(t));
        assert!(dm.buffer_in_flight(b));
        // A second booking of the same pair is free.
        assert!(dm.begin_inflight(b, 2, TransferReason::Input, t).is_none());
        // The ticket is pending until the movement lands.
        assert_eq!(dm.ticket_result(t), None);
        dm.finish_inflight(b, 2, Ok(()));
        assert_eq!(dm.transfer_state(b, 2), TransferState::Resident);
        assert_eq!(dm.ticket_result(t), Some(Ok(())));
        // Reaped: a later read of the same ticket reads as complete.
        assert_eq!(dm.ticket_result(t), Some(Ok(())));
        // Adoption moves the deferred record into the fresh log.
        dm.adopt_deferred_for(&[b].into_iter().collect(), UNATTRIBUTED);
        assert!(dm.deferred_transfers().is_empty());
        assert_eq!(dm.transfer_log().len(), 1);
        assert_eq!(dm.transfer_log()[0].reason, TransferReason::Input);
    }

    #[test]
    fn failed_inflight_rolls_back_holder_record_and_surfaces_the_error() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        let t = dm.open_ticket();
        dm.begin_inflight(b, 3, TransferReason::EnterData, t).unwrap();
        let boom = OmpcError::Internal("wire".to_string());
        dm.finish_inflight(b, 3, Err(boom.clone()));
        // Holder and deferred record are gone; the failure is visible to
        // waiters exactly once; the ticket reports it.
        assert!(!dm.is_present(b, 3));
        assert!(dm.deferred_transfers().is_empty());
        assert_eq!(dm.transfer_state(b, 3), TransferState::Invalid);
        assert_eq!(dm.take_inflight_error(b, 3), Some(boom.clone()));
        assert_eq!(dm.take_inflight_error(b, 3), None);
        assert_eq!(dm.ticket_result(t), Some(Err(boom)));
        // The pair can be re-planned synchronously afterwards.
        assert!(dm.plan_input(b, 3).is_some());
    }

    #[test]
    fn inflight_completion_on_a_dead_node_counts_as_failure() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        let t = dm.open_ticket();
        dm.begin_inflight(b, 2, TransferReason::Input, t).unwrap();
        dm.fail_node(2);
        // The wire op "succeeded" but the destination died: the booking
        // must roll back (no phantom transfer record survives).
        dm.finish_inflight(b, 2, Ok(()));
        assert!(dm.deferred_transfers().is_empty());
        assert!(!dm.is_present(b, 2));
        assert!(matches!(dm.ticket_result(t), Some(Err(OmpcError::NodeFailure(2)))));
    }

    #[test]
    fn inflight_retrieve_serializes_concurrent_flushes() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        dm.plan_input(b, 1).unwrap();
        dm.record_write(b, 1);
        let t = dm.open_ticket();
        assert_eq!(dm.begin_inflight_retrieve(b, t), Some(1));
        // A concurrent flusher observes the in-flight retrieval and waits
        // instead of scheduling a second retrieve.
        assert_eq!(dm.transfer_state(b, HEAD_NODE), TransferState::InFlight(t));
        dm.record_retrieve(b);
        dm.finish_inflight(b, HEAD_NODE, Ok(()));
        assert_eq!(dm.ticket_result(t), Some(Ok(())));
        // Once the head is latest there is nothing left to book.
        let t2 = dm.open_ticket();
        assert_eq!(dm.begin_inflight_retrieve(b, t2), None);
        assert_eq!(dm.ticket_result(t2), Some(Ok(())));
        // A failed retrieve is simply un-booked: the next flush retries.
        dm.record_write(b, 1);
        let t3 = dm.open_ticket();
        assert_eq!(dm.begin_inflight_retrieve(b, t3), Some(1));
        dm.finish_inflight(b, HEAD_NODE, Err(OmpcError::Internal("x".into())));
        assert_eq!(dm.transfer_state(b, HEAD_NODE), TransferState::Invalid);
        assert_eq!(dm.retrieve_source(b), Some(1));
        assert!(matches!(dm.ticket_result(t3), Some(Err(_))));
    }

    #[test]
    fn latest_on_workers_reports_only_device_latest_buffers() {
        let mut dm = DataManager::new();
        let a = BufferId(0);
        let b = BufferId(1);
        dm.register_host_buffer(a, 8);
        dm.register_host_buffer(b, 8);
        dm.plan_input(a, 2);
        dm.record_write(a, 2);
        let map = dm.latest_on_workers();
        assert_eq!(map.get(&a), Some(&2));
        assert!(!map.contains_key(&b), "host-latest buffers are not resident on workers");
        // A failure moves the residency view.
        dm.fail_node(2);
        assert!(dm.latest_on_workers().is_empty());
    }

    #[test]
    fn concurrent_sync_first_touch_is_a_typed_rejection() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        // Region 1 first-touches the buffer: the copy on node 1 is settling.
        assert!(dm.plan_input_in(1, b, 1).unwrap().is_some());
        // A second plan from the same region is fine (replication within
        // one region is ordered by that region's own dependence graph).
        assert!(dm.plan_input_in(1, b, 2).unwrap().is_some());
        // A concurrent region racing the optimistic holder is rejected.
        match dm.plan_input_in(2, b, 3) {
            Err(OmpcError::InvalidConfig(msg)) => {
                assert!(msg.contains("first-touch"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Planning towards a node that already holds stays a quiet no-op.
        assert!(dm.plan_input_in(2, b, 1).unwrap().is_none());
        // Once region 1 completes (drains its log), the copies are settled
        // and other regions may source them freely.
        dm.take_transfer_log_in(1);
        assert!(dm.plan_input_in(2, b, 3).unwrap().is_some());
    }

    #[test]
    fn first_touch_guard_clears_on_rollback_and_failure() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 8);
        assert!(dm.plan_input_in(1, b, 1).unwrap().is_some());
        assert!(dm.plan_input_in(2, b, 2).is_err());
        // The first-touch transfer failed: the booking rolls back and the
        // buffer is no longer settling.
        dm.forget_replica(b, 1);
        assert!(dm.plan_input_in(2, b, 2).unwrap().is_some());
        // Same via node failure.
        let c = BufferId(1);
        dm.register_host_buffer(c, 8);
        dm.take_transfer_log();
        assert!(dm.plan_input_in(3, c, 3).unwrap().is_some());
        assert!(dm.plan_input_in(4, c, 4).is_err());
        dm.fail_node(3);
        assert!(dm.plan_input_in(4, c, 4).unwrap().is_some());
        // Device-level (UNATTRIBUTED) plans are always exempt.
        let d = BufferId(2);
        dm.register_host_buffer(d, 8);
        assert!(dm.plan_input_in(5, d, 1).unwrap().is_some());
        assert!(dm.plan_input(d, 2).is_some());
    }

    #[test]
    fn broadcast_deliveries_log_true_per_edge_bytes() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 64);
        // Binomial distribution head→1, head→2, 1→3: each delivered edge
        // is one record carrying the real feeder.
        dm.note_broadcast_delivery(7, b, HEAD_NODE, 1, TransferReason::EnterData);
        dm.note_broadcast_delivery(7, b, HEAD_NODE, 2, TransferReason::EnterData);
        dm.note_broadcast_delivery(7, b, 1, 3, TransferReason::EnterData);
        // Duplicate delivery (rescue replays) must not double-log.
        dm.note_broadcast_delivery(7, b, 2, 3, TransferReason::EnterData);
        let mut holders = dm.holders(b);
        holders.sort_unstable();
        assert_eq!(holders, vec![HEAD_NODE, 1, 2, 3]);
        let log = dm.take_transfer_log_in(7);
        assert_eq!(log.len(), 3);
        assert!(log.iter().all(|t| t.bytes == 64 && t.reason == TransferReason::EnterData));
        assert_eq!(log.iter().filter(|t| t.from == HEAD_NODE).count(), 2);
        assert_eq!(log.iter().filter(|t| t.from == 1 && t.to == 3).count(), 1);
        // A dead destination is never logged or remembered.
        dm.fail_node(4);
        dm.note_broadcast_delivery(7, b, 1, 4, TransferReason::Input);
        assert!(!dm.is_present(b, 4));
        assert!(dm.take_transfer_log_in(7).is_empty());
    }

    #[test]
    fn retarget_deferred_updates_the_rescued_edge() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b, 16);
        dm.plan_input(b, 1);
        let t = dm.open_ticket();
        assert!(dm.begin_inflight(b, 2, TransferReason::Input, t).is_some());
        // The planned parent (node 1) died; node 3 rescued the delivery.
        dm.retarget_deferred_from(b, 2, 3);
        assert_eq!(dm.deferred_transfers().last().map(|r| (r.from, r.to)), Some((3, 2)));

        // Once the consuming region adopts the record, a late-resolving
        // rescue must still find and repoint it inside the region's log.
        let consumed: BTreeSet<BufferId> = [b].into_iter().collect();
        dm.adopt_deferred_for(&consumed, 7);
        dm.retarget_deferred_from(b, 2, 4);
        let log = dm.take_transfer_log_in(7);
        assert_eq!(
            log.iter().map(|r| (r.from, r.to)).collect::<Vec<_>>(),
            vec![(4, 2)],
            "the adopted record must report the rescue edge: {log:?}"
        );
    }
}
