//! The Data Management module (paper §4.3).
//!
//! The DM tracks, for every mapped buffer, the set of nodes that currently
//! hold a valid copy and which of them holds the most recent version. When
//! a target task is about to execute it decides how the task's input data
//! must be forwarded:
//!
//! * if the buffer is already present on the executing node, nothing moves;
//! * otherwise it is copied from its most recent location — a worker node
//!   if one has it, which yields the worker-to-worker forwarding that keeps
//!   the head node off the data path;
//! * after a task that writes the buffer (`inout`/`out` dependence), the
//!   copy on the executing node becomes the only valid one and stale copies
//!   are invalidated;
//! * read-only uses replicate the buffer, so later readers can fetch it
//!   from any holder.
//!
//! The same logic drives both the real threaded runtime and the simulated
//! runtime, so the transfer patterns measured in the benchmarks are produced
//! by exactly this code.

use crate::types::{BufferId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// The head node's id; the host copy of a buffer lives there.
pub const HEAD_NODE: NodeId = 0;

/// A planned data movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Node currently holding the bytes to copy.
    pub from: NodeId,
    /// Node that needs the bytes.
    pub to: NodeId,
    /// The buffer to move.
    pub buffer: BufferId,
}

#[derive(Debug, Clone, Default)]
struct BufferLocations {
    /// Nodes holding a valid copy.
    holders: BTreeSet<NodeId>,
    /// Node holding the most recent version.
    latest: NodeId,
}

/// Location tracking and forwarding decisions for every mapped buffer.
#[derive(Debug, Clone, Default)]
pub struct DataManager {
    buffers: BTreeMap<BufferId, BufferLocations>,
    /// Nodes that have been declared failed: their copies are gone, their
    /// writes are ignored, and they are never chosen as a transfer source.
    failed: BTreeSet<NodeId>,
}

impl DataManager {
    /// Create an empty data manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a buffer whose initial (host) copy lives on the head node.
    pub fn register_host_buffer(&mut self, buffer: BufferId) {
        let mut holders = BTreeSet::new();
        holders.insert(HEAD_NODE);
        self.buffers.insert(buffer, BufferLocations { holders, latest: HEAD_NODE });
    }

    /// Register a buffer that is allocated directly on `node` without a
    /// host copy (the `map(alloc:)` case). Ignored when `node` has been
    /// declared failed.
    pub fn register_device_buffer(&mut self, buffer: BufferId, node: NodeId) {
        if self.failed.contains(&node) {
            return;
        }
        let mut holders = BTreeSet::new();
        holders.insert(node);
        self.buffers.insert(buffer, BufferLocations { holders, latest: node });
    }

    /// Whether the buffer is known to the data manager.
    pub fn is_registered(&self, buffer: BufferId) -> bool {
        self.buffers.contains_key(&buffer)
    }

    /// Nodes currently holding a valid copy of the buffer.
    pub fn holders(&self, buffer: BufferId) -> Vec<NodeId> {
        self.buffers.get(&buffer).map(|l| l.holders.iter().copied().collect()).unwrap_or_default()
    }

    /// The node holding the most recent version of the buffer, if known.
    pub fn latest(&self, buffer: BufferId) -> Option<NodeId> {
        self.buffers.get(&buffer).map(|l| l.latest)
    }

    /// Whether `node` holds a valid copy of `buffer`.
    pub fn is_present(&self, buffer: BufferId, node: NodeId) -> bool {
        self.buffers.get(&buffer).is_some_and(|l| l.holders.contains(&node))
    }

    /// Decide how to make `buffer` available on `node` before a task that
    /// *reads* it executes there. Returns `None` when the buffer is already
    /// present; otherwise returns a transfer from the most recent holder and
    /// records the new replica.
    pub fn plan_input(&mut self, buffer: BufferId, node: NodeId) -> Option<TransferPlan> {
        if self.failed.contains(&node) {
            // A dead node never receives data; the caller is a zombie task
            // whose results are discarded anyway.
            return None;
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("plan_input on unregistered buffer {buffer}"));
        if loc.holders.contains(&node) {
            return None;
        }
        let from = loc.latest;
        loc.holders.insert(node);
        Some(TransferPlan { from, to: node, buffer })
    }

    /// Record that a task executing on `node` wrote `buffer`: the copy on
    /// `node` becomes the only valid one. Returns the nodes whose copies
    /// became stale (and should be deleted), excluding `node` itself.
    pub fn record_write(&mut self, buffer: BufferId, node: NodeId) -> Vec<NodeId> {
        if self.failed.contains(&node) {
            // Writes from a dead node are discarded: its task will be
            // re-executed on a survivor.
            return Vec::new();
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("record_write on unregistered buffer {buffer}"));
        let stale: Vec<NodeId> = loc.holders.iter().copied().filter(|&n| n != node).collect();
        loc.holders.clear();
        loc.holders.insert(node);
        loc.latest = node;
        stale
    }

    /// Roll back a replica recorded optimistically by
    /// [`DataManager::plan_input`] whose transfer failed: `node` never
    /// received the bytes, so it must not be remembered as a holder. The
    /// most recent copy (`latest`) is never forgotten.
    pub fn forget_replica(&mut self, buffer: BufferId, node: NodeId) {
        if let Some(loc) = self.buffers.get_mut(&buffer) {
            if loc.latest != node {
                loc.holders.remove(&node);
            }
        }
    }

    /// Record that `node` received a read-only replica of `buffer` (e.g.
    /// after an explicit submit that bypassed [`DataManager::plan_input`]).
    pub fn record_replica(&mut self, buffer: BufferId, node: NodeId) {
        if self.failed.contains(&node) {
            return;
        }
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("record_replica on unregistered buffer {buffer}"));
        loc.holders.insert(node);
    }

    /// Plan the retrieval of the buffer back to the head node (exit data
    /// with `map(from:)`). Returns the node to fetch from, or `None` when
    /// the head already holds the latest version.
    pub fn plan_retrieve(&mut self, buffer: BufferId) -> Option<NodeId> {
        let loc = self
            .buffers
            .get_mut(&buffer)
            .unwrap_or_else(|| panic!("plan_retrieve on unregistered buffer {buffer}"));
        if loc.latest == HEAD_NODE {
            None
        } else {
            let from = loc.latest;
            loc.holders.insert(HEAD_NODE);
            loc.latest = HEAD_NODE;
            Some(from)
        }
    }

    /// Remove the buffer from the data manager entirely (exit data with
    /// `map(release:)`), returning the worker nodes that still held copies
    /// and must free them.
    pub fn remove(&mut self, buffer: BufferId) -> Vec<NodeId> {
        self.buffers
            .remove(&buffer)
            .map(|l| l.holders.into_iter().filter(|&n| n != HEAD_NODE).collect())
            .unwrap_or_default()
    }

    /// Declare `node` failed: every copy it held becomes invalid, its
    /// future writes are ignored, and it is never again chosen as a
    /// transfer source. Returns the buffers whose *only* valid copy lived
    /// on the node — their producing tasks must be re-executed (lineage
    /// recovery). For such buffers `latest` falls back to the head node:
    /// the host registry still holds the pre-offload image from which the
    /// re-executed lineage restarts.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<BufferId> {
        assert_ne!(node, HEAD_NODE, "the head node cannot fail");
        self.failed.insert(node);
        let mut lost = Vec::new();
        for (&buffer, loc) in self.buffers.iter_mut() {
            loc.holders.remove(&node);
            if loc.latest == node {
                if let Some(&survivor) = loc.holders.iter().next() {
                    loc.latest = survivor;
                } else {
                    loc.latest = HEAD_NODE;
                    lost.push(buffer);
                }
            }
        }
        lost
    }

    /// Whether `node` has been declared failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// Whether any node has been declared failed.
    pub fn has_failures(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Number of tracked buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffers are tracked.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_forwarding_pattern() {
        // Paper §4.3 walk-through: A starts on the head node, foo runs on
        // worker 1, bar on worker 2. The forward for bar must come from
        // worker 1, not the head, and worker 1's copy is invalidated after
        // bar writes.
        let mut dm = DataManager::new();
        let a = BufferId(0);
        dm.register_host_buffer(a);

        // foo (inout A) on node 1: input comes from the head.
        let plan = dm.plan_input(a, 1).unwrap();
        assert_eq!(plan, TransferPlan { from: HEAD_NODE, to: 1, buffer: a });
        let stale = dm.record_write(a, 1);
        assert_eq!(stale, vec![HEAD_NODE]);
        assert_eq!(dm.latest(a), Some(1));

        // bar (inout A) on node 2: input forwarded worker-to-worker.
        let plan = dm.plan_input(a, 2).unwrap();
        assert_eq!(plan, TransferPlan { from: 1, to: 2, buffer: a });
        let stale = dm.record_write(a, 2);
        assert_eq!(stale, vec![1]);
        assert_eq!(dm.holders(a), vec![2]);

        // exit data: retrieve from node 2, then release everywhere.
        assert_eq!(dm.plan_retrieve(a), Some(2));
        assert_eq!(dm.latest(a), Some(HEAD_NODE));
        let free = dm.remove(a);
        assert_eq!(free, vec![2]);
        assert!(dm.is_empty());
    }

    #[test]
    fn read_only_data_is_replicated_not_invalidated() {
        let mut dm = DataManager::new();
        let b = BufferId(1);
        dm.register_host_buffer(b);
        assert!(dm.plan_input(b, 1).is_some());
        assert!(dm.plan_input(b, 2).is_some());
        // Both workers plus the head hold copies now.
        assert_eq!(dm.holders(b), vec![HEAD_NODE, 1, 2]);
        // A third reader on node 1 needs no transfer.
        assert!(dm.plan_input(b, 1).is_none());
    }

    #[test]
    fn second_input_plan_for_same_node_is_free() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        assert!(dm.plan_input(b, 3).is_some());
        assert!(dm.plan_input(b, 3).is_none());
    }

    #[test]
    fn retrieve_is_noop_when_head_is_latest() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        assert_eq!(dm.plan_retrieve(b), None);
    }

    #[test]
    fn device_only_buffer_starts_on_its_node() {
        let mut dm = DataManager::new();
        let b = BufferId(7);
        dm.register_device_buffer(b, 3);
        assert_eq!(dm.latest(b), Some(3));
        assert!(dm.is_present(b, 3));
        assert!(!dm.is_present(b, HEAD_NODE));
        assert_eq!(dm.plan_retrieve(b), Some(3));
    }

    #[test]
    fn forget_replica_rolls_back_a_failed_transfer() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        assert!(dm.plan_input(b, 2).is_some());
        // The transfer failed: node 2 must be forgotten so a later reader
        // plans the transfer again.
        dm.forget_replica(b, 2);
        assert!(!dm.is_present(b, 2));
        assert!(dm.plan_input(b, 2).is_some());
        // The latest copy is never forgotten.
        dm.forget_replica(b, HEAD_NODE);
        assert!(dm.is_present(b, HEAD_NODE));
    }

    #[test]
    fn record_replica_marks_presence() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        dm.record_replica(b, 5);
        assert!(dm.is_present(b, 5));
        // Latest is unchanged by a replica.
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
    }

    #[test]
    fn remove_unknown_buffer_is_empty() {
        let mut dm = DataManager::new();
        assert!(dm.remove(BufferId(9)).is_empty());
        assert!(dm.holders(BufferId(9)).is_empty());
        assert!(!dm.is_registered(BufferId(9)));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn plan_input_on_unregistered_buffer_panics() {
        let mut dm = DataManager::new();
        dm.plan_input(BufferId(0), 1);
    }

    #[test]
    fn failed_node_with_surviving_replica_promotes_a_survivor() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        dm.plan_input(b, 1).unwrap();
        dm.record_write(b, 1);
        // A reader replicates the latest version onto node 2.
        dm.plan_input(b, 2).unwrap();
        let lost = dm.fail_node(1);
        assert!(lost.is_empty(), "node 2 still holds a valid copy");
        assert!(dm.is_failed(1) && dm.has_failures());
        assert_eq!(dm.latest(b), Some(2));
        assert_eq!(dm.holders(b), vec![2]);
    }

    #[test]
    fn failed_node_holding_the_only_copy_loses_the_buffer() {
        let mut dm = DataManager::new();
        let b = BufferId(3);
        dm.register_host_buffer(b);
        dm.plan_input(b, 2).unwrap();
        dm.record_write(b, 2);
        let lost = dm.fail_node(2);
        assert_eq!(lost, vec![b]);
        // Lineage restarts from the head node's pre-offload image.
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        assert!(dm.holders(b).is_empty());
    }

    #[test]
    fn dead_nodes_are_excommunicated_from_all_operations() {
        let mut dm = DataManager::new();
        let b = BufferId(0);
        dm.register_host_buffer(b);
        dm.fail_node(4);
        // No transfers to, writes from, or replicas on a dead node.
        assert!(dm.plan_input(b, 4).is_none());
        assert!(dm.record_write(b, 4).is_empty());
        assert_eq!(dm.latest(b), Some(HEAD_NODE));
        dm.record_replica(b, 4);
        assert!(!dm.is_present(b, 4));
        dm.register_device_buffer(BufferId(9), 4);
        assert!(!dm.is_registered(BufferId(9)));
        // Live nodes are unaffected.
        assert!(dm.plan_input(b, 1).is_some());
    }
}
