//! Collective data movement: binomial broadcast trees with chunked,
//! pipelined payload frames.
//!
//! When one buffer must reach `k ≥ collective_min_fanout` destinations in a
//! single planning step, shipping it as `k` independent point-to-point
//! transfers serializes `k` full copies on the source's link. This module
//! plans a **binomial tree** over `[source, dest₀, dest₁, …]` instead: the
//! source feeds `⌈log₂(k+1)⌉` subtree roots and every interior recipient
//! fans the payload onward to its own children via the worker-to-worker
//! relay events ([`crate::protocol::EventRequest::RelayRecv`] /
//! [`crate::protocol::EventRequest::RelayFeed`]), so the source link
//! carries `O(log k)` copies while the remaining hops ride otherwise idle
//! worker links in parallel.
//!
//! Underneath, payloads stream as **chunked frames**
//! ([`crate::protocol::encode_relay_frame`], size
//! [`crate::config::OmpcConfig::collective_chunk_kib`]): a relay forwards
//! chunk *i* the moment it arrives, while chunk *i+1* is still on the wire
//! towards it, overlapping receive, store, and fan-out down the whole
//! tree.
//!
//! ## Delivery tracking and failure healing
//!
//! One broadcast opens an exclusive event channel per destination; every
//! destination acknowledges its full reassembled payload (or reports a
//! typed error) on its own channel, so the head resolves the tree
//! **per-destination** — exactly the granularity the in-flight ticket
//! table needs. When a relay node refuses its event (killed by the fault
//! plan, or a real failure surfaced by its gate), only its *undelivered
//! subtree* is affected: the dead node never forwarded a frame, so its
//! planned children are simply re-fed ("rescued") from a surviving
//! recipient that already acknowledged the payload — delivered nodes are
//! never re-sent, and the transfer log records the rescue edge that
//! actually carried the bytes. If no recipient has the payload yet and
//! nothing else can deliver one (every pending destination sits under an
//! orphaned subtree), the source itself re-feeds the orphans directly.
//!
//! Receivers are duplicate-tolerant (frames are indexed and re-delivery is
//! ignored), so a rescue may safely replay the whole stream.

use crate::data_manager::HEAD_NODE;
use crate::event::EventSystem;
use crate::protocol::{EventNotification, EventReply, EventRequest, RelayChild};
use crate::runtime::telemetry::{monotonic_us, Span, SpanPhase, Telemetry};
use crate::types::{BufferId, NodeId, OmpcError};
use ompc_mpi::{CommId, Tag};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Fallback bound on a whole broadcast when the device has no configured
/// event-reply timeout. Generous: a tree of large chunked payloads is
/// many sequential wire hops.
const DEFAULT_BROADCAST_TIMEOUT: Duration = Duration::from_secs(90);

/// Pause between delivery-probe sweeps. Short: the sweep is cheap iprobes,
/// and every sleep is pure latency on the broadcast's critical path.
const POLL_SLEEP: Duration = Duration::from_micros(50);

/// One planned one-to-many distribution.
#[derive(Debug, Clone)]
pub struct BroadcastSpec {
    /// The buffer being distributed.
    pub buffer: BufferId,
    /// Payload size in bytes (the registered size; what each edge carries).
    pub bytes: u64,
    /// Node currently holding the payload ([`HEAD_NODE`] or a worker).
    pub source: NodeId,
    /// Nodes that must receive a copy; none of them holds one yet.
    pub destinations: Vec<NodeId>,
    /// Frame size for the pipelined stream (0 = one whole-buffer frame).
    pub chunk_bytes: u64,
}

/// One confirmed delivery: `to` acknowledged the full payload, fed by
/// `from` — the planned tree parent, or the rescue source when the parent
/// died mid-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredEdge {
    /// Destination that acknowledged the payload.
    pub to: NodeId,
    /// Node that actually fed it.
    pub from: NodeId,
    /// Bytes the edge carried.
    pub bytes: u64,
}

/// The per-destination outcome of one broadcast.
#[derive(Debug, Clone, Default)]
pub struct BroadcastOutcome {
    /// Destinations that hold the payload, with the edge that fed each.
    pub delivered: Vec<DeliveredEdge>,
    /// Destinations that did not receive it, with the typed reason.
    pub failed: Vec<(NodeId, OmpcError)>,
}

impl BroadcastOutcome {
    /// Whether every destination acknowledged its copy.
    pub fn complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Children of tree slot `index` in a binomial tree over `size` slots:
/// `index + 2^j` for every `2^j > index` with `index + 2^j < size`. Slot 0
/// is the source; the tree reaches all slots in `⌈log₂ size⌉` rounds.
pub fn binomial_children(index: usize, size: usize) -> Vec<usize> {
    let mut children = Vec::new();
    let mut step = 1usize;
    while index + step < size {
        if step > index {
            children.push(index + step);
        }
        step <<= 1;
    }
    children
}

/// Parent of tree slot `index` (> 0): `index` with its highest set bit
/// cleared — the inverse of [`binomial_children`].
pub fn binomial_parent(index: usize) -> usize {
    debug_assert!(index > 0, "the root has no parent");
    index & !(1usize << (usize::BITS - 1 - index.leading_zeros()))
}

/// A feed dispatched towards orphaned (or root) destinations, whose reply
/// must be drained and whose failure orphans the slots it was feeding.
struct FeedInFlight {
    /// Node performing the feed ([`HEAD_NODE`] feeds send no event and are
    /// never tracked here).
    feeder: NodeId,
    tag: Tag,
    comm: CommId,
    /// Tree slots this feed was carrying frames towards.
    fed: Vec<usize>,
}

/// Execute `spec` as a binomial broadcast. `payload` must be `Some` iff
/// `spec.source == HEAD_NODE` (the head streams the frames itself; a
/// worker source is driven through a `RelayFeed` event instead).
///
/// Blocks until every destination either acknowledged its copy or failed;
/// per-destination outcomes are reported in the returned
/// [`BroadcastOutcome`]. Never returns a top-level error: a broadcast that
/// goes entirely wrong is simply `failed` for every destination, and the
/// caller's per-task star machinery remains the fallback.
pub(crate) fn run_broadcast(
    events: &EventSystem,
    telemetry: &Telemetry,
    spec: &BroadcastSpec,
    payload: Option<&[u8]>,
) -> BroadcastOutcome {
    let mut outcome = BroadcastOutcome::default();
    if spec.destinations.is_empty() {
        return outcome;
    }
    let size = 1 + spec.destinations.len();
    let node_of = |slot: usize| -> NodeId {
        if slot == 0 {
            spec.source
        } else {
            spec.destinations[slot - 1]
        }
    };
    let started = Instant::now();
    let t0 = telemetry.start();
    let deadline = events.reply_timeout().unwrap_or(DEFAULT_BROADCAST_TIMEOUT);

    // One exclusive reply channel per destination: the tree is resolved
    // per-destination on these.
    let channels: Vec<(Tag, CommId)> = (1..size).map(|_| events.open_channel()).collect();
    let child_of = |slot: usize| -> RelayChild {
        let (tag, comm) = channels[slot - 1];
        RelayChild { node: node_of(slot), tag, comm }
    };

    // Dispatch every destination's RelayRecv first; mailboxes buffer any
    // frame that races ahead of its notification.
    let mut pending: BTreeMap<usize, ()> = BTreeMap::new();
    let mut planned_parent: BTreeMap<usize, NodeId> = BTreeMap::new();
    let mut orphans: BTreeSet<usize> = BTreeSet::new();
    for slot in 1..size {
        planned_parent.insert(slot, node_of(binomial_parent(slot)));
        let (tag, comm) = channels[slot - 1];
        let children: Vec<RelayChild> =
            binomial_children(slot, size).into_iter().map(child_of).collect();
        let notified = events.notify(
            node_of(slot),
            &EventNotification {
                request: EventRequest::RelayRecv {
                    buffer: spec.buffer,
                    total_bytes: spec.bytes,
                    chunk_bytes: spec.chunk_bytes,
                    children,
                },
                tag,
                comm,
                timed: false,
            },
        );
        match notified {
            Ok(()) => {
                pending.insert(slot, ());
            }
            Err(e) => outcome.failed.push((node_of(slot), e)),
        }
    }
    // A destination whose notification never left orphans its planned
    // children (they will receive no frames from it).
    for slot in 1..size {
        if !pending.contains_key(&slot) {
            for child in binomial_children(slot, size) {
                if pending.contains_key(&child) {
                    orphans.insert(child);
                }
            }
        }
    }

    // Feed the subtree roots from the source.
    let root_slots: Vec<usize> =
        binomial_children(0, size).into_iter().filter(|slot| pending.contains_key(slot)).collect();
    let root_children: Vec<RelayChild> = root_slots.iter().map(|&slot| child_of(slot)).collect();
    let mut feeds: Vec<FeedInFlight> = Vec::new();
    let mut feed_failed: Option<OmpcError> = None;
    if spec.source == HEAD_NODE {
        let payload = payload.expect("a head-sourced broadcast carries its payload");
        let tc = telemetry.start();
        let sent = crate::worker::send_relay_frames(
            events.communicator(),
            payload,
            spec.chunk_bytes,
            &root_children,
        );
        if telemetry.spans_enabled() {
            telemetry.record(
                Span::new(SpanPhase::Chunk, HEAD_NODE, tc, monotonic_us())
                    .bytes(spec.bytes * root_children.len() as u64)
                    .detail("head-stream"),
            );
        }
        if let Err(e) = sent {
            feed_failed = Some(e);
        }
    } else {
        match dispatch_feed(events, spec, spec.source, &root_children) {
            Ok(mut feed) => {
                feed.fed = root_slots.clone();
                feeds.push(feed);
            }
            Err(e) => feed_failed = Some(e),
        }
    }
    if feed_failed.is_some() {
        // The roots got nothing; they are orphans until someone re-feeds
        // them (which, with no delivered recipient, only the source could —
        // and the source feed just failed, so they will fail below).
        orphans.extend(root_slots.iter().copied());
    }

    // Resolve deliveries, heal orphaned subtrees.
    while !pending.is_empty() {
        let mut progressed = false;
        // 1. Collect per-destination acknowledgements.
        let arrived: Vec<usize> = pending
            .keys()
            .copied()
            .filter(|&slot| {
                let (tag, comm) = channels[slot - 1];
                events
                    .communicator()
                    .on(comm)
                    .ok()
                    .and_then(|c| c.iprobe(Some(node_of(slot)), Some(tag)))
                    .is_some()
            })
            .collect();
        for slot in arrived {
            let (tag, comm) = channels[slot - 1];
            let node = node_of(slot);
            let reply = events
                .communicator()
                .on(comm)
                .and_then(|c| c.recv(Some(node), Some(tag)))
                .map_err(|e| OmpcError::Communication(e.to_string()))
                .and_then(|msg| EventReply::decode(&msg.data))
                .and_then(EventReply::into_result);
            pending.remove(&slot);
            orphans.remove(&slot);
            progressed = true;
            match reply {
                Ok(_) => {
                    let from = planned_parent[&slot];
                    events.counters().record(Some(spec.bytes));
                    if telemetry.spans_enabled() {
                        telemetry.record(
                            Span::new(SpanPhase::Relay, node, t0, monotonic_us())
                                .bytes(spec.bytes)
                                .from(from)
                                .detail("deliver"),
                        );
                    }
                    outcome.delivered.push(DeliveredEdge { to: node, from, bytes: spec.bytes });
                }
                Err(e) => {
                    // The refusal (or failure) means this node forwarded
                    // nothing: its still-pending planned children are
                    // orphans to be re-fed from a survivor.
                    for child in binomial_children(slot, size) {
                        if pending.contains_key(&child) {
                            orphans.insert(child);
                        }
                    }
                    outcome.failed.push((node, e));
                }
            }
        }
        // 2. Collect feed outcomes; a failed feed orphans what it carried.
        let mut kept = Vec::new();
        for feed in feeds.drain(..) {
            let probed = events
                .communicator()
                .on(feed.comm)
                .ok()
                .and_then(|c| c.iprobe(Some(feed.feeder), Some(feed.tag)));
            if probed.is_none() {
                kept.push(feed);
                continue;
            }
            progressed = true;
            let reply = events
                .communicator()
                .on(feed.comm)
                .and_then(|c| c.recv(Some(feed.feeder), Some(feed.tag)))
                .map_err(|e| OmpcError::Communication(e.to_string()))
                .and_then(|msg| EventReply::decode(&msg.data))
                .and_then(EventReply::into_result);
            if reply.is_err() {
                for slot in feed.fed {
                    if pending.contains_key(&slot) {
                        orphans.insert(slot);
                    }
                }
            }
        }
        feeds = kept;
        // 3. Rescue orphans: replay the stream from a recipient that
        // already holds the payload (delivered nodes are never re-sent —
        // receivers drop duplicate frames, and the rescue only targets the
        // orphans' own channels). Waiting is fine while some live subtree
        // can still produce a first delivery; when nothing can (every
        // pending slot sits under an orphan), the source re-feeds directly.
        if !orphans.is_empty() {
            let rescue_children: Vec<RelayChild> =
                orphans.iter().map(|&slot| child_of(slot)).collect();
            let fed: Vec<usize> = orphans.iter().copied().collect();
            if let Some(rescuer) = outcome.delivered.first().map(|e| e.to) {
                match dispatch_feed(events, spec, rescuer, &rescue_children) {
                    Ok(mut feed) => {
                        feed.fed = fed.clone();
                        for &slot in &fed {
                            planned_parent.insert(slot, rescuer);
                        }
                        feeds.push(feed);
                        orphans.clear();
                        progressed = true;
                    }
                    Err(_) => {
                        // The rescuer became unreachable; try again next
                        // sweep (possibly with a different rescuer).
                    }
                }
            } else if orphan_closure(&orphans, &pending, size) >= pending.len() {
                // No delivery exists anywhere and none can happen: only the
                // source still holds the bytes.
                let fed_ok = if spec.source == HEAD_NODE {
                    let payload = payload.expect("a head-sourced broadcast carries its payload");
                    crate::worker::send_relay_frames(
                        events.communicator(),
                        payload,
                        spec.chunk_bytes,
                        &rescue_children,
                    )
                    .map(|()| None)
                } else {
                    dispatch_feed(events, spec, spec.source, &rescue_children).map(|mut feed| {
                        feed.fed = fed.clone();
                        Some(feed)
                    })
                };
                match fed_ok {
                    Ok(feed) => {
                        for &slot in &fed {
                            planned_parent.insert(slot, spec.source);
                        }
                        feeds.extend(feed);
                        orphans.clear();
                        progressed = true;
                    }
                    Err(e) => {
                        // The source itself is gone: everything pending is
                        // undeliverable.
                        for slot in std::mem::take(&mut pending).into_keys() {
                            outcome.failed.push((node_of(slot), e.clone()));
                        }
                        orphans.clear();
                    }
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        if started.elapsed() > deadline {
            for slot in std::mem::take(&mut pending).into_keys() {
                outcome.failed.push((
                    node_of(slot),
                    OmpcError::Communication(format!(
                        "collective broadcast of {} timed out towards node {}",
                        spec.buffer,
                        node_of(slot)
                    )),
                ));
            }
            break;
        }
        if !progressed {
            std::thread::sleep(POLL_SLEEP);
        }
    }

    // Drain outstanding feed acknowledgements so no stray reply lingers in
    // the head's mailbox. Feeds towards already-resolved destinations
    // finish promptly (or time out and are abandoned).
    for feed in feeds {
        if let Ok(channel) = events.communicator().on(feed.comm) {
            let _ = channel.recv_timeout(Some(feed.feeder), Some(feed.tag), Duration::from_secs(5));
        }
    }
    outcome
}

/// Ask `feeder` (a worker holding the payload) to stream the broadcast
/// frames towards `children`.
fn dispatch_feed(
    events: &EventSystem,
    spec: &BroadcastSpec,
    feeder: NodeId,
    children: &[RelayChild],
) -> Result<FeedInFlight, OmpcError> {
    let (tag, comm) = events.open_channel();
    events.notify(
        feeder,
        &EventNotification {
            request: EventRequest::RelayFeed {
                buffer: spec.buffer,
                chunk_bytes: spec.chunk_bytes,
                children: children.to_vec(),
            },
            tag,
            comm,
            timed: false,
        },
    )?;
    Ok(FeedInFlight { feeder, tag, comm, fed: Vec::new() })
}

/// Size of the orphan closure: the orphans plus every still-pending slot
/// that (transitively) depends on an orphan for its frames.
fn orphan_closure(orphans: &BTreeSet<usize>, pending: &BTreeMap<usize, ()>, size: usize) -> usize {
    let mut closure: BTreeSet<usize> = orphans.clone();
    loop {
        let mut grew = false;
        for &slot in closure.clone().iter() {
            for child in binomial_children(slot, size) {
                if pending.contains_key(&child) && closure.insert(child) {
                    grew = true;
                }
            }
        }
        if !grew {
            return closure.iter().filter(|s| pending.contains_key(s)).count();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_shape_is_the_textbook_one() {
        // p = 9 (source + 8 destinations): the source feeds ⌈log₂ 9⌉ = 4
        // subtree roots — the 2× head-link reduction at fanout 8.
        assert_eq!(binomial_children(0, 9), vec![1, 2, 4, 8]);
        assert_eq!(binomial_children(1, 9), vec![3, 5]);
        assert_eq!(binomial_children(2, 9), vec![6]);
        assert_eq!(binomial_children(3, 9), vec![7]);
        assert_eq!(binomial_children(4, 9), Vec::<usize>::new());
        // Small trees.
        assert_eq!(binomial_children(0, 2), vec![1]);
        assert_eq!(binomial_children(0, 3), vec![1, 2]);
        assert_eq!(binomial_children(1, 3), Vec::<usize>::new());
    }

    #[test]
    fn parent_inverts_children_for_every_slot() {
        for size in 2..40usize {
            for slot in 0..size {
                for child in binomial_children(slot, size) {
                    assert_eq!(
                        binomial_parent(child),
                        slot,
                        "child {child} of {slot} in a {size}-slot tree"
                    );
                }
            }
            // Every non-root slot is reached exactly once.
            let mut seen = vec![false; size];
            seen[0] = true;
            let mut frontier = vec![0usize];
            while let Some(slot) = frontier.pop() {
                for child in binomial_children(slot, size) {
                    assert!(!seen[child], "slot {child} fed twice in a {size}-slot tree");
                    seen[child] = true;
                    frontier.push(child);
                }
            }
            assert!(seen.iter().all(|&s| s), "unreached slot in a {size}-slot tree");
        }
    }

    #[test]
    fn head_link_copies_grow_logarithmically() {
        // The source's copy count is ⌈log₂(k+1)⌉ — strictly below k (the
        // star) as soon as k ≥ 2, and 2× fewer at k = 8.
        for k in 2..=64usize {
            let copies = binomial_children(0, k + 1).len();
            assert!(copies <= k);
            assert_eq!(copies, (usize::BITS - k.leading_zeros()) as usize);
        }
        assert_eq!(binomial_children(0, 9).len(), 4);
    }

    #[test]
    fn orphan_closure_counts_dependent_subtrees() {
        // p = 9; slot 1 orphaned ⇒ 3, 5, 7 depend on it.
        let pending: BTreeMap<usize, ()> = (1..9).map(|s| (s, ())).collect();
        let orphans: BTreeSet<usize> = [1].into_iter().collect();
        assert_eq!(orphan_closure(&orphans, &pending, 9), 4);
        // With the rest delivered, the closure covers all of pending.
        let pending: BTreeMap<usize, ()> = [1, 3, 5, 7].into_iter().map(|s| (s, ())).collect();
        assert_eq!(orphan_closure(&orphans, &pending, 9), 4);
    }
}
