//! The cluster device: the head-node runtime that owns the worker threads,
//! schedules target regions, and drives the event system.
//!
//! This is the real (threaded) execution mode: every worker node is an OS
//! thread running [`crate::worker::worker_main`], messages travel through
//! the `ompc-mpi` substrate, and kernels execute real Rust code. The
//! simulated mode used for the large-scale benchmark figures lives in
//! [`crate::sim_runtime`] and reuses the same scheduler and data-manager
//! logic.

use crate::buffer::BufferRegistry;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, HEAD_NODE};
use crate::event::EventSystem;
use crate::kernel::{Kernel, KernelArgs, KernelRegistry};
use crate::model;
use crate::region::TargetRegion;
use crate::stats::{DeviceReport, RegionReport};
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, KernelId, MapType, NodeId, OmpcError, OmpcResult, TaskId};
use crate::worker::worker_main;
use ompc_mpi::World;
use ompc_sched::Platform;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A host-task body: runs on the head node with access to the host buffers.
pub type HostFn = Arc<dyn Fn(&BufferRegistry) + Send + Sync>;

/// The OMPC cluster device.
///
/// ```
/// use ompc_core::cluster::ClusterDevice;
/// use ompc_core::types::Dependence;
///
/// let mut device = ClusterDevice::spawn(2);
/// let scale = device.register_kernel_fn("scale", 1e-6, |args| {
///     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 2.0).collect();
///     args.set_f64s(0, &v);
/// });
/// let mut region = device.target_region();
/// let a = region.map_to_f64s(&[1.0, 2.0, 3.0]);
/// region.target(scale, vec![Dependence::inout(a)]);
/// region.map_from(a);
/// region.run().unwrap();
/// assert_eq!(device.buffer_f64s(a).unwrap(), vec![2.0, 4.0, 6.0]);
/// device.shutdown();
/// ```
pub struct ClusterDevice {
    #[allow(dead_code)]
    world: World,
    kernels: Arc<KernelRegistry>,
    buffers: Arc<BufferRegistry>,
    events: Arc<EventSystem>,
    dm: Arc<Mutex<DataManager>>,
    config: OmpcConfig,
    num_workers: usize,
    worker_handles: Vec<JoinHandle<()>>,
    report: Mutex<DeviceReport>,
    shut_down: bool,
}

impl ClusterDevice {
    /// Spawn a cluster with `num_workers` worker nodes (plus the implicit
    /// head node) using the default configuration.
    pub fn spawn(num_workers: usize) -> Self {
        Self::with_config(num_workers, OmpcConfig::small())
    }

    /// Spawn a cluster with an explicit configuration.
    pub fn with_config(num_workers: usize, config: OmpcConfig) -> Self {
        assert!(num_workers > 0, "the cluster needs at least one worker node");
        let start = Instant::now();
        let world = World::with_communicators(num_workers + 1, config.num_communicators);
        let kernels = Arc::new(KernelRegistry::new());
        let mut worker_handles = Vec::with_capacity(num_workers);
        for node in 1..=num_workers {
            let comm = world.communicator(node);
            let kernels = Arc::clone(&kernels);
            let handler_threads = config.event_handler_threads;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("ompc-worker-{node}"))
                    .spawn(move || worker_main(comm, kernels, handler_threads))
                    .expect("failed to spawn worker node thread"),
            );
        }
        let events = Arc::new(EventSystem::new(world.communicator(HEAD_NODE)));
        let startup_time = start.elapsed();
        Self {
            world,
            kernels,
            buffers: Arc::new(BufferRegistry::new()),
            events,
            dm: Arc::new(Mutex::new(DataManager::new())),
            config,
            num_workers,
            worker_handles,
            report: Mutex::new(DeviceReport { startup_time, ..DeviceReport::default() }),
            shut_down: false,
        }
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The runtime configuration.
    pub fn config(&self) -> &OmpcConfig {
        &self.config
    }

    /// Register a kernel object.
    pub fn register_kernel(&self, kernel: Arc<dyn Kernel>) -> KernelId {
        self.kernels.register(kernel)
    }

    /// Register a closure as a kernel with a cost hint in seconds.
    pub fn register_kernel_fn<F>(&self, name: &str, cost: f64, f: F) -> KernelId
    where
        F: Fn(&mut KernelArgs<'_>) + Send + Sync + 'static,
    {
        self.kernels.register_fn(name, cost, f)
    }

    /// Register host data as a mapped buffer without scheduling any data
    /// movement (movement happens through a region's enter/exit data).
    pub fn map_buffer(&self, data: Vec<u8>) -> BufferId {
        self.buffers.register(data)
    }

    /// Registered cost hint of a kernel (seconds), used by regions to feed
    /// the static scheduler.
    pub fn kernel_cost(&self, id: KernelId) -> f64 {
        self.kernels.get(id).map(|k| k.cost_hint()).unwrap_or(1e-4)
    }

    /// Current host contents of a buffer.
    pub fn buffer_data(&self, id: BufferId) -> OmpcResult<Vec<u8>> {
        self.buffers.get(id)
    }

    /// Current host contents of a buffer interpreted as `f64`s.
    pub fn buffer_f64s(&self, id: BufferId) -> OmpcResult<Vec<f64>> {
        let data = self.buffers.get(id)?;
        ompc_mpi::typed::bytes_to_f64s(&data)
            .map_err(|e| OmpcError::Internal(e.to_string()))
    }

    /// The host buffer registry (used by host tasks and examples).
    pub fn buffers(&self) -> &Arc<BufferRegistry> {
        &self.buffers
    }

    /// Open a new target region on this device.
    pub fn target_region(&self) -> TargetRegion<'_> {
        TargetRegion::new(self)
    }

    /// Timing report accumulated over the device lifetime.
    pub fn report(&self) -> DeviceReport {
        self.report.lock().clone()
    }

    /// Shut the cluster down: workers receive shutdown events and their
    /// threads are joined. Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        let start = Instant::now();
        for node in 1..=self.num_workers {
            let _ = self.events.shutdown(node);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.report.lock().shutdown_time = start.elapsed();
    }

    /// Execute a region graph. Called by [`TargetRegion::run`].
    pub(crate) fn execute_region(
        &self,
        graph: RegionGraph,
        host_fns: HashMap<usize, HostFn>,
    ) -> OmpcResult<RegionReport> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        if graph.is_empty() {
            return Ok(RegionReport::default());
        }
        let sched_start = Instant::now();
        let assignment = self.assign_nodes(&graph);
        // Register every referenced buffer with the data manager (host copy
        // lives on the head node until data movement says otherwise).
        {
            let mut dm = self.dm.lock();
            for task in graph.tasks() {
                for dep in &task.dependences {
                    if !dm.is_registered(dep.buffer) {
                        dm.register_host_buffer(dep.buffer);
                    }
                }
            }
        }
        let schedule_time = sched_start.elapsed();

        let events_before = self.events.counters().events.load(Ordering::Relaxed);
        let data_before = self.events.counters().data_events.load(Ordering::Relaxed);
        let bytes_before = self.events.counters().bytes_moved.load(Ordering::Relaxed);

        let exec_start = Instant::now();
        self.dispatch(&graph, &host_fns, &assignment)?;
        let execution_time = exec_start.elapsed();

        let report = RegionReport {
            schedule_time,
            execution_time,
            tasks_executed: graph.len(),
            target_tasks: graph.tasks().iter().filter(|t| t.kind.is_target()).count(),
            data_events: (self.events.counters().data_events.load(Ordering::Relaxed)
                - data_before) as usize,
            bytes_moved: self.events.counters().bytes_moved.load(Ordering::Relaxed)
                - bytes_before,
        };
        let _ = events_before;
        self.report.lock().regions.push(report.clone());
        Ok(report)
    }

    /// Run the static scheduler and derive the node assignment of every
    /// task: target tasks go where HEFT put them, data tasks follow their
    /// consumer/producer (paper §4.4), and host tasks stay on the head.
    fn assign_nodes(&self, graph: &RegionGraph) -> Vec<NodeId> {
        let sched_graph = model::region_to_sched(graph, &self.buffers);
        let platform = Platform::cluster(self.num_workers);
        let schedule = self.config.scheduler.build().schedule(&sched_graph, &platform);
        let mut assignment: Vec<NodeId> =
            (0..graph.len()).map(|t| schedule.proc_of(t) + 1).collect();
        for task in graph.tasks() {
            match task.kind {
                TaskKind::EnterData { .. } => {
                    if let Some(&succ) = graph
                        .successors(task.id)
                        .iter()
                        .find(|&&s| graph.task(s).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[succ.0];
                    }
                }
                TaskKind::ExitData { .. } => {
                    if let Some(&pred) = graph
                        .predecessors(task.id)
                        .iter()
                        .find(|&&p| graph.task(p).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[pred.0];
                    }
                }
                TaskKind::Host { .. } => assignment[task.id.0] = HEAD_NODE,
                TaskKind::Target { .. } => {}
            }
        }
        assignment
    }

    /// Dynamic dispatch of the scheduled graph: ready tasks are handed to a
    /// pool of head worker threads (one blocked thread per in-flight target
    /// region, as in LLVM's libomptarget), and retire as their events
    /// complete.
    fn dispatch(
        &self,
        graph: &RegionGraph,
        host_fns: &HashMap<usize, HostFn>,
        assignment: &[NodeId],
    ) -> OmpcResult<()> {
        let total = graph.len();
        let limit = if self.config.enforce_in_flight_limit {
            self.config.head_worker_threads.max(1)
        } else {
            usize::MAX
        };
        let mut remaining_preds: Vec<usize> =
            (0..total).map(|t| graph.predecessors(TaskId(t)).len()).collect();
        let mut ready: VecDeque<TaskId> = graph.roots().into();
        let mut in_flight = 0usize;
        let mut completed = 0usize;

        let (task_tx, task_rx) = crossbeam::channel::unbounded::<TaskId>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<(TaskId, OmpcResult<()>)>();

        let result: OmpcResult<()> = std::thread::scope(|scope| {
            for i in 0..self.config.head_worker_threads.max(1) {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("ompc-head-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Ok(tid) = task_rx.recv() {
                            let res = self.run_task(graph, host_fns, assignment, tid);
                            if done_tx.send((tid, res)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn head worker thread");
            }
            drop(task_rx);
            drop(done_tx);

            let mut outcome: OmpcResult<()> = Ok(());
            while completed < total {
                while in_flight < limit {
                    let Some(t) = ready.pop_front() else { break };
                    task_tx.send(t).map_err(|_| {
                        OmpcError::Internal("head worker pool terminated early".to_string())
                    })?;
                    in_flight += 1;
                }
                match done_rx.recv() {
                    Ok((tid, res)) => {
                        in_flight -= 1;
                        completed += 1;
                        if let Err(e) = res {
                            outcome = Err(e);
                            break;
                        }
                        for &succ in graph.successors(tid) {
                            remaining_preds[succ.0] -= 1;
                            if remaining_preds[succ.0] == 0 {
                                ready.push_back(succ);
                            }
                        }
                    }
                    Err(_) => {
                        outcome =
                            Err(OmpcError::Internal("head worker pool disappeared".to_string()));
                        break;
                    }
                }
            }
            drop(task_tx);
            outcome
        });
        result
    }

    /// Execute one task: plan and perform its data movement through the
    /// data manager, then run the kernel (or the host body, or the data
    /// movement itself for enter/exit data tasks).
    fn run_task(
        &self,
        graph: &RegionGraph,
        host_fns: &HashMap<usize, HostFn>,
        assignment: &[NodeId],
        tid: TaskId,
    ) -> OmpcResult<()> {
        let task = graph.task(tid);
        let node = assignment[tid.0];
        match &task.kind {
            TaskKind::EnterData { buffer, map } => {
                if node == HEAD_NODE {
                    return Ok(());
                }
                match map {
                    MapType::To | MapType::ToFrom => {
                        let data = self.buffers.get(*buffer)?;
                        self.events.submit(node, *buffer, data)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::Alloc => {
                        let size = self.buffers.size_of(*buffer)?;
                        self.events.alloc(node, *buffer, size)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::From | MapType::Release => {}
                }
                Ok(())
            }
            TaskKind::Target { kernel, .. } => {
                let buffer_list: Vec<BufferId> =
                    task.dependences.iter().map(|d| d.buffer).collect();
                for dep in &task.dependences {
                    if dep.dep_type.reads() {
                        let plan = self.dm.lock().plan_input(dep.buffer, node);
                        if let Some(plan) = plan {
                            if plan.from == HEAD_NODE {
                                let data = self.buffers.get(dep.buffer)?;
                                self.events.submit(node, dep.buffer, data)?;
                            } else {
                                self.events.exchange(plan.from, node, dep.buffer)?;
                            }
                        }
                    } else {
                        // Write-only output: make sure storage exists on the
                        // executing node.
                        let present = self.dm.lock().is_present(dep.buffer, node);
                        if !present {
                            let size = self.buffers.size_of(dep.buffer)?;
                            self.events.alloc(node, dep.buffer, size)?;
                            self.dm.lock().record_replica(dep.buffer, node);
                        }
                    }
                }
                self.events.execute(node, *kernel, buffer_list)?;
                for dep in &task.dependences {
                    if dep.dep_type.writes() {
                        let stale = self.dm.lock().record_write(dep.buffer, node);
                        for stale_node in stale {
                            if stale_node != HEAD_NODE {
                                self.events.delete(stale_node, dep.buffer)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            TaskKind::ExitData { buffer, map } => {
                if map.copies_from_device() {
                    let from = self.dm.lock().plan_retrieve(*buffer);
                    if let Some(from) = from {
                        let data = self.events.retrieve(from, *buffer)?;
                        self.buffers.set(*buffer, data)?;
                    }
                }
                // Exit data always releases the device copies.
                let holders = self.dm.lock().remove(*buffer);
                for holder in holders {
                    if holder != HEAD_NODE {
                        self.events.delete(holder, *buffer)?;
                    }
                }
                Ok(())
            }
            TaskKind::Host { .. } => {
                if let Some(f) = host_fns.get(&tid.0) {
                    f(&self.buffers);
                }
                Ok(())
            }
        }
    }
}

impl Drop for ClusterDevice {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dependence;

    #[test]
    fn listing1_chain_runs_end_to_end() {
        // The paper's Listing 1: foo then bar on vector A, with foo and bar
        // potentially on different worker nodes and A forwarded between
        // them worker-to-worker.
        let mut device = ClusterDevice::spawn(2);
        let foo = device.register_kernel_fn("foo", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let bar = device.register_kernel_fn("bar", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
            args.set_f64s(0, &v);
        });

        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
        region.target(foo, vec![Dependence::inout(a)]);
        region.target(bar, vec![Dependence::inout(a)]);
        region.map_from(a);
        let report = region.run().unwrap();
        assert_eq!(report.target_tasks, 2);
        assert!(report.tasks_executed >= 4);
        assert!(report.bytes_moved > 0);

        assert_eq!(device.buffer_f64s(a).unwrap(), vec![20.0, 30.0, 40.0, 50.0]);
        device.shutdown();
        let dev_report = device.report();
        assert_eq!(dev_report.regions.len(), 1);
    }

    #[test]
    fn independent_tasks_spread_across_workers() {
        let mut device = ClusterDevice::spawn(3);
        let bump = device.register_kernel_fn("bump", 1e-4, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = device.target_region();
        let buffers: Vec<BufferId> =
            (0..6).map(|i| region.map_to_f64s(&[i as f64])).collect();
        for &b in &buffers {
            region.target(bump, vec![Dependence::inout(b)]);
        }
        for &b in &buffers {
            region.map_from(b);
        }
        region.run().unwrap();
        for (i, &b) in buffers.iter().enumerate() {
            assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
        }
        device.shutdown();
    }

    #[test]
    fn host_tasks_run_on_the_head_node() {
        let device = ClusterDevice::spawn(1);
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[5.0]);
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        region.host_task(vec![Dependence::input(a)], move |_| {
            flag2.store(true, Ordering::SeqCst);
        });
        region.run().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_region_is_a_noop() {
        let device = ClusterDevice::spawn(1);
        let region = device.target_region();
        let report = region.run().unwrap();
        assert_eq!(report.tasks_executed, 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_regions_fail_afterwards() {
        let mut device = ClusterDevice::spawn(1);
        device.shutdown();
        device.shutdown();
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0]);
        let k = device.register_kernel_fn("noop", 1e-6, |_| {});
        region.target(k, vec![Dependence::inout(a)]);
        assert_eq!(region.run().unwrap_err(), OmpcError::ShutDown);
    }
}
