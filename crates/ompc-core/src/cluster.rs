//! The cluster device: the head-node runtime that owns the worker threads,
//! schedules target regions, and drives the event system.
//!
//! This is the real (threaded) execution mode: every worker node is an OS
//! thread running [`crate::worker::worker_main`], messages travel through
//! the `ompc-mpi` substrate, and kernels execute real Rust code. The
//! simulated mode used for the large-scale benchmark figures lives in
//! [`crate::sim_runtime`] and reuses the same scheduler and data-manager
//! logic.

use crate::buffer::BufferRegistry;
use crate::config::BackendKind;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, HEAD_NODE};
use crate::event::EventSystem;
use crate::kernel::{Kernel, KernelArgs, KernelRegistry};
use crate::model::WorkloadGraph;
use crate::protocol::COMPLETION_TAG;
use crate::region::TargetRegion;
use crate::runtime::fault::{FaultPlan, FaultState};
use crate::runtime::telemetry::{monotonic_us, Span, SpanPhase, Telemetry};
use crate::runtime::{
    HeadWorkerPool, MpiBackend, ResidencyMap, RunRecord, RuntimeCore, RuntimePlan, ThreadedBackend,
};
use crate::stats::{DeviceReport, RegionReport};
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, Dependence, KernelId, NodeId, OmpcError, OmpcResult};
use crate::worker::worker_main;
use ompc_mpi::World;
use ompc_sched::Platform;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A host-task body: runs on the head node with access to the host buffers.
pub type HostFn = Arc<dyn Fn(&BufferRegistry) + Send + Sync>;

/// Compatibility key of a parked worker pool: only a device asking for the
/// same worker count, communicator fan-out, handler threads, and reply
/// timeout can adopt it — `(num_workers, num_communicators,
/// event_handler_threads, event_reply_timeout_ms)`.
type WarmKey = (usize, u32, usize, Option<u64>);

/// A worker pool kept alive between device lifetimes: the communication
/// world, the shared kernel table (cleared on adoption — the fat binary is
/// re-populated by the new lifetime's registrations), the event system (its
/// tag counter continues, keeping tags device-unique across lifetimes), and
/// the gate-thread handles.
struct WarmWorkers {
    world: World,
    kernels: Arc<KernelRegistry>,
    events: Arc<EventSystem>,
    worker_handles: Vec<JoinHandle<()>>,
}

/// Parked worker pools, by compatibility key. Fig. 7(a) attributes ~80% of
/// small-run overhead to cluster start-up; with
/// [`OmpcConfig::warm_worker_keepalive`] a shut-down device parks its
/// healthy workers here instead of joining them, and the next compatible
/// device adopts them for a near-zero start-up. Parked gate threads persist
/// until adopted or process exit.
static WARM_WORKERS: Mutex<Vec<(WarmKey, WarmWorkers)>> = Mutex::new(Vec::new());

fn warm_key(num_workers: usize, config: &OmpcConfig) -> WarmKey {
    (
        num_workers,
        config.num_communicators,
        config.event_handler_threads,
        config.event_reply_timeout_ms,
    )
}

fn adopt_warm_workers(key: &WarmKey) -> Option<WarmWorkers> {
    let mut pool = WARM_WORKERS.lock();
    let idx = pool.iter().position(|(k, _)| k == key)?;
    Some(pool.swap_remove(idx).1)
}

/// The OMPC cluster device.
///
/// ```
/// use ompc_core::cluster::ClusterDevice;
/// use ompc_core::types::Dependence;
///
/// let mut device = ClusterDevice::spawn(2);
/// let scale = device.register_kernel_fn("scale", 1e-6, |args| {
///     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 2.0).collect();
///     args.set_f64s(0, &v);
/// });
/// let mut region = device.target_region();
/// let a = region.map_to_f64s(&[1.0, 2.0, 3.0]);
/// region.target(scale, vec![Dependence::inout(a)]);
/// region.map_from(a);
/// region.run().unwrap();
/// assert_eq!(device.buffer_f64s(a).unwrap(), vec![2.0, 4.0, 6.0]);
/// device.shutdown();
/// ```
pub struct ClusterDevice {
    /// The communication world; `None` only after its workers were parked
    /// for adoption by a later device lifetime.
    world: Option<World>,
    kernels: Arc<KernelRegistry>,
    buffers: Arc<BufferRegistry>,
    events: Arc<EventSystem>,
    dm: Arc<Mutex<DataManager>>,
    config: OmpcConfig,
    num_workers: usize,
    worker_handles: Vec<JoinHandle<()>>,
    /// Long-lived head worker pool, sized lazily per region
    /// (`min(head_worker_threads, window, tasks)`, growing to the largest
    /// region seen) and reused across region executions; drained on
    /// shutdown/drop.
    pool: HeadWorkerPool,
    report: Mutex<DeviceReport>,
    /// Decision record of the most recent region / workload execution,
    /// including any failure and recovery events.
    last_record: Mutex<Option<RunRecord>>,
    /// Lazily registered no-op kernel shared by every `run_workload` call.
    workload_kernel: std::sync::OnceLock<KernelId>,
    /// Device-owned span recorder, built from [`OmpcConfig::telemetry`].
    /// Spans accumulate here during a run and are drained into that run's
    /// [`RunRecord::spans`]; at the Off level it never reads a clock.
    telemetry: Arc<Telemetry>,
    shut_down: bool,
}

impl ClusterDevice {
    /// Spawn a cluster with `num_workers` worker nodes (plus the implicit
    /// head node) using the default configuration.
    pub fn spawn(num_workers: usize) -> Self {
        Self::with_config(num_workers, OmpcConfig::small())
    }

    /// Spawn a cluster with an explicit configuration. With
    /// [`OmpcConfig::warm_worker_keepalive`], a compatible worker pool
    /// parked by an earlier lifetime's [`ClusterDevice::shutdown`] is
    /// adopted instead of spawning fresh workers — the dominant start-up
    /// cost of small runs (Fig. 7(a)) drops to a registry reset.
    pub fn with_config(num_workers: usize, config: OmpcConfig) -> Self {
        assert!(num_workers > 0, "the cluster needs at least one worker node");
        let start = Instant::now();
        let adopted = if config.warm_worker_keepalive {
            adopt_warm_workers(&warm_key(num_workers, &config))
        } else {
            None
        };
        let (world, kernels, events, worker_handles) = match adopted {
            Some(warm) => {
                // The previous lifetime's kernel table is stale; clearing
                // it restarts kernel ids from 0, exactly as a cold start
                // would assign them. (Device memories were already cleared
                // by the reset events at parking time.)
                warm.kernels.clear();
                (warm.world, warm.kernels, warm.events, warm.worker_handles)
            }
            None => {
                let world = World::with_communicators(num_workers + 1, config.num_communicators);
                let kernels = Arc::new(KernelRegistry::new());
                let mut worker_handles = Vec::with_capacity(num_workers);
                for node in 1..=num_workers {
                    let comm = world.communicator(node);
                    let kernels = Arc::clone(&kernels);
                    let handler_threads = config.event_handler_threads;
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("ompc-worker-{node}"))
                            .spawn(move || worker_main(comm, kernels, handler_threads))
                            .expect("failed to spawn worker node thread"),
                    );
                }
                let events = Arc::new(EventSystem::with_reply_timeout(
                    world.communicator(HEAD_NODE),
                    config.event_reply_timeout_ms.map(std::time::Duration::from_millis),
                ));
                (world, kernels, events, worker_handles)
            }
        };
        let startup_time = start.elapsed();
        let pool = HeadWorkerPool::with_idle_timeout(
            config.pool_idle_timeout_ms.map(std::time::Duration::from_millis),
        );
        let telemetry = Telemetry::new(config.telemetry);
        Self {
            world: Some(world),
            kernels,
            buffers: Arc::new(BufferRegistry::new()),
            events,
            dm: Arc::new(Mutex::new(DataManager::new())),
            config,
            num_workers,
            worker_handles,
            pool,
            report: Mutex::new(DeviceReport { startup_time, ..DeviceReport::default() }),
            last_record: Mutex::new(None),
            workload_kernel: std::sync::OnceLock::new(),
            telemetry,
            shut_down: false,
        }
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of threads currently alive in the long-lived head worker
    /// pool. The pool grows lazily to `min(head_worker_threads, window,
    /// tasks)` of the largest region executed so far and is reused across
    /// regions — repeated small regions never pay per-region spawn/join
    /// churn. With [`OmpcConfig::pool_idle_timeout_ms`] set, idle threads
    /// exit after the timeout, so this count also *drops* once the device
    /// has been quiet. Always zero under
    /// [`crate::config::BackendKind::Mpi`], which has no head pool.
    pub fn pool_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &OmpcConfig {
        &self.config
    }

    /// Register a kernel object.
    pub fn register_kernel(&self, kernel: Arc<dyn Kernel>) -> KernelId {
        self.kernels.register(kernel)
    }

    /// Register a closure as a kernel with a cost hint in seconds.
    pub fn register_kernel_fn<F>(&self, name: &str, cost: f64, f: F) -> KernelId
    where
        F: Fn(&mut KernelArgs<'_>) + Send + Sync + 'static,
    {
        self.kernels.register_fn(name, cost, f)
    }

    /// Register host data as a mapped buffer without scheduling any data
    /// movement (movement happens through a region's enter/exit data).
    pub fn map_buffer(&self, data: Vec<u8>) -> BufferId {
        self.buffers.register(data)
    }

    /// Device-level unstructured `target enter data`: register `data` as a
    /// mapped buffer that is **resident** across region executions. No
    /// bytes move yet — the first region task that reads the buffer pulls
    /// it onto its worker, and from then on it stays there: later regions
    /// generate no enter-data transfer, a region-level `map(from:)`
    /// flushes it to the host without dropping the device copies, and only
    /// [`ClusterDevice::exit_data`] (or a region-level `map(release:)`)
    /// ends the mapping.
    ///
    /// ```
    /// use ompc_core::cluster::ClusterDevice;
    /// use ompc_core::types::Dependence;
    ///
    /// let mut device = ClusterDevice::spawn(1);
    /// let bump = device.register_kernel_fn("bump", 1e-6, |args| {
    ///     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
    ///     args.set_f64s(0, &v);
    /// });
    /// let a = device.enter_data_f64s(&[1.0, 2.0]);
    /// for _ in 0..3 {
    ///     let mut region = device.target_region();
    ///     region.target(bump, vec![Dependence::inout(a)]);
    ///     region.run().unwrap();
    /// }
    /// // The host copy is flushed lazily: reading the buffer retrieves
    /// // the device-resident latest version.
    /// assert_eq!(device.buffer_f64s(a).unwrap(), vec![4.0, 5.0]);
    /// // Ending the mapping releases the device copies.
    /// device.exit_data(a).unwrap();
    /// device.shutdown();
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the device has been shut down — the mapping could never
    /// be used, so the misuse is reported here rather than as a confusing
    /// error from a later region.
    pub fn enter_data(&self, data: Vec<u8>) -> BufferId {
        assert!(!self.shut_down, "enter_data on a shut-down ClusterDevice");
        let bytes = data.len() as u64;
        let buffer = self.buffers.register(data);
        let mut dm = self.dm.lock();
        dm.register_host_buffer(buffer, bytes);
        dm.mark_resident(buffer);
        buffer
    }

    /// Convenience: [`ClusterDevice::enter_data`] for a slice of `f64`s.
    pub fn enter_data_f64s(&self, values: &[f64]) -> BufferId {
        self.enter_data(ompc_mpi::typed::f64s_to_bytes(values))
    }

    /// Device-level unstructured `target exit data map(from:)`: flush the
    /// buffer's latest contents back to the host (a no-op when the host
    /// already holds the latest version) and release every device copy,
    /// ending the mapping. The host copy stays readable through
    /// [`ClusterDevice::buffer_data`].
    pub fn exit_data(&self, buffer: BufferId) -> OmpcResult<()> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        self.flush_to_host(buffer)?;
        crate::runtime::release_device_copies(&self.dm, &self.events, buffer)
    }

    /// Bring the host copy of `buffer` up to date when its latest version
    /// is resident on a worker (the lazy host flush of the residency
    /// protocol). Device copies stay mapped — a flush is a read. Nothing
    /// is committed until the bytes land: a failed retrieval surfaces as
    /// an error and the next read retries from the then-latest holder
    /// instead of silently trusting a stale host copy.
    fn flush_to_host(&self, buffer: BufferId) -> OmpcResult<()> {
        let from = {
            let dm = self.dm.lock();
            if !dm.is_registered(buffer) {
                return Ok(());
            }
            dm.retrieve_source(buffer)
        };
        if let Some(from) = from {
            let t0 = self.telemetry.start();
            let data = self.events.retrieve(from, buffer)?;
            let bytes = data.len() as u64;
            if self.telemetry.spans_enabled() {
                self.telemetry.record(
                    Span::new(SpanPhase::HostFlush, HEAD_NODE, t0, monotonic_us())
                        .bytes(bytes)
                        .from(from)
                        .detail("lazy host flush"),
                );
            }
            self.buffers.set(buffer, data)?;
            let mut dm = self.dm.lock();
            // A kernel may have resized the device copy; the observed size
            // keeps this and every later transfer-log entry truthful.
            dm.observe_size(buffer, bytes);
            dm.record_retrieve(buffer);
        }
        Ok(())
    }

    /// Drain the transfers planned *outside* any region execution — lazy
    /// host flushes ([`ClusterDevice::buffer_data`]) and device-level
    /// [`ClusterDevice::exit_data`] retrievals. Transfers planned during a
    /// region run are attributed to that run's
    /// [`RunRecord::transfers`](crate::runtime::RunRecord::transfers)
    /// instead and never appear here; undrained entries are discarded when
    /// the next region begins.
    pub fn take_unattributed_transfers(&self) -> Vec<crate::data_manager::TransferRecord> {
        self.dm.lock().take_transfer_log()
    }

    /// The current region epoch: 0 before any region has executed,
    /// incremented once per region execution. Together with
    /// [`ClusterDevice::buffer_epoch`] this makes cross-region residency
    /// observable — a buffer whose epoch is older than the device's has
    /// been carried across regions, not re-registered.
    pub fn region_epoch(&self) -> u64 {
        self.dm.lock().epoch()
    }

    /// The region epoch that last registered or wrote `buffer` (`None`
    /// when the buffer is not currently mapped).
    pub fn buffer_epoch(&self, buffer: BufferId) -> Option<u64> {
        self.dm.lock().buffer_epoch(buffer)
    }

    /// Registered cost hint of a kernel (seconds), used by regions to feed
    /// the static scheduler.
    pub fn kernel_cost(&self, id: KernelId) -> f64 {
        self.kernels.get(id).map(|k| k.cost_hint()).unwrap_or(1e-4)
    }

    /// Current contents of a buffer, flushed lazily: when the latest
    /// version is resident on a worker node (a cross-region mapping whose
    /// data was produced on the cluster and never exited), it is retrieved
    /// to the host first, so the returned bytes are never stale. The
    /// device copies stay mapped. After [`ClusterDevice::shutdown`] the
    /// host copy is returned as-is.
    pub fn buffer_data(&self, id: BufferId) -> OmpcResult<Vec<u8>> {
        if !self.shut_down {
            self.flush_to_host(id)?;
        }
        self.buffers.get(id)
    }

    /// [`ClusterDevice::buffer_data`] interpreted as `f64`s (flushed
    /// lazily the same way).
    pub fn buffer_f64s(&self, id: BufferId) -> OmpcResult<Vec<f64>> {
        let data = self.buffer_data(id)?;
        ompc_mpi::typed::bytes_to_f64s(&data).map_err(|e| OmpcError::Internal(e.to_string()))
    }

    /// The host buffer registry (used by host tasks and examples).
    pub fn buffers(&self) -> &Arc<BufferRegistry> {
        &self.buffers
    }

    /// Open a new target region on this device.
    pub fn target_region(&self) -> TargetRegion<'_> {
        TargetRegion::new(self)
    }

    /// Timing report accumulated over the device lifetime.
    pub fn report(&self) -> DeviceReport {
        self.report.lock().clone()
    }

    /// Decision record of the most recent region / workload execution:
    /// assignment, dispatch and completion orders, and — when a
    /// [`crate::runtime::fault::FaultPlan`] was active — the failure
    /// detection, re-execution, and recovery events.
    pub fn last_run_record(&self) -> Option<RunRecord> {
        self.last_record.lock().clone()
    }

    /// Worker nodes not declared failed by the fault subsystem, ascending.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        let dm = self.dm.lock();
        (1..=self.num_workers).filter(|&n| !dm.is_failed(n)).collect()
    }

    /// Shut the cluster down: the head worker pool drains (in-flight jobs
    /// finish, pool threads are joined), then workers receive shutdown
    /// events and their threads are joined. With
    /// [`OmpcConfig::warm_worker_keepalive`], a healthy worker pool is
    /// *parked* for the next compatible device lifetime instead of joined:
    /// every device memory is cleared by a reset round-trip and the event
    /// counters restart, so adoption is indistinguishable from a cold start
    /// except for the missing spawn cost. Pools that saw a node failure are
    /// never parked. Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        let start = Instant::now();
        // Drain the pool before the workers go away: pool jobs talk to the
        // workers through the event system.
        self.pool.drain();
        if self.config.warm_worker_keepalive && self.try_park_workers() {
            self.report.lock().shutdown_time = start.elapsed();
            return;
        }
        for node in 1..=self.num_workers {
            let _ = self.events.shutdown(node);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.report.lock().shutdown_time = start.elapsed();
    }

    /// Try to park this device's workers for adoption by a later lifetime.
    /// Returns `false` (caller falls back to a cold shutdown) when any node
    /// failed, any reset round-trip fails, or the world was already taken.
    fn try_park_workers(&mut self) -> bool {
        {
            let dm = self.dm.lock();
            if (1..=self.num_workers).any(|n| dm.is_failed(n)) {
                return false;
            }
        }
        // Clear every worker's device memory now, synchronously: an error
        // (a dying handler, a wedged gate) disqualifies the pool.
        for node in 1..=self.num_workers {
            if self.events.reset(node).is_err() {
                return false;
            }
        }
        let Some(world) = self.world.take() else { return false };
        // A completion notice of an already-drained reply must not leak
        // into the adopting lifetime as a stale message.
        while self.events.communicator().try_recv(None, Some(COMPLETION_TAG)).is_some() {}
        self.events.reset_counters();
        WARM_WORKERS.lock().push((
            warm_key(self.num_workers, &self.config),
            WarmWorkers {
                world,
                kernels: Arc::clone(&self.kernels),
                events: Arc::clone(&self.events),
                worker_handles: self.worker_handles.drain(..).collect(),
            },
        ));
        true
    }

    /// Execute a region graph through the unified execution core. Called by
    /// [`TargetRegion::run`].
    pub(crate) fn execute_region(
        &self,
        graph: RegionGraph,
        host_fns: HashMap<usize, HostFn>,
    ) -> OmpcResult<RegionReport> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        if graph.is_empty() {
            return Ok(RegionReport::default());
        }
        let graph = Arc::new(graph);
        let sched_start = Instant::now();
        let sched_t0 = self.telemetry.start();
        // Plan over the workers that are still alive: a node declared
        // failed in an earlier region stays excommunicated for the rest of
        // the device lifetime.
        let alive = self.alive_workers();
        if alive.is_empty() {
            return Err(OmpcError::InvalidConfig(
                "every worker node has failed; no survivors to execute the region".to_string(),
            ));
        }
        // Open a new region epoch, register every referenced buffer that
        // is not already resident from an earlier region (host copy lives
        // on the head node until data movement says otherwise), mark
        // keep-resident mappings, and snapshot the residency view the
        // planner pins against.
        let residency: ResidencyMap = {
            let mut dm = self.dm.lock();
            dm.begin_region();
            for task in graph.tasks() {
                for dep in &task.dependences {
                    if !dm.is_registered(dep.buffer) {
                        let bytes = self.buffers.size_of(dep.buffer).unwrap_or(0) as u64;
                        dm.register_host_buffer(dep.buffer, bytes);
                    }
                }
                if let TaskKind::EnterData { buffer, map } = task.kind {
                    if map.keeps_resident() {
                        dm.mark_resident(buffer);
                    }
                }
            }
            dm.latest_on_workers()
        };
        let plan = RuntimePlan {
            assignment: RuntimePlan::region_assignment_on(
                &graph,
                &self.buffers,
                &Platform::cluster(alive.len()),
                &self.config,
                &alive,
                &residency,
            ),
            window: self.config.inflight_window(),
        };
        let schedule_time = sched_start.elapsed();
        if self.telemetry.spans_enabled() {
            self.telemetry.record(
                Span::new(SpanPhase::Schedule, HEAD_NODE, sched_t0, monotonic_us())
                    .detail(format!("{} task(s), {} alive worker(s)", graph.len(), alive.len())),
            );
        }

        let data_before = self.events.counters().data_events.load(Ordering::Relaxed);
        let bytes_before = self.events.counters().bytes_moved.load(Ordering::Relaxed);

        let exec_start = Instant::now();
        let record = self.execute_planned(Arc::clone(&graph), host_fns, &plan)?;
        let execution_time = exec_start.elapsed();

        let report = RegionReport {
            schedule_time,
            execution_time,
            tasks_executed: graph.len(),
            target_tasks: graph.tasks().iter().filter(|t| t.kind.is_target()).count(),
            peak_in_flight: record.peak_in_flight,
            data_events: (self.events.counters().data_events.load(Ordering::Relaxed) - data_before)
                as usize,
            bytes_moved: self.events.counters().bytes_moved.load(Ordering::Relaxed) - bytes_before,
            failures: record.failures.len(),
            reexecuted_tasks: record.reexecuted.len(),
        };
        self.report.lock().regions.push(report.clone());
        Ok(report)
    }

    /// Execute an already-planned region graph and return the core's
    /// decision record.
    fn execute_planned(
        &self,
        graph: Arc<RegionGraph>,
        host_fns: HashMap<usize, HostFn>,
        plan: &RuntimePlan,
    ) -> OmpcResult<RunRecord> {
        // Triggers naming a node that already died in an earlier region
        // are spent: re-firing them would re-declare the failure here. The
        // dead nodes themselves carry over as *prior* failures, so this
        // region's recovery never counts them among the survivors.
        let (fault_plan, prior_dead) = {
            let dm = self.dm.lock();
            let plan = FaultPlan {
                events: self
                    .config
                    .fault_plan
                    .events
                    .iter()
                    .copied()
                    .filter(|e| !dm.is_failed(e.node))
                    .collect(),
                task_errors: self.config.fault_plan.task_errors.clone(),
            };
            let dead: Vec<NodeId> = (1..=self.num_workers).filter(|&n| dm.is_failed(n)).collect();
            (plan, dead)
        };
        // A plan naming an already-excommunicated node is a configuration
        // error, not a recoverable failure: the recovery machinery moves
        // tasks off nodes that die *during* a run, while a long-dead node
        // would either fake-complete the task without executing it (no
        // active fault subsystem) or bounce it back to the same dead node
        // forever (prior failures are never re-declared, so nothing ever
        // replans it). Reject up front with a pointer at the fix.
        if let Some(&node) = plan.assignment.iter().find(|n| prior_dead.contains(n)) {
            return Err(OmpcError::InvalidConfig(format!(
                "plan assigns a task to worker node {node}, which was declared failed in an \
                 earlier region and stays excommunicated; plan over ClusterDevice::alive_workers()"
            )));
        }
        let faults = FaultState::from_config(
            &fault_plan,
            self.config.heartbeat_period_ms,
            self.config.heartbeat_miss_threshold,
            self.num_workers,
        )?
        .map(|f| f.with_replan(self.config.replan_on_failure).with_prior_failures(&prior_dead));
        // Transfers planned between regions (lazy host flushes through
        // `buffer_data`) belong to no run; clear them so this run's record
        // contains exactly its own transfers.
        self.dm.lock().take_transfer_log();
        let mut core = match faults {
            Some(faults) => RuntimeCore::with_faults(graph.as_ref(), plan, faults),
            None => RuntimeCore::new(graph.as_ref(), plan),
        };
        core.set_telemetry(Arc::clone(&self.telemetry));
        let result = match self.config.backend {
            BackendKind::Threaded => {
                let backend = ThreadedBackend::new(
                    &self.pool,
                    Arc::clone(&self.events),
                    Arc::clone(&self.buffers),
                    Arc::clone(&self.dm),
                    graph,
                    host_fns,
                    &self.config,
                    Arc::clone(&self.telemetry),
                );
                backend.execute(&mut core)
            }
            BackendKind::Mpi => {
                let backend = MpiBackend::new(
                    Arc::clone(&self.events),
                    Arc::clone(&self.buffers),
                    Arc::clone(&self.dm),
                    graph,
                    host_fns,
                    &self.config,
                    Arc::clone(&self.telemetry),
                );
                backend.execute(&mut core)
            }
            BackendKind::Sim => Err(OmpcError::InvalidConfig(
                "a ClusterDevice cannot drive the simulated backend; use the simulate_ompc* \
                 entry points instead"
                    .to_string(),
            )),
        };
        let mut record = core.record();
        // The data manager logged every transfer this run planned
        // (including any planned for work that later failed and rolled
        // back — those entries were withdrawn); attach them so residency
        // wins are assertable per run.
        record.transfers = self.dm.lock().take_transfer_log();
        // Drain the spans this run produced (head-side scheduling and
        // data-path spans plus worker stamps shipped home in the replies)
        // so each record owns exactly its own timeline. Empty unless the
        // device runs at `TelemetryLevel::Spans`.
        record.spans = self.telemetry.take_spans();
        *self.last_record.lock() = Some(record.clone());
        result?;
        Ok(record)
    }

    /// Execute an abstract [`WorkloadGraph`] on the real cluster under an
    /// explicit [`RuntimePlan`], returning the execution core's decision
    /// record.
    ///
    /// The workload is materialized as a region of no-op target tasks, one
    /// per workload task, connected through per-task output buffers of the
    /// workload's output sizes — the threaded mirror of what
    /// [`crate::sim_runtime::simulate_ompc_with_plan`] executes on the
    /// virtual cluster. This is the entry point of the backend-equivalence
    /// tests: both backends must make identical scheduling and dispatch
    /// decisions for the same workload and plan.
    ///
    /// A worker-side failure during the run (e.g. an injected task error)
    /// returns the propagated [`OmpcError`] instead of hanging; the partial
    /// decision record stays available through
    /// [`ClusterDevice::last_run_record`].
    ///
    /// ```
    /// use ompc_core::model::WorkloadGraph;
    /// use ompc_core::prelude::*;
    ///
    /// let mut graph = ompc_sched::TaskGraph::new();
    /// for _ in 0..3 {
    ///     graph.add_task(0.001);
    /// }
    /// graph.add_edge(0, 1, 64);
    /// graph.add_edge(1, 2, 64);
    /// let workload = WorkloadGraph::new(graph, vec![64; 3]);
    ///
    /// let mut device = ClusterDevice::spawn(2);
    /// let plan = RuntimePlan { assignment: vec![1, 1, 2], window: 4 };
    /// let record = device.run_workload(&workload, &plan).unwrap();
    /// assert_eq!(record.completion_order, vec![0, 1, 2]);
    /// device.shutdown();
    /// ```
    pub fn run_workload(
        &self,
        workload: &WorkloadGraph,
        plan: &RuntimePlan,
    ) -> OmpcResult<RunRecord> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        if workload.is_empty() {
            return Ok(RunRecord::default());
        }
        let noop = *self
            .workload_kernel
            .get_or_init(|| self.kernels.register_fn("workload-task", 1e-6, |_| {}));
        let buffers: Vec<BufferId> = workload
            .output_bytes
            .iter()
            .map(|&bytes| self.buffers.register(vec![0u8; bytes as usize]))
            .collect();
        let mut region = RegionGraph::new();
        for t in 0..workload.len() {
            let mut deps = vec![Dependence::output(buffers[t])];
            for &pred in workload.graph.predecessors(t) {
                deps.push(Dependence::input(buffers[pred]));
            }
            region.add_task(
                TaskKind::Target { kernel: noop, cost_hint: workload.graph.tasks()[t].cost },
                deps,
                format!("w{t}"),
            );
        }
        {
            let mut dm = self.dm.lock();
            for (t, &buffer) in buffers.iter().enumerate() {
                if !dm.is_registered(buffer) {
                    dm.register_host_buffer(buffer, workload.output_bytes[t]);
                }
            }
        }
        let record = self.execute_planned(Arc::new(region), HashMap::new(), plan);
        // The materialized buffers are private to this run: release their
        // device copies, data-manager entries, and host copies so repeated
        // `run_workload` calls on one device do not accumulate state.
        for &buffer in &buffers {
            let holders = self.dm.lock().remove(buffer);
            for holder in holders {
                if holder != HEAD_NODE {
                    let _ = self.events.delete(holder, buffer);
                }
            }
            let _ = self.buffers.remove(buffer);
        }
        // De-materialize the transfer records: buffer `t` of the workload
        // coordinate system is task `t`'s output (the convention the
        // simulated backend records in), so cross-backend transfer sets
        // compare directly. The stored last_run_record is rewritten too —
        // both views of the run, successful or failed, must name the same
        // buffers.
        let index_of: HashMap<BufferId, u64> =
            buffers.iter().enumerate().map(|(t, &b)| (b, t as u64)).collect();
        let remap = |record: &mut RunRecord| {
            for transfer in &mut record.transfers {
                if let Some(&t) = index_of.get(&transfer.buffer) {
                    transfer.buffer = BufferId(t);
                }
            }
        };
        if let Some(last) = self.last_record.lock().as_mut() {
            remap(last);
        }
        record.map(|mut record| {
            remap(&mut record);
            record
        })
    }
}

impl Drop for ClusterDevice {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dependence;

    #[test]
    fn listing1_chain_runs_end_to_end() {
        // The paper's Listing 1: foo then bar on vector A, with foo and bar
        // potentially on different worker nodes and A forwarded between
        // them worker-to-worker.
        let mut device = ClusterDevice::spawn(2);
        let foo = device.register_kernel_fn("foo", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let bar = device.register_kernel_fn("bar", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
            args.set_f64s(0, &v);
        });

        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
        region.target(foo, vec![Dependence::inout(a)]);
        region.target(bar, vec![Dependence::inout(a)]);
        region.map_from(a);
        let report = region.run().unwrap();
        assert_eq!(report.target_tasks, 2);
        assert!(report.tasks_executed >= 4);
        assert!(report.bytes_moved > 0);

        assert_eq!(device.buffer_f64s(a).unwrap(), vec![20.0, 30.0, 40.0, 50.0]);
        device.shutdown();
        let dev_report = device.report();
        assert_eq!(dev_report.regions.len(), 1);
    }

    #[test]
    fn independent_tasks_spread_across_workers() {
        let mut device = ClusterDevice::spawn(3);
        let bump = device.register_kernel_fn("bump", 1e-4, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = device.target_region();
        let buffers: Vec<BufferId> = (0..6).map(|i| region.map_to_f64s(&[i as f64])).collect();
        for &b in &buffers {
            region.target(bump, vec![Dependence::inout(b)]);
        }
        for &b in &buffers {
            region.map_from(b);
        }
        region.run().unwrap();
        for (i, &b) in buffers.iter().enumerate() {
            assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
        }
        device.shutdown();
    }

    #[test]
    fn host_tasks_run_on_the_head_node() {
        let device = ClusterDevice::spawn(1);
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[5.0]);
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        region.host_task(vec![Dependence::input(a)], move |_| {
            flag2.store(true, Ordering::SeqCst);
        });
        region.run().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_region_is_a_noop() {
        let device = ClusterDevice::spawn(1);
        let region = device.target_region();
        let report = region.run().unwrap();
        assert_eq!(report.tasks_executed, 0);
    }

    #[test]
    fn warm_worker_keepalive_parks_and_adopts_across_lifetimes() {
        // An unusual (workers, communicators) pair keys this test's pool
        // apart from any other keepalive user in the process.
        let config =
            OmpcConfig { warm_worker_keepalive: true, num_communicators: 7, ..OmpcConfig::small() };
        let key = warm_key(5, &config);
        let parked = |key: &WarmKey| WARM_WORKERS.lock().iter().filter(|(k, _)| k == key).count();
        let before = parked(&key);

        let mut d1 = ClusterDevice::with_config(5, config.clone());
        let bump = d1.register_kernel_fn("bump", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = d1.target_region();
        let a = region.map_to_f64s(&[1.0]);
        region.target(bump, vec![Dependence::inout(a)]);
        region.map_from(a);
        region.run().unwrap();
        assert_eq!(d1.buffer_f64s(a).unwrap(), vec![2.0]);
        d1.shutdown();
        assert_eq!(parked(&key), before + 1, "shutdown parks the healthy pool");

        let mut d2 = ClusterDevice::with_config(5, config.clone());
        assert_eq!(parked(&key), before, "the new lifetime adopted the parked pool");
        // The adopted pool serves a full second lifetime: fresh kernel ids
        // from 0, clean device memories, real execution.
        let scale = d2.register_kernel_fn("scale", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
            args.set_f64s(0, &v);
        });
        assert_eq!(scale, KernelId(0), "adoption restarts kernel ids like a cold start");
        let mut region = d2.target_region();
        let b = region.map_to_f64s(&[2.0, 4.0]);
        region.target(scale, vec![Dependence::inout(b)]);
        region.map_from(b);
        region.run().unwrap();
        assert_eq!(d2.buffer_f64s(b).unwrap(), vec![6.0, 12.0]);
        d2.shutdown();

        // Leave the process as we found it: adopt the parked pool and shut
        // its workers down cold.
        if let Some(warm) = adopt_warm_workers(&key) {
            for node in 1..=5 {
                let _ = warm.events.shutdown(node);
            }
            for handle in warm.worker_handles {
                let _ = handle.join();
            }
        }
    }

    #[test]
    fn warm_pool_soak_reuses_one_pool_and_never_parks_after_a_failure() {
        use crate::runtime::fault::FaultPlan;
        // A key no other test in the process uses: 3 workers × 9
        // communicators. Every lifetime below adopts (or parks into) this
        // slot and no other.
        let config =
            OmpcConfig { warm_worker_keepalive: true, num_communicators: 9, ..OmpcConfig::small() };
        let key = warm_key(3, &config);
        let parked = |key: &WarmKey| WARM_WORKERS.lock().iter().filter(|(k, _)| k == key).count();
        let before = parked(&key);

        // Soak: four adopt/run/park cycles over the *same* pool. Each
        // lifetime re-registers its kernels and must see ids restart from
        // 0 (the adoption reset), and each run must compute correctly on
        // the recycled device memories.
        for round in 0..4u32 {
            let mut device = ClusterDevice::with_config(3, config.clone());
            if round > 0 {
                assert_eq!(parked(&key), before, "round {round} adopted the parked pool");
            }
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let scale = device.register_kernel_fn("scale", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
                args.set_f64s(0, &v);
            });
            assert_eq!(
                (bump, scale),
                (KernelId(0), KernelId(1)),
                "round {round}: kernel ids restart from 0 like a cold start"
            );
            let mut region = device.target_region();
            let a = region.map_to_f64s(&[f64::from(round)]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.target(scale, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(device.buffer_f64s(a).unwrap(), vec![(f64::from(round) + 1.0) * 3.0]);
            device.shutdown();
            assert_eq!(parked(&key), before + 1, "round {round} parked the pool again");
        }

        // A mid-lifetime node failure disqualifies the pool: the adopting
        // device survives the failure (recovery re-executes the lost work)
        // but its shutdown must join the workers cold, not park them.
        {
            let fail_config = OmpcConfig {
                fault_plan: FaultPlan::none().fail_after_completions(1, 1),
                ..config.clone()
            };
            let mut device = ClusterDevice::with_config(3, fail_config);
            assert_eq!(parked(&key), before, "the faulting lifetime adopted the parked pool");
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let mut region = device.target_region();
            let buffers: Vec<BufferId> = (0..6).map(|i| region.map_to_f64s(&[i as f64])).collect();
            for &b in &buffers {
                region.target(bump, vec![Dependence::inout(b)]);
            }
            for &b in &buffers {
                region.map_from(b);
            }
            region.run().unwrap();
            for (i, &b) in buffers.iter().enumerate() {
                assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
            }
            assert!(
                !device.last_run_record().unwrap().failures.is_empty(),
                "the injected failure fired mid-lifetime"
            );
            assert_eq!(device.alive_workers(), vec![2, 3]);
            device.shutdown();
            assert_eq!(parked(&key), before, "a pool that saw a node failure is never parked");
        }

        // Leave the process as we found it (the failed pool was already
        // joined cold; nothing should be left under this key).
        assert_eq!(parked(&key), before);
    }

    #[test]
    fn shutdown_is_idempotent_and_regions_fail_afterwards() {
        let mut device = ClusterDevice::spawn(1);
        device.shutdown();
        device.shutdown();
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0]);
        let k = device.register_kernel_fn("noop", 1e-6, |_| {});
        region.target(k, vec![Dependence::inout(a)]);
        assert_eq!(region.run().unwrap_err(), OmpcError::ShutDown);
    }
}
