//! The cluster device: the head-node runtime that owns the worker threads,
//! schedules target regions, and drives the event system.
//!
//! This is the real (threaded) execution mode: every worker node is an OS
//! thread running [`crate::worker::worker_main`], messages travel through
//! the `ompc-mpi` substrate, and kernels execute real Rust code. The
//! simulated mode used for the large-scale benchmark figures lives in
//! [`crate::sim_runtime`] and reuses the same scheduler and data-manager
//! logic.

use crate::buffer::BufferRegistry;
use crate::collective::{run_broadcast, BroadcastSpec};
use crate::config::BackendKind;
use crate::config::OmpcConfig;
use crate::data_manager::{
    DataManager, Ticket, TransferPlan, TransferReason, TransferState, HEAD_NODE, UNATTRIBUTED,
};
use crate::event::EventSystem;
use crate::kernel::{Kernel, KernelArgs, KernelRegistry};
use crate::model::WorkloadGraph;
use crate::protocol::{COMPLETION_TAG, PREFETCH_TAG};
use crate::region::TargetRegion;
use crate::runtime::fault::{FaultPlan, FaultState};
use crate::runtime::mpi::NoticeRouter;
use crate::runtime::telemetry::{monotonic_us, Span, SpanPhase, Telemetry};
use crate::runtime::{
    HeadWorkerPool, MpiBackend, ResidencyMap, RunRecord, RuntimeCore, RuntimePlan, ThreadedBackend,
};
use crate::stats::{DeviceReport, RegionReport};
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, Dependence, KernelId, MapType, NodeId, OmpcError, OmpcResult};
use crate::worker::worker_main;
use ompc_mpi::World;
use ompc_sched::Platform;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A host-task body: runs on the head node with access to the host buffers.
pub type HostFn = Arc<dyn Fn(&BufferRegistry) + Send + Sync>;

/// Compatibility key of a parked worker pool: only a device asking for the
/// same worker count, communicator fan-out, handler threads, and reply
/// timeout can adopt it — `(num_workers, num_communicators,
/// event_handler_threads, event_reply_timeout_ms)`.
type WarmKey = (usize, u32, usize, Option<u64>);

/// A worker pool kept alive between device lifetimes: the communication
/// world, the shared kernel table (cleared on adoption — the fat binary is
/// re-populated by the new lifetime's registrations), the event system (its
/// tag counter continues, keeping tags device-unique across lifetimes), and
/// the gate-thread handles.
struct WarmWorkers {
    world: World,
    kernels: Arc<KernelRegistry>,
    events: Arc<EventSystem>,
    worker_handles: Vec<JoinHandle<()>>,
}

/// Parked worker pools, by compatibility key. Fig. 7(a) attributes ~80% of
/// small-run overhead to cluster start-up; with
/// [`OmpcConfig::warm_worker_keepalive`] a shut-down device parks its
/// healthy workers here instead of joining them, and the next compatible
/// device adopts them for a near-zero start-up. Parked gate threads persist
/// until adopted or process exit.
static WARM_WORKERS: Mutex<Vec<(WarmKey, WarmWorkers)>> = Mutex::new(Vec::new());

fn warm_key(num_workers: usize, config: &OmpcConfig) -> WarmKey {
    (
        num_workers,
        config.num_communicators,
        config.event_handler_threads,
        config.event_reply_timeout_ms,
    )
}

fn adopt_warm_workers(key: &WarmKey) -> Option<WarmWorkers> {
    let mut pool = WARM_WORKERS.lock();
    let idx = pool.iter().position(|(k, _)| k == key)?;
    Some(pool.swap_remove(idx).1)
}

/// FIFO turnstile for concurrent region executions: callers of
/// [`ClusterDevice::execute_region`] / [`ClusterDevice::run_workload`] are
/// admitted strictly in arrival order, at most
/// [`OmpcConfig::max_concurrent_regions`] inside at once — a small region
/// can queue behind a large one but can never be starved by later
/// arrivals.
#[derive(Default)]
struct AdmissionGate {
    /// Regions currently admitted (inside an execution).
    running: usize,
    /// Next arrival ticket to hand out.
    next_ticket: u64,
    /// The arrival ticket currently first in line.
    serving: u64,
}

/// What an admitted region holds until its execution finishes: the
/// admission slot, and — once planning registered it — the per-node load
/// reservation that seeds later tenants' schedules. Dropping the lease,
/// on success or error, releases both and wakes the admission queue.
struct RegionLease<'d> {
    device: &'d ClusterDevice,
    region: u64,
}

impl Drop for RegionLease<'_> {
    fn drop(&mut self) {
        self.device.inflight_load.lock().remove(&self.region);
        self.device.admission.lock().running -= 1;
        self.device.admission_cv.notify_all();
    }
}

/// The OMPC cluster device.
///
/// ```
/// use ompc_core::cluster::ClusterDevice;
/// use ompc_core::types::Dependence;
///
/// let mut device = ClusterDevice::spawn(2);
/// let scale = device.register_kernel_fn("scale", 1e-6, |args| {
///     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 2.0).collect();
///     args.set_f64s(0, &v);
/// });
/// let mut region = device.target_region();
/// let a = region.map_to_f64s(&[1.0, 2.0, 3.0]);
/// region.target(scale, vec![Dependence::inout(a)]);
/// region.map_from(a);
/// region.run().unwrap();
/// assert_eq!(device.buffer_f64s(a).unwrap(), vec![2.0, 4.0, 6.0]);
/// device.shutdown();
/// ```
pub struct ClusterDevice {
    /// The communication world; `None` only after its workers were parked
    /// for adoption by a later device lifetime.
    world: Option<World>,
    kernels: Arc<KernelRegistry>,
    buffers: Arc<BufferRegistry>,
    events: Arc<EventSystem>,
    dm: Arc<Mutex<DataManager>>,
    config: OmpcConfig,
    num_workers: usize,
    worker_handles: Vec<JoinHandle<()>>,
    /// Long-lived head worker pool, sized lazily per region
    /// (`min(head_worker_threads, window, tasks)`, growing to the largest
    /// region seen) and reused across region executions; drained on
    /// shutdown/drop.
    pool: HeadWorkerPool,
    /// Dedicated pool for the asynchronous data path (async enter-data,
    /// cross-region prefetch, double-buffered flushes). Separate from the
    /// region pool by design: a region task may *block* on an in-flight
    /// transfer, so the job driving that transfer must never be queued
    /// behind it on the same threads.
    transfer_pool: HeadWorkerPool,
    /// Paired with `dm`'s mutex; notified whenever an async data-path job
    /// resolves an in-flight entry. First readers, concurrent flushes, and
    /// ticket awaiters block here.
    inflight_cv: Arc<Condvar>,
    /// Test-only freeze gate for async transfer jobs (see
    /// [`ClusterDevice::debug_hold_async_transfers`]). Its condvar pairs
    /// with its *own* mutex, never with `dm`'s.
    async_hold: Arc<(Mutex<bool>, Condvar)>,
    report: Mutex<DeviceReport>,
    /// Admission control for concurrent region executions: FIFO over
    /// arrival order, at most [`OmpcConfig::max_concurrent_regions`]
    /// inside at once. Paired with `admission_cv`.
    admission: Mutex<AdmissionGate>,
    admission_cv: Condvar,
    /// Estimated per-node compute seconds still in flight per admitted
    /// region: the reservation the next admitted region's schedule is
    /// seeded with ([`RuntimePlan::region_assignment_with_load`]), so
    /// tenants spread across the shared workers instead of piling onto
    /// the serially-optimal nodes.
    inflight_load: Mutex<HashMap<u64, HashMap<NodeId, f64>>>,
    /// Completion-channel demultiplexer shared by every concurrently
    /// admitted MPI region execution.
    notice_router: Arc<NoticeRouter>,
    /// Decision record of the most recent region / workload execution,
    /// including any failure and recovery events.
    last_record: Mutex<Option<RunRecord>>,
    /// Lazily registered no-op kernel shared by every `run_workload` call.
    workload_kernel: std::sync::OnceLock<KernelId>,
    /// Device-owned span recorder, built from [`OmpcConfig::telemetry`].
    /// Spans accumulate here during a run and are drained into that run's
    /// [`RunRecord::spans`]; at the Off level it never reads a clock.
    telemetry: Arc<Telemetry>,
    shut_down: bool,
}

impl ClusterDevice {
    /// Spawn a cluster with `num_workers` worker nodes (plus the implicit
    /// head node) using the default configuration.
    pub fn spawn(num_workers: usize) -> Self {
        Self::with_config(num_workers, OmpcConfig::small())
    }

    /// Spawn a cluster with an explicit configuration. With
    /// [`OmpcConfig::warm_worker_keepalive`], a compatible worker pool
    /// parked by an earlier lifetime's [`ClusterDevice::shutdown`] is
    /// adopted instead of spawning fresh workers — the dominant start-up
    /// cost of small runs (Fig. 7(a)) drops to a registry reset.
    pub fn with_config(num_workers: usize, config: OmpcConfig) -> Self {
        assert!(num_workers > 0, "the cluster needs at least one worker node");
        let start = Instant::now();
        let adopted = if config.warm_worker_keepalive {
            adopt_warm_workers(&warm_key(num_workers, &config))
        } else {
            None
        };
        let (world, kernels, events, worker_handles) = match adopted {
            Some(warm) => {
                // The previous lifetime's kernel table is stale; clearing
                // it restarts kernel ids from 0, exactly as a cold start
                // would assign them. (Device memories were already cleared
                // by the reset events at parking time.)
                warm.kernels.clear();
                (warm.world, warm.kernels, warm.events, warm.worker_handles)
            }
            None => {
                let world = World::with_communicators(num_workers + 1, config.num_communicators);
                let kernels = Arc::new(KernelRegistry::new());
                let mut worker_handles = Vec::with_capacity(num_workers);
                for node in 1..=num_workers {
                    let comm = world.communicator(node);
                    let kernels = Arc::clone(&kernels);
                    let handler_threads = config.event_handler_threads;
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("ompc-worker-{node}"))
                            .spawn(move || worker_main(comm, kernels, handler_threads))
                            .expect("failed to spawn worker node thread"),
                    );
                }
                let events = Arc::new(EventSystem::with_reply_timeout(
                    world.communicator(HEAD_NODE),
                    config.event_reply_timeout_ms.map(std::time::Duration::from_millis),
                ));
                (world, kernels, events, worker_handles)
            }
        };
        // Applied to warm-adopted worlds too: the previous lifetime may
        // have paced (or not paced) its links differently.
        world.set_link_bandwidth(config.emulated_link_mib_per_s as u64 * 1024 * 1024);
        let startup_time = start.elapsed();
        let pool = HeadWorkerPool::with_idle_timeout(
            config.pool_idle_timeout_ms.map(std::time::Duration::from_millis),
        );
        let transfer_pool = HeadWorkerPool::with_idle_timeout(
            config.pool_idle_timeout_ms.map(std::time::Duration::from_millis),
        );
        let telemetry = Telemetry::new(config.telemetry);
        Self {
            world: Some(world),
            kernels,
            buffers: Arc::new(BufferRegistry::new()),
            events,
            dm: Arc::new(Mutex::new(DataManager::new())),
            config,
            num_workers,
            worker_handles,
            pool,
            transfer_pool,
            inflight_cv: Arc::new(Condvar::new()),
            async_hold: Arc::new((Mutex::new(false), Condvar::new())),
            report: Mutex::new(DeviceReport { startup_time, ..DeviceReport::default() }),
            admission: Mutex::new(AdmissionGate::default()),
            admission_cv: Condvar::new(),
            inflight_load: Mutex::new(HashMap::new()),
            notice_router: NoticeRouter::new(),
            last_record: Mutex::new(None),
            workload_kernel: std::sync::OnceLock::new(),
            telemetry,
            shut_down: false,
        }
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of threads currently alive in the long-lived head worker
    /// pool. The pool grows lazily to `min(head_worker_threads, window,
    /// tasks)` of the largest region executed so far and is reused across
    /// regions — repeated small regions never pay per-region spawn/join
    /// churn. With [`OmpcConfig::pool_idle_timeout_ms`] set, idle threads
    /// exit after the timeout, so this count also *drops* once the device
    /// has been quiet. Always zero under
    /// [`crate::config::BackendKind::Mpi`], which has no head pool.
    pub fn pool_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &OmpcConfig {
        &self.config
    }

    /// Register a kernel object.
    pub fn register_kernel(&self, kernel: Arc<dyn Kernel>) -> KernelId {
        self.kernels.register(kernel)
    }

    /// Register a closure as a kernel with a cost hint in seconds.
    pub fn register_kernel_fn<F>(&self, name: &str, cost: f64, f: F) -> KernelId
    where
        F: Fn(&mut KernelArgs<'_>) + Send + Sync + 'static,
    {
        self.kernels.register_fn(name, cost, f)
    }

    /// Register host data as a mapped buffer without scheduling any data
    /// movement (movement happens through a region's enter/exit data).
    pub fn map_buffer(&self, data: Vec<u8>) -> BufferId {
        self.buffers.register(data)
    }

    /// Device-level unstructured `target enter data`: register `data` as a
    /// mapped buffer that is **resident** across region executions. No
    /// bytes move yet — the first region task that reads the buffer pulls
    /// it onto its worker, and from then on it stays there: later regions
    /// generate no enter-data transfer, a region-level `map(from:)`
    /// flushes it to the host without dropping the device copies, and only
    /// [`ClusterDevice::exit_data`] (or a region-level `map(release:)`)
    /// ends the mapping.
    ///
    /// ```
    /// use ompc_core::cluster::ClusterDevice;
    /// use ompc_core::types::Dependence;
    ///
    /// let mut device = ClusterDevice::spawn(1);
    /// let bump = device.register_kernel_fn("bump", 1e-6, |args| {
    ///     let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
    ///     args.set_f64s(0, &v);
    /// });
    /// let a = device.enter_data_f64s(&[1.0, 2.0]);
    /// for _ in 0..3 {
    ///     let mut region = device.target_region();
    ///     region.target(bump, vec![Dependence::inout(a)]);
    ///     region.run().unwrap();
    /// }
    /// // The host copy is flushed lazily: reading the buffer retrieves
    /// // the device-resident latest version.
    /// assert_eq!(device.buffer_f64s(a).unwrap(), vec![4.0, 5.0]);
    /// // Ending the mapping releases the device copies.
    /// device.exit_data(a).unwrap();
    /// device.shutdown();
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the device has been shut down — the mapping could never
    /// be used, so the misuse is reported here rather than as a confusing
    /// error from a later region.
    pub fn enter_data(&self, data: Vec<u8>) -> BufferId {
        assert!(!self.shut_down, "enter_data on a shut-down ClusterDevice");
        if self.config.enter_data_async {
            return self.enter_data_async(data).0;
        }
        let bytes = data.len() as u64;
        let buffer = self.buffers.register(data);
        let mut dm = self.dm.lock();
        dm.register_host_buffer(buffer, bytes);
        dm.mark_resident(buffer);
        buffer
    }

    /// Convenience: [`ClusterDevice::enter_data`] for a slice of `f64`s.
    pub fn enter_data_f64s(&self, values: &[f64]) -> BufferId {
        self.enter_data(ompc_mpi::typed::f64s_to_bytes(values))
    }

    /// [`ClusterDevice::enter_data`] that starts distributing the data
    /// **immediately**: the destination is predicted by scheduling a
    /// synthetic single-reader region against the current residency view,
    /// the movement is booked in the data manager's in-flight table, and a
    /// dedicated transfer pool pushes the bytes while the caller keeps
    /// building (or running) regions. Returns the buffer plus a
    /// [`Ticket`]; awaiting it ([`ClusterDevice::await_transfer`]) is
    /// optional — the first region task that reads the buffer **awaits the
    /// in-flight transfer in place** instead of re-submitting it, and a
    /// reader scheduled onto a different node than predicted just pays one
    /// extra hop (prediction misses cost bandwidth, never correctness).
    pub fn enter_data_async(&self, data: Vec<u8>) -> (BufferId, Ticket) {
        assert!(!self.shut_down, "enter_data_async on a shut-down ClusterDevice");
        let bytes = data.len() as u64;
        let buffer = self.buffers.register(data);
        let ticket = {
            let mut dm = self.dm.lock();
            dm.register_host_buffer(buffer, bytes);
            dm.mark_resident(buffer);
            dm.open_ticket()
        };
        // `Input`, not `EnterData`: the synchronous path distributes a
        // device-resident mapping lazily through the first reader's
        // `plan_input`, so the async record must carry the same reason for
        // the transfer plans to compare byte-identical.
        if let Some(node) = self.predict_first_reader(buffer) {
            let plan = self.dm.lock().begin_inflight(buffer, node, TransferReason::Input, ticket);
            if let Some(plan) = plan {
                self.spawn_transfer_job(plan, "async enter-data");
            }
        }
        (buffer, ticket)
    }

    /// Convenience: [`ClusterDevice::enter_data_async`] for `f64`s.
    pub fn enter_data_async_f64s(&self, values: &[f64]) -> (BufferId, Ticket) {
        self.enter_data_async(ompc_mpi::typed::f64s_to_bytes(values))
    }

    /// Block until every transfer booked under `ticket` has resolved and
    /// return the batch outcome. Unknown (or already awaited) tickets read
    /// as completed.
    pub fn await_transfer(&self, ticket: Ticket) -> OmpcResult<()> {
        let mut dm = self.dm.lock();
        loop {
            match dm.ticket_result(ticket) {
                Some(outcome) => return outcome,
                None => self.inflight_cv.wait(&mut dm),
            }
        }
    }

    /// Start bringing the host copy of `buffer` up to date **without
    /// blocking**: the retrieval runs on the transfer pool and overlaps
    /// whatever the caller does next (the double-buffered flush of the
    /// async data path). Returns a [`Ticket`]; a concurrent
    /// [`ClusterDevice::buffer_data`] of the same buffer waits for this
    /// retrieval instead of scheduling a second one. When a retrieval of
    /// the buffer is already in flight its ticket is returned instead of
    /// booking a duplicate.
    pub fn flush_async(&self, buffer: BufferId) -> OmpcResult<Ticket> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        let (from, ticket) = {
            let mut dm = self.dm.lock();
            if !dm.is_registered(buffer) {
                return Ok(dm.open_ticket());
            }
            if let TransferState::InFlight(t) = dm.transfer_state(buffer, HEAD_NODE) {
                return Ok(t);
            }
            let ticket = dm.open_ticket();
            match dm.begin_inflight_retrieve(buffer, ticket) {
                Some(from) => (from, ticket),
                // The host already holds the latest version.
                None => return Ok(ticket),
            }
        };
        let events = Arc::clone(&self.events);
        let buffers = Arc::clone(&self.buffers);
        let dm = Arc::clone(&self.dm);
        let cv = Arc::clone(&self.inflight_cv);
        let hold = Arc::clone(&self.async_hold);
        let telemetry = Arc::clone(&self.telemetry);
        let submitted = self.transfer_pool.submit_closure(Box::new(move || {
            Self::wait_hold(&hold);
            let outcome = Self::retrieve_and_commit(
                &events,
                &buffers,
                &dm,
                &telemetry,
                from,
                buffer,
                "double-buffered flush",
            );
            let mut dm = dm.lock();
            dm.finish_inflight(buffer, HEAD_NODE, outcome);
            drop(dm);
            cv.notify_all();
        }));
        if submitted.is_err() {
            self.dm.lock().finish_inflight(buffer, HEAD_NODE, Err(OmpcError::ShutDown));
            self.inflight_cv.notify_all();
        }
        Ok(ticket)
    }

    /// Test hook: freeze every async transfer job before it touches the
    /// wire (`true`), or release them (`false`). Lets fault-tolerance tests
    /// deterministically arrange "the destination dies while the prefetch
    /// is in flight" without racing the wire.
    #[doc(hidden)]
    pub fn debug_hold_async_transfers(&self, hold: bool) {
        let (lock, cv) = &*self.async_hold;
        *lock.lock() = hold;
        if !hold {
            cv.notify_all();
        }
    }

    /// Predict which worker the first reader of `buffer` will be scheduled
    /// onto, by planning a synthetic single-reader region against the
    /// current residency view — the same scheduler the real region will
    /// consult, so for single-reader shapes the prediction is exact.
    fn predict_first_reader(&self, buffer: BufferId) -> Option<NodeId> {
        let alive = self.alive_workers();
        if alive.is_empty() {
            return None;
        }
        let mut probe = RegionGraph::new();
        probe.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1e-6 },
            vec![Dependence::input(buffer)],
            "async-enter-data probe".to_string(),
        );
        let residency = self.dm.lock().latest_on_workers();
        let assignment = RuntimePlan::region_assignment_on(
            &probe,
            &self.buffers,
            &Platform::cluster(alive.len()),
            &self.config,
            &alive,
            &residency,
        );
        assignment.first().copied().filter(|&n| n != HEAD_NODE)
    }

    /// Block while the test-only hold gate is closed.
    fn wait_hold(hold: &(Mutex<bool>, Condvar)) {
        let (lock, cv) = hold;
        let mut held = lock.lock();
        while *held {
            cv.wait(&mut held);
        }
    }

    /// Body of one single-transfer async job: push the planned movement
    /// over the wire and record a `Prefetch` span for the overlap.
    fn run_async_submit(
        events: &EventSystem,
        buffers: &BufferRegistry,
        dm: &Mutex<DataManager>,
        telemetry: &Telemetry,
        plan: &TransferPlan,
        detail: &'static str,
    ) -> OmpcResult<()> {
        // The destination may have died while the job sat in the queue (or
        // behind the hold gate): fail without touching the wire, so the
        // booking rolls back deterministically.
        if dm.lock().is_failed(plan.to) {
            return Err(OmpcError::NodeFailure(plan.to));
        }
        let t0 = telemetry.start();
        let moved = if plan.from == HEAD_NODE {
            // A one-car train, not a plain submit: the worker's gate thread
            // handles trains inline, so the arrival can never queue behind a
            // composite task blocked awaiting this very transfer (the MPI
            // backend's `AwaitLocal` step) on a small handler pool.
            buffers
                .get(plan.buffer)
                .and_then(|data| events.submit_train(plan.to, vec![(plan.buffer, data)]))
        } else {
            events.exchange(plan.from, plan.to, plan.buffer).map(|_| ())
        };
        if moved.is_ok() && telemetry.spans_enabled() {
            let bytes = buffers.size_of(plan.buffer).unwrap_or(0) as u64;
            telemetry.record(
                Span::new(SpanPhase::Prefetch, plan.to, t0, monotonic_us())
                    .bytes(bytes)
                    .from(plan.from)
                    .detail(detail),
            );
        }
        moved
    }

    /// Submit one booked async movement to the transfer pool. If the pool
    /// is already drained (device shutting down) the booking is resolved as
    /// failed immediately so no waiter ever blocks on a job that will not
    /// run.
    fn spawn_transfer_job(&self, plan: TransferPlan, detail: &'static str) {
        let events = Arc::clone(&self.events);
        let buffers = Arc::clone(&self.buffers);
        let dm = Arc::clone(&self.dm);
        let cv = Arc::clone(&self.inflight_cv);
        let hold = Arc::clone(&self.async_hold);
        let telemetry = Arc::clone(&self.telemetry);
        let (buffer, to) = (plan.buffer, plan.to);
        let submitted = self.transfer_pool.submit_closure(Box::new(move || {
            Self::wait_hold(&hold);
            let outcome = Self::run_async_submit(&events, &buffers, &dm, &telemetry, &plan, detail);
            let mut dm = dm.lock();
            dm.finish_inflight(buffer, to, outcome);
            drop(dm);
            cv.notify_all();
        }));
        if submitted.is_err() {
            self.dm.lock().finish_inflight(buffer, to, Err(OmpcError::ShutDown));
            self.inflight_cv.notify_all();
        }
    }

    /// Submit one per-node prefetch *train* (MPI backend): every payload
    /// streams back-to-back on one reserved channel and the worker posts a
    /// single completion notice, so a k-buffer prefetch costs one
    /// round-trip instead of k. All-or-nothing: a failed train rolls back
    /// every booking it carried.
    fn spawn_train_job(&self, node: NodeId, plans: Vec<TransferPlan>) {
        let events = Arc::clone(&self.events);
        let buffers = Arc::clone(&self.buffers);
        let dm = Arc::clone(&self.dm);
        let cv = Arc::clone(&self.inflight_cv);
        let hold = Arc::clone(&self.async_hold);
        let telemetry = Arc::clone(&self.telemetry);
        let submitted = {
            let plans = plans.clone();
            self.transfer_pool.submit_closure(Box::new(move || {
                Self::wait_hold(&hold);
                let outcome: OmpcResult<()> = (|| {
                    if dm.lock().is_failed(node) {
                        return Err(OmpcError::NodeFailure(node));
                    }
                    let t0 = telemetry.start();
                    let mut cars = Vec::with_capacity(plans.len());
                    let mut total = 0u64;
                    for plan in &plans {
                        let data = buffers.get(plan.buffer)?;
                        total += data.len() as u64;
                        cars.push((plan.buffer, data));
                    }
                    events.submit_train(node, cars)?;
                    if telemetry.spans_enabled() {
                        telemetry.record(
                            Span::new(SpanPhase::Prefetch, node, t0, monotonic_us())
                                .bytes(total)
                                .from(HEAD_NODE)
                                .detail("prefetch train"),
                        );
                    }
                    Ok(())
                })();
                let mut dm = dm.lock();
                for plan in &plans {
                    dm.finish_inflight(
                        plan.buffer,
                        node,
                        outcome.as_ref().map(|_| ()).map_err(Clone::clone),
                    );
                }
                drop(dm);
                cv.notify_all();
            }))
        };
        if submitted.is_err() {
            let mut dm = self.dm.lock();
            for plan in &plans {
                dm.finish_inflight(plan.buffer, node, Err(OmpcError::ShutDown));
            }
            drop(dm);
            self.inflight_cv.notify_all();
        }
    }

    /// Retrieve `buffer` from `from` and commit it to the host registry
    /// (shared body of the synchronous and double-buffered lazy flushes).
    fn retrieve_and_commit(
        events: &EventSystem,
        buffers: &BufferRegistry,
        dm: &Mutex<DataManager>,
        telemetry: &Telemetry,
        from: NodeId,
        buffer: BufferId,
        detail: &'static str,
    ) -> OmpcResult<()> {
        let t0 = telemetry.start();
        let data = events.retrieve(from, buffer)?;
        let bytes = data.len() as u64;
        if telemetry.spans_enabled() {
            telemetry.record(
                Span::new(SpanPhase::HostFlush, HEAD_NODE, t0, monotonic_us())
                    .bytes(bytes)
                    .from(from)
                    .detail(detail),
            );
        }
        buffers.set(buffer, data)?;
        let mut dm = dm.lock();
        // A kernel may have resized the device copy; the observed size
        // keeps this and every later transfer-log entry truthful.
        dm.observe_size(buffer, bytes);
        dm.record_retrieve(buffer);
        Ok(())
    }

    /// Device-level unstructured `target exit data map(from:)`: flush the
    /// buffer's latest contents back to the host (a no-op when the host
    /// already holds the latest version) and release every device copy,
    /// ending the mapping. The host copy stays readable through
    /// [`ClusterDevice::buffer_data`].
    pub fn exit_data(&self, buffer: BufferId) -> OmpcResult<()> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        self.flush_to_host(buffer)?;
        crate::runtime::release_device_copies(&self.dm, &self.events, buffer)
    }

    /// Bring the host copy of `buffer` up to date when its latest version
    /// is resident on a worker (the lazy host flush of the residency
    /// protocol). Device copies stay mapped — a flush is a read. Nothing
    /// is committed until the bytes land: a failed retrieval surfaces as
    /// an error and the next read retries from the then-latest holder
    /// instead of silently trusting a stale host copy.
    ///
    /// Concurrent flushes of one buffer are **serialized through the
    /// in-flight table**: the first reader books the retrieval, later
    /// readers (and [`ClusterDevice::flush_async`] jobs) wait for it to
    /// land instead of scheduling a second retrieve of the same bytes —
    /// the fix for the latent double-flush.
    fn flush_to_host(&self, buffer: BufferId) -> OmpcResult<()> {
        let (from, ticket) = {
            let mut dm = self.dm.lock();
            if !dm.is_registered(buffer) {
                return Ok(());
            }
            let mut wait_t0 = None;
            while matches!(dm.transfer_state(buffer, HEAD_NODE), TransferState::InFlight(_)) {
                if wait_t0.is_none() {
                    wait_t0 = Some(self.telemetry.start());
                }
                self.inflight_cv.wait(&mut dm);
            }
            if let Some(t0) = wait_t0 {
                if self.telemetry.spans_enabled() {
                    self.telemetry.record(
                        Span::new(SpanPhase::AwaitInflight, HEAD_NODE, t0, monotonic_us())
                            .detail("flush waits for in-flight retrieval"),
                    );
                }
            }
            let ticket = dm.open_ticket();
            match dm.begin_inflight_retrieve(buffer, ticket) {
                Some(from) => (from, ticket),
                None => {
                    // The host already holds the latest version (possibly
                    // because the retrieval we just waited for landed it).
                    let _ = dm.ticket_result(ticket);
                    return Ok(());
                }
            }
        };
        let outcome = Self::retrieve_and_commit(
            &self.events,
            &self.buffers,
            &self.dm,
            &self.telemetry,
            from,
            buffer,
            "lazy host flush",
        );
        {
            let mut dm = self.dm.lock();
            dm.finish_inflight(
                buffer,
                HEAD_NODE,
                outcome.as_ref().map(|_| ()).map_err(Clone::clone),
            );
            let _ = dm.ticket_result(ticket);
        }
        self.inflight_cv.notify_all();
        outcome
    }

    /// Drain the transfers planned *outside* any region execution — lazy
    /// host flushes ([`ClusterDevice::buffer_data`]) and device-level
    /// [`ClusterDevice::exit_data`] retrievals. Transfers planned during a
    /// region run are attributed to that run's
    /// [`RunRecord::transfers`](crate::runtime::RunRecord::transfers)
    /// instead and never appear here; undrained entries are discarded when
    /// the next region begins.
    pub fn take_unattributed_transfers(&self) -> Vec<crate::data_manager::TransferRecord> {
        self.dm.lock().take_transfer_log_in(UNATTRIBUTED)
    }

    /// The current region epoch: 0 before any region has executed,
    /// incremented once per region execution. Together with
    /// [`ClusterDevice::buffer_epoch`] this makes cross-region residency
    /// observable — a buffer whose epoch is older than the device's has
    /// been carried across regions, not re-registered.
    pub fn region_epoch(&self) -> u64 {
        self.dm.lock().epoch()
    }

    /// The region epoch that last registered or wrote `buffer` (`None`
    /// when the buffer is not currently mapped).
    pub fn buffer_epoch(&self, buffer: BufferId) -> Option<u64> {
        self.dm.lock().buffer_epoch(buffer)
    }

    /// Registered cost hint of a kernel (seconds), used by regions to feed
    /// the static scheduler.
    pub fn kernel_cost(&self, id: KernelId) -> f64 {
        self.kernels.get(id).map(|k| k.cost_hint()).unwrap_or(1e-4)
    }

    /// Current contents of a buffer, flushed lazily: when the latest
    /// version is resident on a worker node (a cross-region mapping whose
    /// data was produced on the cluster and never exited), it is retrieved
    /// to the host first, so the returned bytes are never stale. The
    /// device copies stay mapped. After [`ClusterDevice::shutdown`] the
    /// host copy is returned as-is.
    pub fn buffer_data(&self, id: BufferId) -> OmpcResult<Vec<u8>> {
        if !self.shut_down {
            self.flush_to_host(id)?;
        }
        self.buffers.get(id)
    }

    /// [`ClusterDevice::buffer_data`] interpreted as `f64`s (flushed
    /// lazily the same way).
    pub fn buffer_f64s(&self, id: BufferId) -> OmpcResult<Vec<f64>> {
        let data = self.buffer_data(id)?;
        ompc_mpi::typed::bytes_to_f64s(&data).map_err(|e| OmpcError::Internal(e.to_string()))
    }

    /// The host buffer registry (used by host tasks and examples).
    pub fn buffers(&self) -> &Arc<BufferRegistry> {
        &self.buffers
    }

    /// Open a new target region on this device.
    pub fn target_region(&self) -> TargetRegion<'_> {
        TargetRegion::new(self)
    }

    /// Timing report accumulated over the device lifetime.
    pub fn report(&self) -> DeviceReport {
        self.report.lock().clone()
    }

    /// Decision record of the most recent region / workload execution:
    /// assignment, dispatch and completion orders, and — when a
    /// [`crate::runtime::fault::FaultPlan`] was active — the failure
    /// detection, re-execution, and recovery events.
    pub fn last_run_record(&self) -> Option<RunRecord> {
        self.last_record.lock().clone()
    }

    /// Worker nodes not declared failed by the fault subsystem, ascending.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        let dm = self.dm.lock();
        (1..=self.num_workers).filter(|&n| !dm.is_failed(n)).collect()
    }

    /// Shut the cluster down: the head worker pool drains (in-flight jobs
    /// finish, pool threads are joined), then workers receive shutdown
    /// events and their threads are joined. With
    /// [`OmpcConfig::warm_worker_keepalive`], a healthy worker pool is
    /// *parked* for the next compatible device lifetime instead of joined:
    /// every device memory is cleared by a reset round-trip and the event
    /// counters restart, so adoption is indistinguishable from a cold start
    /// except for the missing spawn cost. Pools that saw a node failure are
    /// never parked. Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        let start = Instant::now();
        // Release the test-only hold gate and drain the async data path
        // first — an in-flight prefetch must land (or fail fast) before the
        // region pool and the workers go away — then drain the region pool:
        // jobs in both pools talk to the workers through the event system.
        self.debug_hold_async_transfers(false);
        self.transfer_pool.drain();
        self.pool.drain();
        if self.config.warm_worker_keepalive && self.try_park_workers() {
            self.report.lock().shutdown_time = start.elapsed();
            return;
        }
        for node in 1..=self.num_workers {
            let _ = self.events.shutdown(node);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.report.lock().shutdown_time = start.elapsed();
    }

    /// Try to park this device's workers for adoption by a later lifetime.
    /// Returns `false` (caller falls back to a cold shutdown) when any node
    /// failed, any reset round-trip fails, or the world was already taken.
    fn try_park_workers(&mut self) -> bool {
        {
            let dm = self.dm.lock();
            if (1..=self.num_workers).any(|n| dm.is_failed(n)) {
                return false;
            }
        }
        // Clear every worker's device memory now, synchronously: an error
        // (a dying handler, a wedged gate) disqualifies the pool.
        for node in 1..=self.num_workers {
            if self.events.reset(node).is_err() {
                return false;
            }
        }
        let Some(world) = self.world.take() else { return false };
        // A completion (or prefetch-train) notice of an already-drained
        // reply must not leak into the adopting lifetime as a stale message.
        while self.events.communicator().try_recv(None, Some(COMPLETION_TAG)).is_some() {}
        while self.events.communicator().try_recv(None, Some(PREFETCH_TAG)).is_some() {}
        self.events.reset_counters();
        WARM_WORKERS.lock().push((
            warm_key(self.num_workers, &self.config),
            WarmWorkers {
                world,
                kernels: Arc::clone(&self.kernels),
                events: Arc::clone(&self.events),
                worker_handles: self.worker_handles.drain(..).collect(),
            },
        ));
        true
    }

    /// Execute a queue of regions back to back with **cross-region
    /// prefetch**: while region *i* computes, the enter-data inputs of up
    /// to [`OmpcConfig::prefetch_depth`] queued regions stream to their
    /// predicted workers on the dedicated transfer pool, so region *i+1*
    /// starts with its data already resident (or in flight, in which case
    /// its first readers await instead of re-submitting). Returns one
    /// [`RegionReport`] per region, in order; the first error aborts the
    /// pipeline (transfers already in flight for later regions resolve on
    /// their own and are rolled back or adopted by whatever runs next).
    pub fn run_pipeline(&self, regions: Vec<TargetRegion<'_>>) -> OmpcResult<Vec<RegionReport>> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        let mut parts: Vec<Option<(RegionGraph, HashMap<usize, HostFn>)>> =
            regions.into_iter().map(|r| Some(r.into_parts())).collect();
        let mut reports = Vec::with_capacity(parts.len());
        for i in 0..parts.len() {
            self.prefetch_ahead(&parts, i);
            let (graph, host_fns) = parts[i].take().expect("pipeline region executed twice");
            if graph.is_empty() {
                reports.push(RegionReport::default());
                continue;
            }
            reports.push(self.execute_region(graph, host_fns)?);
        }
        Ok(reports)
    }

    /// Plan and launch the prefetches that may overlap region `next` (the
    /// one about to execute): for each queued region within
    /// `prefetch_depth`, stream its enter-data / first-read inputs to the
    /// worker its consuming task is predicted to run on.
    ///
    /// Planning rules:
    /// - **hazards**: any buffer still touched by an earlier queued region
    ///   (including the one about to run) is skipped — its contents or
    ///   residency will change before the target region consumes it;
    /// - **never duplicate**: a buffer whose latest version is already
    ///   worker-resident, or already in flight, is skipped;
    /// - **destination**: the consuming task's node in the target region's
    ///   schedule, planned against the current residency view (prefetch
    ///   only adds holders, never changes who holds the latest version, so
    ///   the real run's schedule sees the same pins);
    /// - **failure**: a booking towards a node that dies before (or while)
    ///   the bytes move is rolled back by the job itself and the consuming
    ///   region re-sources from the survivors.
    fn prefetch_ahead(&self, parts: &[Option<(RegionGraph, HashMap<usize, HostFn>)>], next: usize) {
        let depth = self.config.prefetch_depth;
        if depth == 0 || next >= parts.len() {
            return;
        }
        let alive = self.alive_workers();
        if alive.is_empty() {
            return;
        }
        let graph_buffers = |graph: &RegionGraph| -> BTreeSet<BufferId> {
            graph.tasks().iter().flat_map(|t| t.dependences.iter().map(|d| d.buffer)).collect()
        };
        let mut hazards: BTreeSet<BufferId> = match &parts[next] {
            Some((graph, _)) => graph_buffers(graph),
            None => BTreeSet::new(),
        };
        let platform = Platform::cluster(alive.len());
        let mut singles: Vec<TransferPlan> = Vec::new();
        let mut train_batches: BTreeMap<NodeId, Vec<TransferPlan>> = BTreeMap::new();
        let end = parts.len().min(next + 1 + depth);
        for part in parts.iter().take(end).skip(next + 1) {
            let Some((graph, _)) = part else { continue };
            // The first entering or reading task per buffer decides the
            // prefetch reason and destination.
            let mut cands: BTreeMap<BufferId, (usize, TransferReason)> = BTreeMap::new();
            for task in graph.tasks() {
                match &task.kind {
                    TaskKind::EnterData { buffer, map } => {
                        if matches!(map, MapType::To | MapType::ToFrom | MapType::ToResident) {
                            cands.entry(*buffer).or_insert((task.id.0, TransferReason::EnterData));
                        }
                    }
                    TaskKind::Target { .. } => {
                        for dep in &task.dependences {
                            if dep.dep_type.reads() {
                                cands
                                    .entry(dep.buffer)
                                    .or_insert((task.id.0, TransferReason::Input));
                            }
                        }
                    }
                    _ => {}
                }
            }
            if !cands.is_empty() {
                let residency = self.dm.lock().latest_on_workers();
                let assignment = RuntimePlan::region_assignment_on(
                    graph,
                    &self.buffers,
                    &platform,
                    &self.config,
                    &alive,
                    &residency,
                );
                let mut dm = self.dm.lock();
                let ticket = dm.open_ticket();
                for (buffer, (task, reason)) in cands {
                    if hazards.contains(&buffer) {
                        continue;
                    }
                    let Some(&node) = assignment.get(task) else { continue };
                    if node == HEAD_NODE {
                        continue;
                    }
                    if !dm.is_registered(buffer) {
                        let bytes = self.buffers.size_of(buffer).unwrap_or(0) as u64;
                        dm.register_host_buffer(buffer, bytes);
                    }
                    if dm.retrieve_source(buffer).is_some() || dm.buffer_in_flight(buffer) {
                        continue;
                    }
                    let Some(plan) = dm.begin_inflight(buffer, node, reason, ticket) else {
                        continue;
                    };
                    // MPI prefetches from the head batch into per-node
                    // trains on the reserved tag; everything else moves as
                    // an individual async job.
                    if matches!(self.config.backend, BackendKind::Mpi) && plan.from == HEAD_NODE {
                        train_batches.entry(node).or_default().push(plan);
                    } else {
                        singles.push(plan);
                    }
                }
            }
            hazards.extend(graph_buffers(graph));
        }
        for plan in singles {
            self.spawn_transfer_job(plan, "cross-region prefetch");
        }
        for (node, plans) in train_batches {
            self.spawn_train_job(node, plans);
        }
    }

    /// Block until this caller is admitted: FIFO over arrival order, at
    /// most [`OmpcConfig::max_concurrent_regions`] regions inside at once.
    /// Records an `Admission` span on the device recorder when the caller
    /// actually waited.
    fn admit(&self) -> RegionLease<'_> {
        let limit = self.config.admission_limit();
        let t0 = self.telemetry.start();
        let mut gate = self.admission.lock();
        let ticket = gate.next_ticket;
        gate.next_ticket += 1;
        let mut waited = false;
        while gate.serving != ticket || gate.running >= limit {
            waited = true;
            self.admission_cv.wait(&mut gate);
        }
        gate.serving += 1;
        gate.running += 1;
        drop(gate);
        if waited && self.telemetry.spans_enabled() {
            self.telemetry.record(
                Span::new(SpanPhase::Admission, HEAD_NODE, t0, monotonic_us())
                    .detail(format!("admission limit {limit}")),
            );
        }
        RegionLease { device: self, region: UNATTRIBUTED }
    }

    /// Stream this region's `map(to:)` inputs through the asynchronous
    /// prefetch engine ([`OmpcConfig::enter_data_async`]): each enter-data
    /// payload is booked in the in-flight table and pushed by the transfer
    /// pool while the backend spins up, so the consuming tasks await an
    /// already-moving transfer instead of submitting it inline. The
    /// booking carries the same reason and source the synchronous path
    /// would plan, and `execute_planned` adopts the deferred records into
    /// this region's namespace — the transfer plans stay byte-identical.
    fn stream_region_inputs(&self, graph: &RegionGraph, assignment: &[NodeId]) {
        // With collectives enabled, a buffer this region distributes to
        // k ≥ `collective_min_fanout` destinations is booked as ONE
        // broadcast tree under one shared ticket — waiters still resolve
        // per-destination through the in-flight table — and rides a single
        // transfer-pool job. Everything else (and everything when the knob
        // is off) follows the exact per-plan path below.
        let mut broadcast_buffers: BTreeSet<BufferId> = BTreeSet::new();
        if let Some(threshold) = self.config.collective_threshold() {
            let wanted = Self::collective_destinations(graph, assignment);
            let mut jobs: Vec<BroadcastSpec> = Vec::new();
            {
                let mut dm = self.dm.lock();
                for (buffer, mut dests) in wanted {
                    if !dm.is_registered(buffer) || dm.buffer_in_flight(buffer) {
                        continue;
                    }
                    dests.retain(|&node, _| !dm.is_present(buffer, node) && !dm.is_failed(node));
                    if dests.len() < threshold {
                        continue;
                    }
                    let Some(source) = dm.latest(buffer) else { continue };
                    let ticket = dm.open_ticket();
                    let mut destinations = Vec::with_capacity(dests.len());
                    for (&node, &reason) in &dests {
                        if dm.begin_inflight(buffer, node, reason, ticket).is_some() {
                            destinations.push(node);
                        }
                    }
                    if destinations.is_empty() {
                        continue;
                    }
                    broadcast_buffers.insert(buffer);
                    jobs.push(BroadcastSpec {
                        buffer,
                        bytes: dm.bytes_of(buffer),
                        source,
                        destinations,
                        chunk_bytes: self.config.collective_chunk_bytes() as u64,
                    });
                }
            }
            for spec in jobs {
                self.spawn_broadcast_job(spec);
            }
        }
        let mut jobs: Vec<TransferPlan> = Vec::new();
        {
            let mut dm = self.dm.lock();
            let ticket = dm.open_ticket();
            for task in graph.tasks() {
                let TaskKind::EnterData { buffer, map } = task.kind else { continue };
                if !matches!(map, MapType::To | MapType::ToFrom | MapType::ToResident) {
                    continue;
                }
                if broadcast_buffers.contains(&buffer) {
                    continue;
                }
                let Some(&node) = assignment.get(task.id.0) else { continue };
                if node == HEAD_NODE {
                    continue;
                }
                if let Some(plan) =
                    dm.begin_inflight(buffer, node, TransferReason::EnterData, ticket)
                {
                    jobs.push(plan);
                }
            }
        }
        for plan in jobs {
            self.spawn_transfer_job(plan, "streamed enter-data");
        }
    }

    /// The one-to-many distribution demand of a planned region: for every
    /// buffer that no task of the region writes, the worker nodes that will
    /// need a copy — enter-data placements (classified
    /// [`TransferReason::EnterData`]) and readers of target tasks
    /// ([`TransferReason::Input`]; enter-data wins when a node is both).
    fn collective_destinations(
        graph: &RegionGraph,
        assignment: &[NodeId],
    ) -> BTreeMap<BufferId, BTreeMap<NodeId, TransferReason>> {
        // Only *kernel* writes disqualify a buffer: a target task writing
        // it mid-region invalidates pre-distributed copies. The synthetic
        // output dependence an enter-data task carries for ordering is the
        // very distribution step the broadcast replaces.
        let written: BTreeSet<BufferId> = graph
            .tasks()
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::Target { .. }))
            .flat_map(|t| t.dependences.iter().filter(|d| d.dep_type.writes()).map(|d| d.buffer))
            .collect();
        let mut wanted: BTreeMap<BufferId, BTreeMap<NodeId, TransferReason>> = BTreeMap::new();
        for task in graph.tasks() {
            let Some(&node) = assignment.get(task.id.0) else { continue };
            if node == HEAD_NODE {
                continue;
            }
            match &task.kind {
                TaskKind::EnterData { buffer, map }
                    if matches!(map, MapType::To | MapType::ToFrom | MapType::ToResident)
                        && !written.contains(buffer) =>
                {
                    wanted.entry(*buffer).or_default().insert(node, TransferReason::EnterData);
                }
                TaskKind::Target { .. } => {
                    for dep in &task.dependences {
                        if dep.dep_type.reads() && !written.contains(&dep.buffer) {
                            wanted
                                .entry(dep.buffer)
                                .or_default()
                                .entry(node)
                                .or_insert(TransferReason::Input);
                        }
                    }
                }
                _ => {}
            }
        }
        wanted
    }

    /// Distribute the read-only one-to-many inputs of an already-planned
    /// region as binomial broadcast trees, synchronously, before the
    /// backend dispatches its first task. Only runs with
    /// [`OmpcConfig::collective_min_fanout`] set and only over buffers
    /// reaching at least that many destinations in this planning step —
    /// everything below the threshold is left exactly to the per-task star
    /// machinery, byte-identically to the collectives-off path. Delivered
    /// edges are logged (with the feeder that actually carried the bytes)
    /// under the region's namespace; failed destinations are simply not
    /// recorded as holders, so the backend re-sources them per-task.
    fn predistribute_collectives(
        &self,
        graph: &RegionGraph,
        assignment: &[NodeId],
        region: u64,
        telemetry: &Telemetry,
    ) {
        let Some(threshold) = self.config.collective_threshold() else { return };
        let chunk = self.config.collective_chunk_bytes() as u64;
        for (buffer, mut dests) in Self::collective_destinations(graph, assignment) {
            let (source, bytes) = {
                let dm = self.dm.lock();
                if !dm.is_registered(buffer) || dm.buffer_in_flight(buffer) {
                    // An async booking (streamed enter-data, cross-region
                    // prefetch) owns the buffer's movement; its waiters
                    // resolve through the in-flight table instead.
                    continue;
                }
                dests.retain(|&node, _| !dm.is_present(buffer, node) && !dm.is_failed(node));
                let Some(source) = dm.latest(buffer) else { continue };
                (source, dm.bytes_of(buffer))
            };
            if dests.len() < threshold {
                continue;
            }
            let payload = if source == HEAD_NODE {
                match self.buffers.get(buffer) {
                    Ok(data) => Some(data),
                    Err(_) => continue,
                }
            } else {
                None
            };
            let spec = BroadcastSpec {
                buffer,
                bytes: payload.as_ref().map(|d| d.len() as u64).unwrap_or(bytes),
                source,
                destinations: dests.keys().copied().collect(),
                chunk_bytes: chunk,
            };
            let outcome = run_broadcast(&self.events, telemetry, &spec, payload.as_deref());
            let mut dm = self.dm.lock();
            for edge in &outcome.delivered {
                let reason = dests.get(&edge.to).copied().unwrap_or(TransferReason::Input);
                dm.note_broadcast_delivery(region, buffer, edge.from, edge.to, reason);
            }
        }
    }

    /// Submit one booked broadcast tree to the transfer pool: the job runs
    /// the tree, retargets each deferred record whose payload was fed by a
    /// different node than planned (tree relays, rescues), and resolves
    /// every destination's in-flight booking individually — a tree is one
    /// ticket whose waiters resolve per-destination.
    fn spawn_broadcast_job(&self, spec: BroadcastSpec) {
        let events = Arc::clone(&self.events);
        let buffers = Arc::clone(&self.buffers);
        let dm = Arc::clone(&self.dm);
        let cv = Arc::clone(&self.inflight_cv);
        let hold = Arc::clone(&self.async_hold);
        let telemetry = Arc::clone(&self.telemetry);
        let fallback = spec.clone();
        let submitted = self.transfer_pool.submit_closure(Box::new(move || {
            Self::wait_hold(&hold);
            let payload = if spec.source == HEAD_NODE {
                match buffers.get(spec.buffer) {
                    Ok(data) => Some(data),
                    Err(e) => {
                        let mut dm = dm.lock();
                        for &node in &spec.destinations {
                            dm.finish_inflight(spec.buffer, node, Err(e.clone()));
                        }
                        drop(dm);
                        cv.notify_all();
                        return;
                    }
                }
            } else {
                None
            };
            let spec = BroadcastSpec {
                bytes: payload.as_ref().map(|d| d.len() as u64).unwrap_or(spec.bytes),
                ..spec
            };
            let outcome = run_broadcast(&events, &telemetry, &spec, payload.as_deref());
            let mut dm = dm.lock();
            for edge in &outcome.delivered {
                if edge.from != spec.source {
                    dm.retarget_deferred_from(spec.buffer, edge.to, edge.from);
                }
                dm.finish_inflight(spec.buffer, edge.to, Ok(()));
            }
            for (node, error) in &outcome.failed {
                dm.finish_inflight(spec.buffer, *node, Err(error.clone()));
            }
            drop(dm);
            cv.notify_all();
        }));
        if submitted.is_err() {
            let mut dm = self.dm.lock();
            for &node in &fallback.destinations {
                dm.finish_inflight(fallback.buffer, node, Err(OmpcError::ShutDown));
            }
            drop(dm);
            self.inflight_cv.notify_all();
        }
    }

    /// Execute a region graph through the unified execution core. Called by
    /// [`TargetRegion::run`]. Safe to call from multiple client threads at
    /// once: callers pass the admission gate in arrival order, each
    /// execution gets its own region epoch (the namespace of its transfer
    /// log and telemetry spans), and the scheduler places each admitted
    /// region against the load the earlier tenants still hold.
    pub(crate) fn execute_region(
        &self,
        graph: RegionGraph,
        host_fns: HashMap<usize, HostFn>,
    ) -> OmpcResult<RegionReport> {
        self.execute_region_recorded(graph, host_fns).map(|(report, _)| report)
    }

    /// [`ClusterDevice::execute_region`], additionally returning the
    /// execution's own [`RunRecord`]. Concurrent clients read their
    /// region's record from here — [`ClusterDevice::last_run_record`]
    /// only ever exposes whichever execution stored last.
    pub(crate) fn execute_region_recorded(
        &self,
        graph: RegionGraph,
        host_fns: HashMap<usize, HostFn>,
    ) -> OmpcResult<(RegionReport, RunRecord)> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        if graph.is_empty() {
            return Ok((RegionReport::default(), RunRecord::default()));
        }
        let graph = Arc::new(graph);
        let mut lease = self.admit();
        let sched_start = Instant::now();
        // Plan over the workers that are still alive: a node declared
        // failed in an earlier region stays excommunicated for the rest of
        // the device lifetime.
        let alive = self.alive_workers();
        if alive.is_empty() {
            return Err(OmpcError::InvalidConfig(
                "every worker node has failed; no survivors to execute the region".to_string(),
            ));
        }
        // Open a new region epoch, register every referenced buffer that
        // is not already resident from an earlier region (host copy lives
        // on the head node until data movement says otherwise), mark
        // keep-resident mappings, and snapshot the residency view the
        // planner pins against.
        let (region, residency): (u64, ResidencyMap) = {
            let mut dm = self.dm.lock();
            let region = dm.begin_region();
            for task in graph.tasks() {
                for dep in &task.dependences {
                    if !dm.is_registered(dep.buffer) {
                        let bytes = self.buffers.size_of(dep.buffer).unwrap_or(0) as u64;
                        dm.register_host_buffer(dep.buffer, bytes);
                    }
                }
                if let TaskKind::EnterData { buffer, map } = task.kind {
                    if map.keeps_resident() {
                        dm.mark_resident(buffer);
                    }
                }
            }
            (region, dm.latest_on_workers())
        };
        lease.region = region;
        // Region-scoped telemetry: every span this execution records
        // carries the region id, so overlapped tenants render as separate
        // timeline rows and never interleave their span vectors.
        let telemetry = self.telemetry.scoped(region);
        let sched_t0 = telemetry.start();
        // Seed the schedule with the compute the admitted-but-unfinished
        // regions already reserved on each worker: an incremental
        // admission-time placement instead of a full HEFT re-run over all
        // tenants. Serial executions see an empty table and plan exactly
        // as before.
        let load: Vec<f64> = {
            let table = self.inflight_load.lock();
            alive.iter().map(|n| table.values().filter_map(|per| per.get(n)).sum()).collect()
        };
        let plan = RuntimePlan {
            assignment: RuntimePlan::region_assignment_with_load(
                &graph,
                &self.buffers,
                &Platform::cluster(alive.len()),
                &self.config,
                &alive,
                &residency,
                &load,
            ),
            window: self.config.inflight_window(),
        };
        // Reserve this region's own estimated compute per worker for the
        // benefit of the next admitted tenant; released with the lease.
        {
            let mut reserved: HashMap<NodeId, f64> = HashMap::new();
            for task in graph.tasks() {
                if let TaskKind::Target { cost_hint, .. } = task.kind {
                    if let Some(&node) = plan.assignment.get(task.id.0) {
                        if node != HEAD_NODE {
                            *reserved.entry(node).or_insert(0.0) += cost_hint;
                        }
                    }
                }
            }
            self.inflight_load.lock().insert(region, reserved);
        }
        let schedule_time = sched_start.elapsed();
        if telemetry.spans_enabled() {
            telemetry.record(
                Span::new(SpanPhase::Schedule, HEAD_NODE, sched_t0, monotonic_us())
                    .detail(format!("{} task(s), {} alive worker(s)", graph.len(), alive.len())),
            );
        }
        // Region-level map(to:) inputs stream through the async prefetch
        // engine while the backend starts up.
        if self.config.enter_data_async {
            self.stream_region_inputs(&graph, &plan.assignment);
        }

        let exec_start = Instant::now();
        let record =
            self.execute_planned(Arc::clone(&graph), host_fns, &plan, region, &telemetry)?;
        let execution_time = exec_start.elapsed();

        // `data_events` / `bytes_moved` derive from this region's own
        // namespaced transfer log (already attached to the record by
        // `execute_planned`), not from global-counter deltas — so they are
        // exact, and assertable, even when other regions move data
        // concurrently with this execution.
        let report = RegionReport {
            region,
            schedule_time,
            execution_time,
            tasks_executed: graph.len(),
            target_tasks: graph.tasks().iter().filter(|t| t.kind.is_target()).count(),
            peak_in_flight: record.peak_in_flight,
            data_events: record.transfers.len(),
            bytes_moved: record.transfers.iter().map(|t| t.bytes).sum(),
            failures: record.failures.len(),
            reexecuted_tasks: record.reexecuted.len(),
        };
        self.report.lock().regions.push(report.clone());
        Ok((report, record))
    }

    /// Execute an already-planned region graph and return the core's
    /// decision record. `region` is the execution's transfer-log and
    /// telemetry namespace; `telemetry` is the region-scoped recorder
    /// built by the caller.
    fn execute_planned(
        &self,
        graph: Arc<RegionGraph>,
        host_fns: HashMap<usize, HostFn>,
        plan: &RuntimePlan,
        region: u64,
        telemetry: &Arc<Telemetry>,
    ) -> OmpcResult<RunRecord> {
        // Triggers naming a node that already died in an earlier region
        // are spent: re-firing them would re-declare the failure here. The
        // dead nodes themselves carry over as *prior* failures, so this
        // region's recovery never counts them among the survivors.
        let (fault_plan, prior_dead) = {
            let dm = self.dm.lock();
            let plan = FaultPlan {
                events: self
                    .config
                    .fault_plan
                    .events
                    .iter()
                    .copied()
                    .filter(|e| !dm.is_failed(e.node))
                    .collect(),
                task_errors: self.config.fault_plan.task_errors.clone(),
            };
            let dead: Vec<NodeId> = (1..=self.num_workers).filter(|&n| dm.is_failed(n)).collect();
            (plan, dead)
        };
        // A plan naming an already-excommunicated node is a configuration
        // error, not a recoverable failure: the recovery machinery moves
        // tasks off nodes that die *during* a run, while a long-dead node
        // would either fake-complete the task without executing it (no
        // active fault subsystem) or bounce it back to the same dead node
        // forever (prior failures are never re-declared, so nothing ever
        // replans it). Reject up front with a pointer at the fix.
        if let Some(&node) = plan.assignment.iter().find(|n| prior_dead.contains(n)) {
            return Err(OmpcError::InvalidConfig(format!(
                "plan assigns a task to worker node {node}, which was declared failed in an \
                 earlier region and stays excommunicated; plan over ClusterDevice::alive_workers()"
            )));
        }
        let faults = FaultState::from_config(
            &fault_plan,
            self.config.heartbeat_period_ms,
            self.config.heartbeat_miss_threshold,
            self.num_workers,
        )?
        .map(|f| f.with_replan(self.config.replan_on_failure).with_prior_failures(&prior_dead));
        // Transfers planned between regions (lazy host flushes through
        // `buffer_data`) belong to no run; clear the device-level
        // namespace — and only it, an overlapped region's in-progress log
        // lives in its own namespace and must survive untouched — so this
        // run's record contains exactly its own transfers. Then adopt the
        // deferred records of async transfers (async enter-data /
        // cross-region prefetch / streamed map-to inputs) whose buffers
        // this region consumes: the record reports them exactly where the
        // synchronous path would have planned them, keeping async and sync
        // transfer plans comparable. Bookings for other (later) regions
        // stay deferred.
        {
            let mut dm = self.dm.lock();
            dm.take_transfer_log_in(UNATTRIBUTED);
            let consumed: BTreeSet<BufferId> =
                graph.tasks().iter().flat_map(|t| t.dependences.iter().map(|d| d.buffer)).collect();
            dm.adopt_deferred_for(&consumed, region);
        }
        // Collective pre-distribution: one-to-many read-only inputs ship
        // as binomial broadcast trees before the first task dispatches
        // (no-op unless `collective_min_fanout` is set; async-booked
        // buffers are skipped — their broadcast already rides the
        // transfer pool).
        if !matches!(self.config.backend, BackendKind::Sim) {
            self.predistribute_collectives(&graph, &plan.assignment, region, telemetry);
        }
        let mut core = match faults {
            Some(faults) => RuntimeCore::with_faults(graph.as_ref(), plan, faults),
            None => RuntimeCore::new(graph.as_ref(), plan),
        };
        core.set_telemetry(Arc::clone(telemetry));
        let result = match self.config.backend {
            BackendKind::Threaded => {
                let backend = ThreadedBackend::new(
                    &self.pool,
                    Arc::clone(&self.events),
                    Arc::clone(&self.buffers),
                    Arc::clone(&self.dm),
                    region,
                    graph,
                    host_fns,
                    &self.config,
                    Arc::clone(telemetry),
                    Arc::clone(&self.inflight_cv),
                );
                backend.execute(&mut core)
            }
            BackendKind::Mpi => {
                let backend = MpiBackend::new(
                    Arc::clone(&self.events),
                    Arc::clone(&self.buffers),
                    Arc::clone(&self.dm),
                    region,
                    graph,
                    host_fns,
                    &self.config,
                    Arc::clone(telemetry),
                    Arc::clone(&self.notice_router),
                );
                backend.execute(&mut core)
            }
            BackendKind::Sim => Err(OmpcError::InvalidConfig(
                "a ClusterDevice cannot drive the simulated backend; use the simulate_ompc* \
                 entry points instead"
                    .to_string(),
            )),
        };
        let mut record = core.record();
        // The data manager logged every transfer this run planned under
        // its region namespace (including any planned for work that later
        // failed and rolled back — those entries were withdrawn); attach
        // exactly that namespace so residency wins are assertable per run
        // and an overlapped tenant's log is never mixed in.
        record.transfers = self.dm.lock().take_transfer_log_in(region);
        // Drain the spans this run produced (head-side scheduling and
        // data-path spans plus worker stamps shipped home in the replies)
        // so each record owns exactly its own timeline, then append
        // whatever accumulated on the device recorder since the last
        // drain (async prefetch jobs, admission waits). Empty unless the
        // device runs at `TelemetryLevel::Spans`.
        record.spans = telemetry.take_spans();
        record.spans.extend(self.telemetry.take_spans());
        *self.last_record.lock() = Some(record.clone());
        result?;
        Ok(record)
    }

    /// Execute an abstract [`WorkloadGraph`] on the real cluster under an
    /// explicit [`RuntimePlan`], returning the execution core's decision
    /// record.
    ///
    /// The workload is materialized as a region of no-op target tasks, one
    /// per workload task, connected through per-task output buffers of the
    /// workload's output sizes — the threaded mirror of what
    /// [`crate::sim_runtime::simulate_ompc_with_plan`] executes on the
    /// virtual cluster. This is the entry point of the backend-equivalence
    /// tests: both backends must make identical scheduling and dispatch
    /// decisions for the same workload and plan.
    ///
    /// A worker-side failure during the run (e.g. an injected task error)
    /// returns the propagated [`OmpcError`] instead of hanging; the partial
    /// decision record stays available through
    /// [`ClusterDevice::last_run_record`].
    ///
    /// ```
    /// use ompc_core::model::WorkloadGraph;
    /// use ompc_core::prelude::*;
    ///
    /// let mut graph = ompc_sched::TaskGraph::new();
    /// for _ in 0..3 {
    ///     graph.add_task(0.001);
    /// }
    /// graph.add_edge(0, 1, 64);
    /// graph.add_edge(1, 2, 64);
    /// let workload = WorkloadGraph::new(graph, vec![64; 3]);
    ///
    /// let mut device = ClusterDevice::spawn(2);
    /// let plan = RuntimePlan { assignment: vec![1, 1, 2], window: 4 };
    /// let record = device.run_workload(&workload, &plan).unwrap();
    /// assert_eq!(record.completion_order, vec![0, 1, 2]);
    /// device.shutdown();
    /// ```
    pub fn run_workload(
        &self,
        workload: &WorkloadGraph,
        plan: &RuntimePlan,
    ) -> OmpcResult<RunRecord> {
        if self.shut_down {
            return Err(OmpcError::ShutDown);
        }
        if workload.is_empty() {
            return Ok(RunRecord::default());
        }
        let noop = *self
            .workload_kernel
            .get_or_init(|| self.kernels.register_fn("workload-task", 1e-6, |_| {}));
        let buffers: Vec<BufferId> = workload
            .output_bytes
            .iter()
            .map(|&bytes| self.buffers.register(vec![0u8; bytes as usize]))
            .collect();
        let mut region = RegionGraph::new();
        for t in 0..workload.len() {
            let mut deps = vec![Dependence::output(buffers[t])];
            for &pred in workload.graph.predecessors(t) {
                deps.push(Dependence::input(buffers[pred]));
            }
            region.add_task(
                TaskKind::Target { kernel: noop, cost_hint: workload.graph.tasks()[t].cost },
                deps,
                format!("w{t}"),
            );
        }
        // Workload runs pass the same admission gate and get their own
        // region epoch (transfer-log and telemetry namespace) — a
        // run_workload call is one more tenant over the shared pool.
        let mut lease = self.admit();
        let epoch = {
            let mut dm = self.dm.lock();
            let epoch = dm.begin_region();
            for (t, &buffer) in buffers.iter().enumerate() {
                if !dm.is_registered(buffer) {
                    dm.register_host_buffer(buffer, workload.output_bytes[t]);
                }
            }
            epoch
        };
        lease.region = epoch;
        let telemetry = self.telemetry.scoped(epoch);
        let record =
            self.execute_planned(Arc::new(region), HashMap::new(), plan, epoch, &telemetry);
        drop(lease);
        // The materialized buffers are private to this run: release their
        // device copies, data-manager entries, and host copies so repeated
        // `run_workload` calls on one device do not accumulate state.
        for &buffer in &buffers {
            let holders = self.dm.lock().remove(buffer);
            for holder in holders {
                if holder != HEAD_NODE {
                    let _ = self.events.delete(holder, buffer);
                }
            }
            let _ = self.buffers.remove(buffer);
        }
        // De-materialize the transfer records: buffer `t` of the workload
        // coordinate system is task `t`'s output (the convention the
        // simulated backend records in), so cross-backend transfer sets
        // compare directly. The stored last_run_record is rewritten too —
        // both views of the run, successful or failed, must name the same
        // buffers.
        let index_of: HashMap<BufferId, u64> =
            buffers.iter().enumerate().map(|(t, &b)| (b, t as u64)).collect();
        let remap = |record: &mut RunRecord| {
            for transfer in &mut record.transfers {
                if let Some(&t) = index_of.get(&transfer.buffer) {
                    transfer.buffer = BufferId(t);
                }
            }
        };
        if let Some(last) = self.last_record.lock().as_mut() {
            remap(last);
        }
        record.map(|mut record| {
            remap(&mut record);
            record
        })
    }
}

impl Drop for ClusterDevice {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dependence;
    use std::sync::atomic::Ordering;

    #[test]
    fn listing1_chain_runs_end_to_end() {
        // The paper's Listing 1: foo then bar on vector A, with foo and bar
        // potentially on different worker nodes and A forwarded between
        // them worker-to-worker.
        let mut device = ClusterDevice::spawn(2);
        let foo = device.register_kernel_fn("foo", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let bar = device.register_kernel_fn("bar", 1e-5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 10.0).collect();
            args.set_f64s(0, &v);
        });

        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0, 2.0, 3.0, 4.0]);
        region.target(foo, vec![Dependence::inout(a)]);
        region.target(bar, vec![Dependence::inout(a)]);
        region.map_from(a);
        let report = region.run().unwrap();
        assert_eq!(report.target_tasks, 2);
        assert!(report.tasks_executed >= 4);
        assert!(report.bytes_moved > 0);

        assert_eq!(device.buffer_f64s(a).unwrap(), vec![20.0, 30.0, 40.0, 50.0]);
        device.shutdown();
        let dev_report = device.report();
        assert_eq!(dev_report.regions.len(), 1);
    }

    #[test]
    fn independent_tasks_spread_across_workers() {
        let mut device = ClusterDevice::spawn(3);
        let bump = device.register_kernel_fn("bump", 1e-4, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = device.target_region();
        let buffers: Vec<BufferId> = (0..6).map(|i| region.map_to_f64s(&[i as f64])).collect();
        for &b in &buffers {
            region.target(bump, vec![Dependence::inout(b)]);
        }
        for &b in &buffers {
            region.map_from(b);
        }
        region.run().unwrap();
        for (i, &b) in buffers.iter().enumerate() {
            assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
        }
        device.shutdown();
    }

    #[test]
    fn host_tasks_run_on_the_head_node() {
        let device = ClusterDevice::spawn(1);
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[5.0]);
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        region.host_task(vec![Dependence::input(a)], move |_| {
            flag2.store(true, Ordering::SeqCst);
        });
        region.run().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_region_is_a_noop() {
        let device = ClusterDevice::spawn(1);
        let region = device.target_region();
        let report = region.run().unwrap();
        assert_eq!(report.tasks_executed, 0);
    }

    #[test]
    fn warm_worker_keepalive_parks_and_adopts_across_lifetimes() {
        // An unusual (workers, communicators) pair keys this test's pool
        // apart from any other keepalive user in the process.
        let config =
            OmpcConfig { warm_worker_keepalive: true, num_communicators: 7, ..OmpcConfig::small() };
        let key = warm_key(5, &config);
        let parked = |key: &WarmKey| WARM_WORKERS.lock().iter().filter(|(k, _)| k == key).count();
        let before = parked(&key);

        let mut d1 = ClusterDevice::with_config(5, config.clone());
        let bump = d1.register_kernel_fn("bump", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });
        let mut region = d1.target_region();
        let a = region.map_to_f64s(&[1.0]);
        region.target(bump, vec![Dependence::inout(a)]);
        region.map_from(a);
        region.run().unwrap();
        assert_eq!(d1.buffer_f64s(a).unwrap(), vec![2.0]);
        d1.shutdown();
        assert_eq!(parked(&key), before + 1, "shutdown parks the healthy pool");

        let mut d2 = ClusterDevice::with_config(5, config.clone());
        assert_eq!(parked(&key), before, "the new lifetime adopted the parked pool");
        // The adopted pool serves a full second lifetime: fresh kernel ids
        // from 0, clean device memories, real execution.
        let scale = d2.register_kernel_fn("scale", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
            args.set_f64s(0, &v);
        });
        assert_eq!(scale, KernelId(0), "adoption restarts kernel ids like a cold start");
        let mut region = d2.target_region();
        let b = region.map_to_f64s(&[2.0, 4.0]);
        region.target(scale, vec![Dependence::inout(b)]);
        region.map_from(b);
        region.run().unwrap();
        assert_eq!(d2.buffer_f64s(b).unwrap(), vec![6.0, 12.0]);
        d2.shutdown();

        // Leave the process as we found it: adopt the parked pool and shut
        // its workers down cold.
        if let Some(warm) = adopt_warm_workers(&key) {
            for node in 1..=5 {
                let _ = warm.events.shutdown(node);
            }
            for handle in warm.worker_handles {
                let _ = handle.join();
            }
        }
    }

    #[test]
    fn warm_pool_soak_reuses_one_pool_and_never_parks_after_a_failure() {
        use crate::runtime::fault::FaultPlan;
        // A key no other test in the process uses: 3 workers × 9
        // communicators. Every lifetime below adopts (or parks into) this
        // slot and no other.
        let config =
            OmpcConfig { warm_worker_keepalive: true, num_communicators: 9, ..OmpcConfig::small() };
        let key = warm_key(3, &config);
        let parked = |key: &WarmKey| WARM_WORKERS.lock().iter().filter(|(k, _)| k == key).count();
        let before = parked(&key);

        // Soak: four adopt/run/park cycles over the *same* pool. Each
        // lifetime re-registers its kernels and must see ids restart from
        // 0 (the adoption reset), and each run must compute correctly on
        // the recycled device memories.
        for round in 0..4u32 {
            let mut device = ClusterDevice::with_config(3, config.clone());
            if round > 0 {
                assert_eq!(parked(&key), before, "round {round} adopted the parked pool");
            }
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let scale = device.register_kernel_fn("scale", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
                args.set_f64s(0, &v);
            });
            assert_eq!(
                (bump, scale),
                (KernelId(0), KernelId(1)),
                "round {round}: kernel ids restart from 0 like a cold start"
            );
            let mut region = device.target_region();
            let a = region.map_to_f64s(&[f64::from(round)]);
            region.target(bump, vec![Dependence::inout(a)]);
            region.target(scale, vec![Dependence::inout(a)]);
            region.map_from(a);
            region.run().unwrap();
            assert_eq!(device.buffer_f64s(a).unwrap(), vec![(f64::from(round) + 1.0) * 3.0]);
            device.shutdown();
            assert_eq!(parked(&key), before + 1, "round {round} parked the pool again");
        }

        // A mid-lifetime node failure disqualifies the pool: the adopting
        // device survives the failure (recovery re-executes the lost work)
        // but its shutdown must join the workers cold, not park them.
        {
            let fail_config = OmpcConfig {
                fault_plan: FaultPlan::none().fail_after_completions(1, 1),
                ..config.clone()
            };
            let mut device = ClusterDevice::with_config(3, fail_config);
            assert_eq!(parked(&key), before, "the faulting lifetime adopted the parked pool");
            let bump = device.register_kernel_fn("bump", 1e-6, |args| {
                let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
                args.set_f64s(0, &v);
            });
            let mut region = device.target_region();
            let buffers: Vec<BufferId> = (0..6).map(|i| region.map_to_f64s(&[i as f64])).collect();
            for &b in &buffers {
                region.target(bump, vec![Dependence::inout(b)]);
            }
            for &b in &buffers {
                region.map_from(b);
            }
            region.run().unwrap();
            for (i, &b) in buffers.iter().enumerate() {
                assert_eq!(device.buffer_f64s(b).unwrap(), vec![i as f64 + 1.0]);
            }
            assert!(
                !device.last_run_record().unwrap().failures.is_empty(),
                "the injected failure fired mid-lifetime"
            );
            assert_eq!(device.alive_workers(), vec![2, 3]);
            device.shutdown();
            assert_eq!(parked(&key), before, "a pool that saw a node failure is never parked");
        }

        // Leave the process as we found it (the failed pool was already
        // joined cold; nothing should be left under this key).
        assert_eq!(parked(&key), before);
    }

    #[test]
    fn shutdown_is_idempotent_and_regions_fail_afterwards() {
        let mut device = ClusterDevice::spawn(1);
        device.shutdown();
        device.shutdown();
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0]);
        let k = device.register_kernel_fn("noop", 1e-6, |_| {});
        region.target(k, vec![Dependence::inout(a)]);
        assert_eq!(region.run().unwrap_err(), OmpcError::ShutDown);
    }
}
