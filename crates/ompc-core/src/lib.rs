//! # ompc-core — the OMPC runtime
//!
//! A Rust reproduction of the runtime described in *The OpenMP Cluster
//! Programming Model* (Yviquel et al., ICPP 2022): a task-parallel
//! programming model in which annotated regions of code are offloaded to
//! the nodes of a cluster, with an MPI-based event system, automatic data
//! management, and HEFT static scheduling hidden behind OpenMP-style task
//! dependences.
//!
//! The crate provides two execution modes over **one** execution core. The
//! [`runtime`] module owns the shared OMPC protocol — static scheduling
//! consumed through a single interface ([`runtime::RuntimePlan`]), the
//! pipelined bounded-window dispatch loop ([`runtime::RuntimeCore`]), and
//! data-manager-driven forwarding — parameterized over an
//! [`runtime::ExecutionBackend`]:
//!
//! * **Real (threaded) mode** — [`cluster::ClusterDevice`] spawns one OS
//!   thread per worker node, communicates through the in-process MPI
//!   substrate (`ompc-mpi`), and executes real Rust kernels via
//!   [`runtime::ThreadedBackend`]. This is the mode the examples and
//!   integration tests use.
//! * **Simulated mode** — [`sim_runtime::simulate_ompc`] drives the same
//!   core over the deterministic virtual cluster of `ompc-sim` via
//!   [`runtime::SimBackend`], which is how the paper's 2–64-node
//!   experiments are regenerated on a small host.
//!
//! ## Module map (mirrors Fig. 2 and §4 of the paper)
//!
//! | Paper component | Module |
//! |---|---|
//! | OpenMP `target` front end (Listing 1) | [`region`], [`task`] |
//! | libomptarget agnostic layer + data maps | [`buffer`], [`data_manager`] |
//! | OMPC device plugin & event system (§4.2) | [`event`], [`protocol`], [`worker`] |
//! | HEFT task scheduler (§4.4) | `ompc-sched`, glued in [`model`], [`config`] |
//! | Unified execution core (§3.1 + §7 dispatch window) | [`runtime`] |
//! | Head-node orchestration (§3.1) | [`cluster`] (façade over [`runtime`]) |
//! | Fault tolerance (§3.1): injection / heartbeat detection / recovery | [`runtime::fault`], [`heartbeat`] |
//! | Virtual-cluster execution (§6 experiments) | [`sim_runtime`] (façade over [`runtime`]) |
//!
//! ## Quickstart
//!
//! ```
//! use ompc_core::prelude::*;
//!
//! let mut device = ClusterDevice::spawn(2);
//! let axpy = device.register_kernel_fn("axpy", 1e-6, |args| {
//!     let x = args.as_f64s(0);
//!     let mut y = args.as_f64s(1);
//!     for (yi, xi) in y.iter_mut().zip(&x) {
//!         *yi += 2.0 * xi;
//!     }
//!     args.set_f64s(1, &y);
//! });
//!
//! let mut region = device.target_region();
//! let x = region.map_to_f64s(&[1.0, 2.0]);
//! let y = region.map_to_f64s(&[10.0, 20.0]);
//! region.target(axpy, vec![Dependence::input(x), Dependence::inout(y)]);
//! region.map_from(y);
//! region.run().unwrap();
//! assert_eq!(device.buffer_f64s(y).unwrap(), vec![12.0, 24.0]);
//! device.shutdown();
//! ```

pub mod buffer;
pub mod cluster;
pub mod collective;
pub mod config;
pub mod data_manager;
pub mod event;
pub mod heartbeat;
pub mod kernel;
pub mod model;
pub mod protocol;
pub mod region;
pub mod runtime;
pub mod sim_runtime;
pub mod stats;
pub mod task;
pub mod types;
pub mod worker;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::buffer::BufferRegistry;
    pub use crate::cluster::ClusterDevice;
    pub use crate::config::{BackendKind, OmpcConfig, OverheadModel, SchedulerKind};
    pub use crate::data_manager::{DataManager, Ticket, TransferReason, TransferRecord};
    pub use crate::kernel::{FnKernel, Kernel, KernelArgs, KernelRegistry};
    pub use crate::model::WorkloadGraph;
    pub use crate::region::TargetRegion;
    pub use crate::runtime::{
        chrome_trace, clock_reads, critical_path, overhead_attribution, Attribution,
        ExecutionBackend, FailureRecord, FaultPlan, FaultTrigger, HeadWorkerPool, MpiBackend,
        ReplanEntry, ResidencyMap, RunRecord, RuntimeCore, RuntimePlan, SimBackend, Span,
        SpanPhase, TaskEvent, Telemetry, TelemetryLevel, ThreadedBackend,
    };
    pub use crate::sim_runtime::{
        sim_plan, simulate_ompc, simulate_ompc_outcome, simulate_ompc_outcome_traced,
        simulate_ompc_recorded, simulate_ompc_traced, simulate_ompc_with_plan, OmpcSimOutcome,
        OmpcSimResult,
    };
    pub use crate::stats::{DeviceReport, RegionReport};
    pub use crate::task::{RegionGraph, TaskKind};
    pub use crate::types::{
        BufferId, Dependence, DependenceType, KernelId, MapType, NodeId, OmpcError, OmpcResult,
        TaskId,
    };
}

pub use prelude::*;
