//! Execution reports produced by the runtime, used to reproduce the
//! overhead characterization of Fig. 7(a).

use std::time::Duration;

/// Timing breakdown of one target-region execution on the real (threaded)
/// cluster device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionReport {
    /// The region epoch the data manager assigned this execution (the
    /// tenant id under concurrent admission); `0` only for the default
    /// report of an empty region, which never entered the data manager.
    pub region: u64,
    /// Time spent building and statically scheduling the task graph.
    pub schedule_time: Duration,
    /// Time spent dispatching and executing the tasks (barrier to last
    /// completion).
    pub execution_time: Duration,
    /// Number of tasks executed.
    pub tasks_executed: usize,
    /// Number of target (kernel) tasks executed on worker nodes.
    pub target_tasks: usize,
    /// Highest number of simultaneously in-flight tasks the execution
    /// core's dispatch window reached (bounded by
    /// [`crate::config::OmpcConfig::max_inflight_tasks`]).
    pub peak_in_flight: usize,
    /// Number of data-movement events issued (submit, retrieve, exchange).
    pub data_events: usize,
    /// Total bytes moved between nodes (including head ↔ worker).
    pub bytes_moved: u64,
    /// Number of worker-node failures declared during the region (always 0
    /// without an injected [`crate::runtime::fault::FaultPlan`]).
    pub failures: usize,
    /// Number of distinct tasks executed more than once by fault recovery.
    pub reexecuted_tasks: usize,
}

impl RegionReport {
    /// Total wall time attributed to the region.
    pub fn total_time(&self) -> Duration {
        self.schedule_time + self.execution_time
    }

    /// Fraction of the total time spent in scheduling.
    pub fn schedule_fraction(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.schedule_time.as_secs_f64() / total
        }
    }
}

/// Lifetime timing of the whole cluster device (start-up and shutdown), the
/// remaining components of the Fig. 7(a) overhead breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceReport {
    /// Time from device creation to all worker gate threads being ready.
    pub startup_time: Duration,
    /// Time from the shutdown request to all worker threads having joined.
    pub shutdown_time: Duration,
    /// Reports of every region executed on the device, in order.
    pub regions: Vec<RegionReport>,
}

impl DeviceReport {
    /// Total wall time spent in runtime overhead (start-up, shutdown and
    /// scheduling) across the device lifetime.
    pub fn overhead_time(&self) -> Duration {
        self.startup_time
            + self.shutdown_time
            + self.regions.iter().map(|r| r.schedule_time).sum::<Duration>()
    }

    /// Total bytes moved across every region.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes_moved).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fraction_is_bounded() {
        let r = RegionReport {
            region: 1,
            schedule_time: Duration::from_millis(10),
            execution_time: Duration::from_millis(90),
            tasks_executed: 4,
            target_tasks: 2,
            peak_in_flight: 2,
            data_events: 3,
            bytes_moved: 1024,
            failures: 0,
            reexecuted_tasks: 0,
        };
        assert_eq!(r.total_time(), Duration::from_millis(100));
        assert!((r.schedule_fraction() - 0.1).abs() < 1e-9);
        let empty = RegionReport::default();
        assert_eq!(empty.schedule_fraction(), 0.0);
    }

    #[test]
    fn device_report_aggregates_regions() {
        let d = DeviceReport {
            startup_time: Duration::from_millis(5),
            shutdown_time: Duration::from_millis(3),
            regions: vec![
                RegionReport {
                    schedule_time: Duration::from_millis(1),
                    bytes_moved: 10,
                    ..Default::default()
                },
                RegionReport {
                    schedule_time: Duration::from_millis(2),
                    bytes_moved: 20,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(d.overhead_time(), Duration::from_millis(11));
        assert_eq!(d.total_bytes(), 30);
    }
}
