//! Host-side buffer registry: the head node's view of every mapped buffer.

use crate::types::{BufferId, OmpcError, OmpcResult};
use parking_lot::RwLock;
use std::collections::HashMap;

/// One registered buffer: its bytes plus a version counter bumped on every
/// [`BufferRegistry::set`], so payload caches can tell "same bytes as last
/// time" from "rewritten since".
#[derive(Debug, Default)]
struct Slot {
    data: Vec<u8>,
    version: u64,
}

/// The head node's storage for mapped buffers.
///
/// In OpenMP terms this is the host memory that `map` clauses copy from and
/// to; the worker nodes keep their own device copies (see
/// `crate::worker::DeviceMemory`), coordinated by the data manager.
#[derive(Debug, Default)]
pub struct BufferRegistry {
    buffers: RwLock<HashMap<u64, Slot>>,
    next: RwLock<u64>,
}

impl BufferRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register host data and obtain its buffer id.
    pub fn register(&self, data: Vec<u8>) -> BufferId {
        let mut next = self.next.write();
        let id = *next;
        *next += 1;
        self.buffers.write().insert(id, Slot { data, version: 0 });
        BufferId(id)
    }

    /// Register a zero-filled buffer of `size` bytes (the `map(alloc:)`
    /// analogue).
    pub fn register_uninit(&self, size: usize) -> BufferId {
        self.register(vec![0u8; size])
    }

    /// Size in bytes of a buffer.
    pub fn size_of(&self, id: BufferId) -> OmpcResult<usize> {
        self.buffers.read().get(&id.0).map(|s| s.data.len()).ok_or(OmpcError::UnknownBuffer(id))
    }

    /// Clone the current host contents of a buffer.
    pub fn get(&self, id: BufferId) -> OmpcResult<Vec<u8>> {
        self.buffers.read().get(&id.0).map(|s| s.data.clone()).ok_or(OmpcError::UnknownBuffer(id))
    }

    /// Clone the current host contents of a buffer together with its
    /// version, as one consistent snapshot. Payload caches key on the
    /// version: a cached frame with the same version is the same bytes.
    pub fn get_versioned(&self, id: BufferId) -> OmpcResult<(u64, Vec<u8>)> {
        self.buffers
            .read()
            .get(&id.0)
            .map(|s| (s.version, s.data.clone()))
            .ok_or(OmpcError::UnknownBuffer(id))
    }

    /// The version counter of a buffer: 0 at registration, bumped by every
    /// [`BufferRegistry::set`].
    pub fn version(&self, id: BufferId) -> OmpcResult<u64> {
        self.buffers.read().get(&id.0).map(|s| s.version).ok_or(OmpcError::UnknownBuffer(id))
    }

    /// Replace the host contents of a buffer (used when `map(from:)` /
    /// `map(tofrom:)` data returns from the cluster).
    pub fn set(&self, id: BufferId, data: Vec<u8>) -> OmpcResult<()> {
        let mut buffers = self.buffers.write();
        match buffers.get_mut(&id.0) {
            Some(slot) => {
                slot.data = data;
                slot.version += 1;
                Ok(())
            }
            None => Err(OmpcError::UnknownBuffer(id)),
        }
    }

    /// Remove a buffer entirely (after `map(release:)` / exit data).
    pub fn remove(&self, id: BufferId) -> OmpcResult<Vec<u8>> {
        self.buffers.write().remove(&id.0).map(|s| s.data).ok_or(OmpcError::UnknownBuffer(id))
    }

    /// Whether the buffer exists.
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.read().contains_key(&id.0)
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.buffers.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_set_remove() {
        let reg = BufferRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register(vec![1, 2, 3]);
        let b = reg.register_uninit(4);
        assert_eq!(reg.len(), 2);
        assert_ne!(a, b);
        assert_eq!(reg.get(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(reg.get(b).unwrap(), vec![0; 4]);
        assert_eq!(reg.size_of(a).unwrap(), 3);
        reg.set(a, vec![9]).unwrap();
        assert_eq!(reg.get(a).unwrap(), vec![9]);
        assert_eq!(reg.remove(a).unwrap(), vec![9]);
        assert!(!reg.contains(a));
        assert!(reg.contains(b));
    }

    #[test]
    fn unknown_buffer_errors() {
        let reg = BufferRegistry::new();
        let ghost = BufferId(42);
        assert_eq!(reg.get(ghost).unwrap_err(), OmpcError::UnknownBuffer(ghost));
        assert_eq!(reg.set(ghost, vec![]).unwrap_err(), OmpcError::UnknownBuffer(ghost));
        assert_eq!(reg.remove(ghost).unwrap_err(), OmpcError::UnknownBuffer(ghost));
        assert_eq!(reg.size_of(ghost).unwrap_err(), OmpcError::UnknownBuffer(ghost));
    }

    #[test]
    fn versions_bump_on_set_only() {
        let reg = BufferRegistry::new();
        let a = reg.register(vec![1, 2]);
        assert_eq!(reg.version(a).unwrap(), 0);
        assert_eq!(reg.get_versioned(a).unwrap(), (0, vec![1, 2]));
        reg.get(a).unwrap();
        assert_eq!(reg.version(a).unwrap(), 0, "reads do not bump the version");
        reg.set(a, vec![3]).unwrap();
        reg.set(a, vec![4]).unwrap();
        assert_eq!(reg.get_versioned(a).unwrap(), (2, vec![4]));
        assert_eq!(reg.version(BufferId(9)).unwrap_err(), OmpcError::UnknownBuffer(BufferId(9)));
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let reg = BufferRegistry::new();
        let ids: Vec<BufferId> = (0..10).map(|i| reg.register(vec![i as u8])).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
