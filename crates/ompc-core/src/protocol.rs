//! Wire format of the event system.
//!
//! Every event starts with a *new-event notification* sent to the
//! destination node on the reserved control tag. The notification carries
//! the event kind, its operands, and the `(tag, communicator)` pair that all
//! subsequent messages of this event will use — this is how the paper's
//! event system guarantees an exclusive channel per event (§4.2).
//!
//! Every dispatched event also produces exactly one **typed reply** on its
//! exclusive channel, an [`EventReply`]: `Ok(payload)` on success or
//! `Err(OmpcError)` when the handler failed. The error reply carries the
//! originating node and the event tag (wrapped as
//! [`OmpcError::RemoteEvent`]), so a worker-side failure — an unregistered
//! kernel, a missing buffer, a killed node — surfaces on the head node as a
//! propagated error instead of a reply that never arrives.

use crate::types::{BufferId, KernelId, NodeId, OmpcError, OmpcResult};
use ompc_mpi::{CommId, Tag};

/// Tag reserved for new-event notifications received by the gate thread.
pub const CONTROL_TAG: Tag = Tag(0);

/// Tag reserved for the head node's any-source completion channel: after a
/// worker sends a composite-task reply on the task's exclusive channel, it
/// posts a compact [`CompletionNotice`] to the head on this tag (world
/// communicator). The head discovers finished tasks by draining this one
/// well-known channel — O(messages arrived) per poll — instead of probing
/// every outstanding task channel; the per-task channel is consulted only
/// afterwards, for the reply payload already guaranteed to be present.
pub const COMPLETION_TAG: Tag = Tag(1);

/// Tag reserved for the prefetch completion lane: after a worker finishes
/// (or refuses) an [`EventRequest::SubmitTrain`], it posts one
/// [`CompletionNotice`] — carrying the train's envelope tag — to the head
/// on this tag. The asynchronous data path drains exactly one notice per
/// train it dispatched, keeping prefetch completions on their own reserved
/// channel instead of mixing with the task completion stream on
/// [`COMPLETION_TAG`].
pub const PREFETCH_TAG: Tag = Tag(2);

/// First tag usable by events (event tags are allocated upwards from here
/// and stay below the collective-reserved range).
pub const FIRST_EVENT_TAG: u64 = 3;

/// The action a new event asks the destination node to perform. These map
/// one-to-one to the operations a libomptarget device plugin must implement
/// (alloc, delete, submit, retrieve, exchange, execute) plus shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventRequest {
    /// Allocate `size` bytes of device memory for `buffer`.
    Alloc { buffer: BufferId, size: u64 },
    /// Free the device memory of `buffer`.
    Delete { buffer: BufferId },
    /// Receive the contents of `buffer` from the origin (data follows on
    /// the event channel).
    Submit { buffer: BufferId },
    /// Send the contents of `buffer` back to the origin on the event
    /// channel.
    Retrieve { buffer: BufferId },
    /// Send the contents of `buffer` to worker `to` on the event channel
    /// (the sending half of a worker-to-worker forward).
    ExchangeSend { buffer: BufferId, to: NodeId },
    /// Receive the contents of `buffer` from worker `from` on the event
    /// channel and acknowledge to the origin (the receiving half of a
    /// worker-to-worker forward).
    ExchangeRecv { buffer: BufferId, from: NodeId },
    /// Execute kernel `kernel` against the listed device buffers.
    Execute { kernel: KernelId, buffers: Vec<BufferId> },
    /// Run one whole task — data movement steps then kernel execution — on
    /// the destination node, producing a single reply when every step has
    /// finished. This is the [`crate::runtime::MpiBackend`]'s composite
    /// event: the head composes the task's recipe from the data manager's
    /// forwarding plan and carries it as one tagged message instead of
    /// blocking a head pool thread on each constituent event.
    Task(TaskSpec),
    /// Run several composite tasks bound for this node, batched into one
    /// tagged message (a *task train*). The worker runs the cars strictly
    /// in order but replies **per car** on each car's own exclusive
    /// `(tag, communicator)` channel, exactly as if the cars had arrived
    /// as individual [`Task`] notifications: the typed error protocol,
    /// zombie-gate refusals, and fault blame all stay per task. The head
    /// packs all ready tasks of one dispatch round bound for one node into
    /// a train, collapsing k control-tag messages into one.
    ///
    /// [`Task`]: EventRequest::Task
    TaskTrain(Vec<TrainCar>),
    /// Receive the contents of several buffers from the origin in one
    /// batched event (a *prefetch train*): the payloads follow on the
    /// train's envelope channel in listed order (MPI delivery is
    /// non-overtaking per `(source, communicator, tag)`), the worker stores
    /// each one, and a single typed reply acknowledges the whole train.
    /// After replying — or refusing, on a killed node — the worker posts
    /// one [`CompletionNotice`] on the reserved [`PREFETCH_TAG`] lane.
    /// This is how the asynchronous data path streams a queued region's
    /// enter-data inputs to one node while the current region computes,
    /// collapsing k submit events into one control message.
    SubmitTrain { buffers: Vec<BufferId> },
    /// Receive one buffer as a chunked collective payload stream and relay
    /// each frame onward: the node receives `[frame index u64][payload]`
    /// frames on the event's exclusive channel **from any source** (the
    /// planned parent, or a rescue source after a relay died), stores the
    /// reassembled buffer, and forwards every newly seen frame to each
    /// listed child on the child's own event channel — so an interior node
    /// of a broadcast tree fans frame `i` onward while frame `i + 1` is
    /// still inbound. Duplicate frames (possible during re-sourcing) are
    /// forwarded at most once and written at most once; one typed reply to
    /// the head acknowledges the fully assembled buffer.
    RelayRecv { buffer: BufferId, total_bytes: u64, chunk_bytes: u64, children: Vec<RelayChild> },
    /// Stream a locally resident buffer as collective payload frames to the
    /// listed children (the feeding half of a worker-sourced broadcast tree,
    /// and the rescue path when a relay died: the head points a surviving
    /// holder at the orphaned recipients). Replies once all frames are on
    /// the wire.
    RelayFeed { buffer: BufferId, chunk_bytes: u64, children: Vec<RelayChild> },
    /// Clear the worker's device memory and acknowledge: the head issues
    /// this between workloads when recycling warm workers, so a parked
    /// worker pool starts the next device lifetime from an empty state.
    Reset,
    /// Leave the gate loop and terminate the worker.
    Shutdown,
    /// Kill the worker's event loop for real (failure injection): the node
    /// stops executing events and answers every later one with an error
    /// reply, so in-flight peers never hang on it. Only [`Shutdown`]
    /// terminates the gate loop afterwards.
    ///
    /// [`Shutdown`]: EventRequest::Shutdown
    Kill,
}

impl EventRequest {
    /// Short name used in traces and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            EventRequest::Alloc { .. } => "alloc",
            EventRequest::Delete { .. } => "delete",
            EventRequest::Submit { .. } => "submit",
            EventRequest::Retrieve { .. } => "retrieve",
            EventRequest::ExchangeSend { .. } => "exchange-send",
            EventRequest::ExchangeRecv { .. } => "exchange-recv",
            EventRequest::Execute { .. } => "execute",
            EventRequest::Task(_) => "task",
            EventRequest::TaskTrain(_) => "task-train",
            EventRequest::SubmitTrain { .. } => "submit-train",
            EventRequest::RelayRecv { .. } => "relay-recv",
            EventRequest::RelayFeed { .. } => "relay-feed",
            EventRequest::Reset => "reset",
            EventRequest::Shutdown => "shutdown",
            EventRequest::Kill => "kill",
        }
    }
}

/// One downstream edge of a collective broadcast tree: where an
/// [`EventRequest::RelayRecv`] / [`EventRequest::RelayFeed`] node forwards
/// payload frames. The child's `(tag, comm)` is the **child's own** relay
/// event channel — frames from the parent and frames from a rescue source
/// land on the same exclusive channel, which is what lets a re-sourced
/// recipient stay oblivious to the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayChild {
    /// Destination node of the forwarded frames.
    pub node: NodeId,
    /// Tag of the child's relay event channel.
    pub tag: Tag,
    /// Communicator of the child's relay event channel.
    pub comm: CommId,
}

/// Number of frames a collective payload of `total_bytes` travels as:
/// `chunk_bytes == 0` means one whole-buffer frame, and a zero-length
/// buffer still travels as one (empty) frame so the receive loop always
/// terminates on a frame count.
pub fn relay_frame_count(total_bytes: u64, chunk_bytes: u64) -> u64 {
    if chunk_bytes == 0 || total_bytes == 0 {
        1
    } else {
        total_bytes.div_ceil(chunk_bytes)
    }
}

/// Serialize one frame of a chunked collective payload stream:
/// `[frame index u64 LE][payload bytes]`.
pub fn encode_relay_frame(index: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse one collective payload frame into `(frame index, payload)`.
pub fn decode_relay_frame(data: &[u8]) -> OmpcResult<(u64, Vec<u8>)> {
    if data.len() < 8 {
        return Err(OmpcError::Internal("truncated relay frame".to_string()));
    }
    let index = u64::from_le_bytes(data[..8].try_into().expect("8-byte slice"));
    Ok((index, data[8..].to_vec()))
}

/// One car of an [`EventRequest::TaskTrain`]: a complete composite task
/// with its own exclusive reply channel. Payloads for the car's
/// [`TaskStep::RecvFromHead`] steps travel on the car's `(tag, comm)`
/// channel — not the train's envelope channel — so batching changes only
/// how the *notification* travels, never the per-task message discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainCar {
    /// Tag of the car's exclusive channel (reply and payloads).
    pub tag: Tag,
    /// Communicator of the car's exclusive channel.
    pub comm: CommId,
    /// The composite task itself.
    pub spec: TaskSpec,
}

/// One step of a composite [`EventRequest::Task`], executed in order by the
/// destination node's event handler. Receive steps use the task's exclusive
/// `(tag, communicator)` channel; because MPI delivery is non-overtaking
/// per `(source, communicator, tag)`, several receives from the same source
/// arrive in step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStep {
    /// Receive the contents of `buffer` from the head node on the event
    /// channel (the head sends the payload right after the notification).
    RecvFromHead { buffer: BufferId },
    /// Receive the contents of `buffer` from worker `from` on the event
    /// channel. The sender transmits a reply envelope — the data on
    /// success, its own error otherwise — exactly like the sending half of
    /// an [`EventRequest::ExchangeSend`], so a dead or failed source
    /// surfaces as a typed error in this task's reply instead of a hang.
    RecvFromWorker { buffer: BufferId, from: NodeId },
    /// Wait until `buffer` is locally present in device memory: a
    /// co-scheduled task on the same node owns the in-flight transfer of
    /// this buffer and will store it. Bounded by `timeout_ms` so an
    /// upstream failure degrades into a typed error, never a hang.
    AwaitLocal { buffer: BufferId, timeout_ms: u64 },
    /// Ensure `size` zeroed bytes of device memory exist for `buffer` (a
    /// write-only output that nothing transferred in).
    Alloc { buffer: BufferId, size: u64 },
    /// Free the device memory of `buffer` (a no-op when absent). Deferred
    /// head-side maintenance — stale copies invalidated by a write,
    /// exit-data releases — rides composite tasks as prologue `Delete`
    /// steps instead of paying one synchronous event round-trip each.
    Delete { buffer: BufferId },
    /// Run `kernel` against the listed device buffers.
    Execute { kernel: KernelId, buffers: Vec<BufferId> },
}

/// The recipe of one composite [`EventRequest::Task`]: the ordered steps
/// the destination node performs before sending the task's single typed
/// reply.
///
/// ```
/// use ompc_core::protocol::{EventNotification, EventRequest, TaskSpec, TaskStep};
/// use ompc_core::types::{BufferId, KernelId};
/// use ompc_mpi::{CommId, Tag};
///
/// let spec = TaskSpec {
///     steps: vec![
///         TaskStep::RecvFromHead { buffer: BufferId(1) },
///         TaskStep::RecvFromWorker { buffer: BufferId(2), from: 3 },
///         TaskStep::Execute { kernel: KernelId(0), buffers: vec![BufferId(1), BufferId(2)] },
///     ],
/// };
/// let n = EventNotification {
///     request: EventRequest::Task(spec),
///     tag: Tag(7),
///     comm: CommId(0),
///     timed: false,
/// };
/// assert_eq!(EventNotification::decode(&n.encode()).unwrap(), n);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// The steps, in execution order.
    pub steps: Vec<TaskStep>,
}

/// A complete new-event notification: the request plus the exclusive
/// channel (tag and communicator) the event will use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventNotification {
    /// What the destination must do.
    pub request: EventRequest,
    /// Tag all messages of this event are matched on.
    pub tag: Tag,
    /// Communicator all messages of this event travel on.
    pub comm: CommId,
    /// Whether the destination should capture telemetry timestamps while
    /// handling this event and ship them home in the reply (see
    /// [`TaskStamps`] / [`EventReply::OkTimed`]). Cars of an
    /// [`EventRequest::TaskTrain`] inherit the train envelope's flag. The
    /// worker reads no clock when this is `false`, keeping
    /// telemetry-off runs free of clock syscalls.
    pub timed: bool,
}

struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        Self(Vec::with_capacity(64))
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
    fn u8(&mut self) -> OmpcResult<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| OmpcError::Internal("truncated notification".to_string()))?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> OmpcResult<u32> {
        let end = self.pos + 4;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| OmpcError::Internal("truncated notification".to_string()))?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
    }
    fn u64(&mut self) -> OmpcResult<u64> {
        let end = self.pos + 8;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| OmpcError::Internal("truncated notification".to_string()))?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
    }
    fn string(&mut self) -> OmpcResult<String> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| OmpcError::Internal("truncated notification".to_string()))?;
        self.pos = end;
        String::from_utf8(slice.to_vec())
            .map_err(|_| OmpcError::Internal("non-UTF-8 string in reply".to_string()))
    }
    fn rest(&mut self) -> Vec<u8> {
        let rest = self.data.get(self.pos..).unwrap_or_default().to_vec();
        self.pos = self.data.len();
        rest
    }
}

const KIND_ALLOC: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_SUBMIT: u8 = 3;
const KIND_RETRIEVE: u8 = 4;
const KIND_EXCHANGE_SEND: u8 = 5;
const KIND_EXCHANGE_RECV: u8 = 6;
const KIND_EXECUTE: u8 = 7;
const KIND_SHUTDOWN: u8 = 8;
const KIND_KILL: u8 = 9;
const KIND_TASK: u8 = 10;
const KIND_TASK_TRAIN: u8 = 11;
const KIND_RESET: u8 = 12;
const KIND_SUBMIT_TRAIN: u8 = 13;
const KIND_RELAY_RECV: u8 = 14;
const KIND_RELAY_FEED: u8 = 15;

fn encode_children(w: &mut Writer, children: &[RelayChild]) {
    w.u32(children.len() as u32);
    for child in children {
        w.u32(child.node as u32);
        w.u64(child.tag.0);
        w.u32(child.comm.0);
    }
}

fn decode_children(r: &mut Reader<'_>) -> OmpcResult<Vec<RelayChild>> {
    let n = r.u32()?;
    let mut children = Vec::with_capacity(n as usize);
    for _ in 0..n {
        children.push(RelayChild {
            node: r.u32()? as NodeId,
            tag: Tag(r.u64()?),
            comm: CommId(r.u32()?),
        });
    }
    Ok(children)
}

const STEP_RECV_FROM_HEAD: u8 = 1;
const STEP_RECV_FROM_WORKER: u8 = 2;
const STEP_AWAIT_LOCAL: u8 = 3;
const STEP_ALLOC: u8 = 4;
const STEP_EXECUTE: u8 = 5;
const STEP_DELETE: u8 = 6;

fn encode_step(w: &mut Writer, step: &TaskStep) {
    match step {
        TaskStep::RecvFromHead { buffer } => {
            w.u8(STEP_RECV_FROM_HEAD);
            w.u64(buffer.0);
        }
        TaskStep::RecvFromWorker { buffer, from } => {
            w.u8(STEP_RECV_FROM_WORKER);
            w.u64(buffer.0);
            w.u64(*from as u64);
        }
        TaskStep::AwaitLocal { buffer, timeout_ms } => {
            w.u8(STEP_AWAIT_LOCAL);
            w.u64(buffer.0);
            w.u64(*timeout_ms);
        }
        TaskStep::Alloc { buffer, size } => {
            w.u8(STEP_ALLOC);
            w.u64(buffer.0);
            w.u64(*size);
        }
        TaskStep::Delete { buffer } => {
            w.u8(STEP_DELETE);
            w.u64(buffer.0);
        }
        TaskStep::Execute { kernel, buffers } => {
            w.u8(STEP_EXECUTE);
            w.u64(kernel.0 as u64);
            w.u32(buffers.len() as u32);
            for b in buffers {
                w.u64(b.0);
            }
        }
    }
}

fn decode_step(r: &mut Reader<'_>) -> OmpcResult<TaskStep> {
    Ok(match r.u8()? {
        STEP_RECV_FROM_HEAD => TaskStep::RecvFromHead { buffer: BufferId(r.u64()?) },
        STEP_RECV_FROM_WORKER => {
            TaskStep::RecvFromWorker { buffer: BufferId(r.u64()?), from: r.u64()? as NodeId }
        }
        STEP_AWAIT_LOCAL => {
            TaskStep::AwaitLocal { buffer: BufferId(r.u64()?), timeout_ms: r.u64()? }
        }
        STEP_ALLOC => TaskStep::Alloc { buffer: BufferId(r.u64()?), size: r.u64()? },
        STEP_DELETE => TaskStep::Delete { buffer: BufferId(r.u64()?) },
        STEP_EXECUTE => {
            let kernel = KernelId(r.u64()? as usize);
            let n = r.u32()?;
            let mut buffers = Vec::with_capacity(n as usize);
            for _ in 0..n {
                buffers.push(BufferId(r.u64()?));
            }
            TaskStep::Execute { kernel, buffers }
        }
        other => return Err(OmpcError::Internal(format!("unknown task step kind {other}"))),
    })
}

impl EventNotification {
    /// Serialize the notification for transmission on the control tag.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.tag.0);
        w.u32(self.comm.0);
        w.u8(self.timed as u8);
        match &self.request {
            EventRequest::Alloc { buffer, size } => {
                w.u8(KIND_ALLOC);
                w.u64(buffer.0);
                w.u64(*size);
            }
            EventRequest::Delete { buffer } => {
                w.u8(KIND_DELETE);
                w.u64(buffer.0);
            }
            EventRequest::Submit { buffer } => {
                w.u8(KIND_SUBMIT);
                w.u64(buffer.0);
            }
            EventRequest::Retrieve { buffer } => {
                w.u8(KIND_RETRIEVE);
                w.u64(buffer.0);
            }
            EventRequest::ExchangeSend { buffer, to } => {
                w.u8(KIND_EXCHANGE_SEND);
                w.u64(buffer.0);
                w.u64(*to as u64);
            }
            EventRequest::ExchangeRecv { buffer, from } => {
                w.u8(KIND_EXCHANGE_RECV);
                w.u64(buffer.0);
                w.u64(*from as u64);
            }
            EventRequest::Execute { kernel, buffers } => {
                w.u8(KIND_EXECUTE);
                w.u64(kernel.0 as u64);
                w.u32(buffers.len() as u32);
                for b in buffers {
                    w.u64(b.0);
                }
            }
            EventRequest::Task(spec) => {
                w.u8(KIND_TASK);
                w.u32(spec.steps.len() as u32);
                for step in &spec.steps {
                    encode_step(&mut w, step);
                }
            }
            EventRequest::TaskTrain(cars) => {
                w.u8(KIND_TASK_TRAIN);
                w.u32(cars.len() as u32);
                for car in cars {
                    w.u64(car.tag.0);
                    w.u32(car.comm.0);
                    w.u32(car.spec.steps.len() as u32);
                    for step in &car.spec.steps {
                        encode_step(&mut w, step);
                    }
                }
            }
            EventRequest::SubmitTrain { buffers } => {
                w.u8(KIND_SUBMIT_TRAIN);
                w.u32(buffers.len() as u32);
                for b in buffers {
                    w.u64(b.0);
                }
            }
            EventRequest::RelayRecv { buffer, total_bytes, chunk_bytes, children } => {
                w.u8(KIND_RELAY_RECV);
                w.u64(buffer.0);
                w.u64(*total_bytes);
                w.u64(*chunk_bytes);
                encode_children(&mut w, children);
            }
            EventRequest::RelayFeed { buffer, chunk_bytes, children } => {
                w.u8(KIND_RELAY_FEED);
                w.u64(buffer.0);
                w.u64(*chunk_bytes);
                encode_children(&mut w, children);
            }
            EventRequest::Reset => {
                w.u8(KIND_RESET);
            }
            EventRequest::Shutdown => {
                w.u8(KIND_SHUTDOWN);
            }
            EventRequest::Kill => {
                w.u8(KIND_KILL);
            }
        }
        w.0
    }

    /// Parse a notification received on the control tag.
    pub fn decode(data: &[u8]) -> OmpcResult<Self> {
        let mut r = Reader::new(data);
        let tag = Tag(r.u64()?);
        let comm = CommId(r.u32()?);
        let timed = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(OmpcError::Internal(format!("unknown timed flag {other}")));
            }
        };
        let kind = r.u8()?;
        let request = match kind {
            KIND_ALLOC => EventRequest::Alloc { buffer: BufferId(r.u64()?), size: r.u64()? },
            KIND_DELETE => EventRequest::Delete { buffer: BufferId(r.u64()?) },
            KIND_SUBMIT => EventRequest::Submit { buffer: BufferId(r.u64()?) },
            KIND_RETRIEVE => EventRequest::Retrieve { buffer: BufferId(r.u64()?) },
            KIND_EXCHANGE_SEND => {
                EventRequest::ExchangeSend { buffer: BufferId(r.u64()?), to: r.u64()? as NodeId }
            }
            KIND_EXCHANGE_RECV => {
                EventRequest::ExchangeRecv { buffer: BufferId(r.u64()?), from: r.u64()? as NodeId }
            }
            KIND_EXECUTE => {
                let kernel = KernelId(r.u64()? as usize);
                let n = r.u32()?;
                let mut buffers = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    buffers.push(BufferId(r.u64()?));
                }
                EventRequest::Execute { kernel, buffers }
            }
            KIND_TASK => {
                let n = r.u32()?;
                let mut steps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    steps.push(decode_step(&mut r)?);
                }
                EventRequest::Task(TaskSpec { steps })
            }
            KIND_TASK_TRAIN => {
                let cars_len = r.u32()?;
                let mut cars = Vec::with_capacity(cars_len as usize);
                for _ in 0..cars_len {
                    let tag = Tag(r.u64()?);
                    let comm = CommId(r.u32()?);
                    let n = r.u32()?;
                    let mut steps = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        steps.push(decode_step(&mut r)?);
                    }
                    cars.push(TrainCar { tag, comm, spec: TaskSpec { steps } });
                }
                EventRequest::TaskTrain(cars)
            }
            KIND_SUBMIT_TRAIN => {
                let n = r.u32()?;
                let mut buffers = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    buffers.push(BufferId(r.u64()?));
                }
                EventRequest::SubmitTrain { buffers }
            }
            KIND_RELAY_RECV => EventRequest::RelayRecv {
                buffer: BufferId(r.u64()?),
                total_bytes: r.u64()?,
                chunk_bytes: r.u64()?,
                children: decode_children(&mut r)?,
            },
            KIND_RELAY_FEED => EventRequest::RelayFeed {
                buffer: BufferId(r.u64()?),
                chunk_bytes: r.u64()?,
                children: decode_children(&mut r)?,
            },
            KIND_RESET => EventRequest::Reset,
            KIND_SHUTDOWN => EventRequest::Shutdown,
            KIND_KILL => EventRequest::Kill,
            other => {
                return Err(OmpcError::Internal(format!("unknown event kind {other}")));
            }
        };
        Ok(Self { request, tag, comm, timed })
    }
}

/// Worker-side timestamps of one composite task, captured on the worker
/// thread when the event envelope carried the `timed` flag and shipped home
/// inside the typed reply ([`EventReply::OkTimed`]). All values are
/// microseconds on the process-global monotonic telemetry clock
/// ([`crate::runtime::telemetry::monotonic_us`]) — workers are threads of
/// the head's process, so these stamps compare directly with head-side
/// span stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskStamps {
    /// When the handler picked the event up (gate hand-off complete).
    pub recv_us: u64,
    /// When the task's data-movement steps (receives, awaits, allocs)
    /// finished and the kernel was ready to run.
    pub deps_us: u64,
    /// When the kernel body started.
    pub exec_start_us: u64,
    /// When the kernel body finished.
    pub exec_end_us: u64,
}

impl TaskStamps {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.recv_us);
        w.u64(self.deps_us);
        w.u64(self.exec_start_us);
        w.u64(self.exec_end_us);
    }

    fn decode(r: &mut Reader<'_>) -> OmpcResult<Self> {
        Ok(Self {
            recv_us: r.u64()?,
            deps_us: r.u64()?,
            exec_start_us: r.u64()?,
            exec_end_us: r.u64()?,
        })
    }
}

/// Status byte of a successful [`EventReply`].
const REPLY_OK: u8 = 0;
/// Status byte of a failed [`EventReply`].
const REPLY_ERR: u8 = 1;
/// Status byte of a successful reply carrying worker-side [`TaskStamps`].
const REPLY_OK_TIMED: u8 = 2;

const ERR_UNKNOWN_BUFFER: u8 = 1;
const ERR_UNKNOWN_KERNEL: u8 = 2;
const ERR_REGION_ALREADY_RUN: u8 = 3;
const ERR_COMMUNICATION: u8 = 4;
const ERR_NODE_FAILURE: u8 = 5;
const ERR_INVALID_CONFIG: u8 = 6;
const ERR_SHUT_DOWN: u8 = 7;
const ERR_INTERNAL: u8 = 8;
const ERR_REMOTE_EVENT: u8 = 9;

fn encode_error(w: &mut Writer, error: &OmpcError) {
    match error {
        OmpcError::UnknownBuffer(b) => {
            w.u8(ERR_UNKNOWN_BUFFER);
            w.u64(b.0);
        }
        OmpcError::UnknownKernel(k) => {
            w.u8(ERR_UNKNOWN_KERNEL);
            w.u64(k.0 as u64);
        }
        OmpcError::RegionAlreadyRun => w.u8(ERR_REGION_ALREADY_RUN),
        OmpcError::Communication(m) => {
            w.u8(ERR_COMMUNICATION);
            w.string(m);
        }
        OmpcError::NodeFailure(n) => {
            w.u8(ERR_NODE_FAILURE);
            w.u64(*n as u64);
        }
        OmpcError::InvalidConfig(m) => {
            w.u8(ERR_INVALID_CONFIG);
            w.string(m);
        }
        OmpcError::ShutDown => w.u8(ERR_SHUT_DOWN),
        OmpcError::Internal(m) => {
            w.u8(ERR_INTERNAL);
            w.string(m);
        }
        OmpcError::RemoteEvent { node, event, error } => {
            w.u8(ERR_REMOTE_EVENT);
            w.u64(*node as u64);
            w.u64(*event);
            encode_error(w, error);
        }
    }
}

fn decode_error(r: &mut Reader<'_>) -> OmpcResult<OmpcError> {
    Ok(match r.u8()? {
        ERR_UNKNOWN_BUFFER => OmpcError::UnknownBuffer(BufferId(r.u64()?)),
        ERR_UNKNOWN_KERNEL => OmpcError::UnknownKernel(KernelId(r.u64()? as usize)),
        ERR_REGION_ALREADY_RUN => OmpcError::RegionAlreadyRun,
        ERR_COMMUNICATION => OmpcError::Communication(r.string()?),
        ERR_NODE_FAILURE => OmpcError::NodeFailure(r.u64()? as NodeId),
        ERR_INVALID_CONFIG => OmpcError::InvalidConfig(r.string()?),
        ERR_SHUT_DOWN => OmpcError::ShutDown,
        ERR_INTERNAL => OmpcError::Internal(r.string()?),
        ERR_REMOTE_EVENT => OmpcError::RemoteEvent {
            node: r.u64()? as NodeId,
            event: r.u64()?,
            error: Box::new(decode_error(r)?),
        },
        other => return Err(OmpcError::Internal(format!("unknown error code {other}"))),
    })
}

/// The typed reply every dispatched event produces on its exclusive
/// channel: the success payload (completion data, byte counts, or empty),
/// or the error the destination's handler raised. Workers wrap handler
/// errors as [`OmpcError::RemoteEvent`] before replying, so the head node
/// always learns *which* node and *which* event failed.
///
/// ```
/// use ompc_core::protocol::EventReply;
/// use ompc_core::types::{BufferId, OmpcError};
///
/// let ok = EventReply::Ok(vec![1, 2, 3]);
/// assert_eq!(EventReply::decode(&ok.encode()).unwrap(), ok);
///
/// let err = EventReply::Err(OmpcError::RemoteEvent {
///     node: 2,
///     event: 41,
///     error: Box::new(OmpcError::UnknownBuffer(BufferId(7))),
/// });
/// let decoded = EventReply::decode(&err.encode()).unwrap();
/// assert_eq!(decoded.into_result().unwrap_err().origin_node(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventReply {
    /// The event completed; the payload is event-specific (often empty).
    Ok(Vec<u8>),
    /// The event completed and the notification's `timed` flag was set:
    /// the payload is preceded by the worker-side [`TaskStamps`]. Origins
    /// that don't care ([`EventReply::into_result`]) see it as a plain
    /// success.
    OkTimed(TaskStamps, Vec<u8>),
    /// The event failed on the destination node.
    Err(OmpcError),
}

impl EventReply {
    /// Serialize for transmission on the event channel.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            EventReply::Ok(payload) => {
                w.u8(REPLY_OK);
                w.bytes(payload);
            }
            EventReply::OkTimed(stamps, payload) => {
                w.u8(REPLY_OK_TIMED);
                stamps.encode(&mut w);
                w.bytes(payload);
            }
            EventReply::Err(error) => {
                w.u8(REPLY_ERR);
                encode_error(&mut w, error);
            }
        }
        w.0
    }

    /// Parse a reply received on an event channel.
    pub fn decode(data: &[u8]) -> OmpcResult<Self> {
        let mut r = Reader::new(data);
        match r.u8()? {
            REPLY_OK => Ok(EventReply::Ok(r.rest())),
            REPLY_OK_TIMED => {
                let stamps = TaskStamps::decode(&mut r)?;
                Ok(EventReply::OkTimed(stamps, r.rest()))
            }
            REPLY_ERR => Ok(EventReply::Err(decode_error(&mut r)?)),
            other => Err(OmpcError::Internal(format!("unknown reply status {other}"))),
        }
    }

    /// Convert into the `Result` the origin side consumes. Worker stamps,
    /// if any, are dropped — use [`EventReply::into_timed_result`] to keep
    /// them.
    pub fn into_result(self) -> OmpcResult<Vec<u8>> {
        self.into_timed_result().map(|(payload, _)| payload)
    }

    /// Convert into the origin-side `Result`, preserving the worker-side
    /// stamps of an [`EventReply::OkTimed`].
    pub fn into_timed_result(self) -> OmpcResult<(Vec<u8>, Option<TaskStamps>)> {
        match self {
            EventReply::Ok(payload) => Ok((payload, None)),
            EventReply::OkTimed(stamps, payload) => Ok((payload, Some(stamps))),
            EventReply::Err(error) => Err(error),
        }
    }
}

/// The compact notice a worker posts to the head's [`COMPLETION_TAG`]
/// channel after sending a composite-task reply: just the finished task's
/// event tag and its outcome. The reply itself (payload or typed error) is
/// already sitting in the head's mailbox on the task's exclusive channel —
/// sends are eager — so the head turns a notice into the full reply with
/// one guaranteed-ready receive instead of probing every in-flight task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionNotice {
    /// Event tag of the finished composite task.
    pub tag: Tag,
    /// Whether the task's reply is `Ok` (informational; the reply is
    /// authoritative).
    pub ok: bool,
}

impl CompletionNotice {
    /// Serialize for transmission on [`COMPLETION_TAG`].
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.tag.0);
        w.u8(self.ok as u8);
        w.0
    }

    /// Parse a notice received on [`COMPLETION_TAG`].
    pub fn decode(data: &[u8]) -> OmpcResult<Self> {
        let mut r = Reader::new(data);
        let tag = Tag(r.u64()?);
        let ok = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(OmpcError::Internal(format!("unknown notice status {other}")));
            }
        };
        Ok(Self { tag, ok })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: EventRequest) {
        for timed in [false, true] {
            let n = EventNotification {
                request: request.clone(),
                tag: Tag(42),
                comm: CommId(3),
                timed,
            };
            let decoded = EventNotification::decode(&n.encode()).unwrap();
            assert_eq!(decoded, n);
        }
    }

    #[test]
    fn all_event_kinds_round_trip() {
        round_trip(EventRequest::Alloc { buffer: BufferId(7), size: 1024 });
        round_trip(EventRequest::Delete { buffer: BufferId(7) });
        round_trip(EventRequest::Submit { buffer: BufferId(1) });
        round_trip(EventRequest::Retrieve { buffer: BufferId(2) });
        round_trip(EventRequest::ExchangeSend { buffer: BufferId(3), to: 5 });
        round_trip(EventRequest::ExchangeRecv { buffer: BufferId(3), from: 2 });
        round_trip(EventRequest::Execute {
            kernel: KernelId(9),
            buffers: vec![BufferId(1), BufferId(2), BufferId(3)],
        });
        round_trip(EventRequest::Shutdown);
        round_trip(EventRequest::Kill);
    }

    #[test]
    fn composite_task_round_trips_every_step_kind() {
        round_trip(EventRequest::Task(TaskSpec { steps: vec![] }));
        round_trip(EventRequest::Task(TaskSpec {
            steps: vec![
                TaskStep::Delete { buffer: BufferId(9) },
                TaskStep::RecvFromHead { buffer: BufferId(1) },
                TaskStep::RecvFromWorker { buffer: BufferId(2), from: 4 },
                TaskStep::AwaitLocal { buffer: BufferId(3), timeout_ms: 60_000 },
                TaskStep::Alloc { buffer: BufferId(4), size: 4096 },
                TaskStep::Execute {
                    kernel: KernelId(7),
                    buffers: vec![BufferId(1), BufferId(2), BufferId(3), BufferId(4)],
                },
            ],
        }));
    }

    #[test]
    fn task_train_round_trips_with_per_car_channels() {
        round_trip(EventRequest::TaskTrain(vec![]));
        round_trip(EventRequest::Reset);
        round_trip(EventRequest::TaskTrain(vec![
            TrainCar {
                tag: Tag(11),
                comm: CommId(1),
                spec: TaskSpec {
                    steps: vec![
                        TaskStep::RecvFromHead { buffer: BufferId(1) },
                        TaskStep::Execute { kernel: KernelId(2), buffers: vec![BufferId(1)] },
                    ],
                },
            },
            TrainCar {
                tag: Tag(12),
                comm: CommId(0),
                spec: TaskSpec { steps: vec![TaskStep::Alloc { buffer: BufferId(4), size: 64 }] },
            },
        ]));
    }

    #[test]
    fn submit_train_round_trips_and_rejects_truncation() {
        round_trip(EventRequest::SubmitTrain { buffers: vec![] });
        round_trip(EventRequest::SubmitTrain {
            buffers: vec![BufferId(3), BufferId(1), BufferId(u64::MAX)],
        });
        let n = EventNotification {
            request: EventRequest::SubmitTrain { buffers: vec![BufferId(5), BufferId(6)] },
            tag: Tag(20),
            comm: CommId(1),
            timed: false,
        };
        let bytes = n.encode();
        for cut in 1..=16 {
            assert!(EventNotification::decode(&bytes[..bytes.len() - cut]).is_err());
        }
        assert_eq!(n.request.name(), "submit-train");
    }

    #[test]
    fn relay_events_round_trip_and_reject_truncation() {
        round_trip(EventRequest::RelayRecv {
            buffer: BufferId(5),
            total_bytes: 1 << 20,
            chunk_bytes: 64 * 1024,
            children: vec![],
        });
        round_trip(EventRequest::RelayFeed {
            buffer: BufferId(2),
            chunk_bytes: 0,
            children: vec![RelayChild { node: 3, tag: Tag(91), comm: CommId(1) }],
        });
        let n = EventNotification {
            request: EventRequest::RelayRecv {
                buffer: BufferId(7),
                total_bytes: 4096,
                chunk_bytes: 1024,
                children: vec![
                    RelayChild { node: 2, tag: Tag(40), comm: CommId(0) },
                    RelayChild { node: 4, tag: Tag(41), comm: CommId(1) },
                ],
            },
            tag: Tag(39),
            comm: CommId(1),
            timed: false,
        };
        let bytes = n.encode();
        assert_eq!(EventNotification::decode(&bytes).unwrap(), n);
        for cut in 1..bytes.len() {
            assert!(EventNotification::decode(&bytes[..bytes.len() - cut]).is_err());
        }
        let f = EventNotification {
            request: EventRequest::RelayFeed {
                buffer: BufferId(7),
                chunk_bytes: 1024,
                children: vec![RelayChild { node: 2, tag: Tag(40), comm: CommId(0) }],
            },
            tag: Tag(44),
            comm: CommId(0),
            timed: false,
        };
        let bytes = f.encode();
        assert_eq!(EventNotification::decode(&bytes).unwrap(), f);
        for cut in 1..bytes.len() {
            assert!(EventNotification::decode(&bytes[..bytes.len() - cut]).is_err());
        }
        assert_eq!(n.request.name(), "relay-recv");
        assert_eq!(f.request.name(), "relay-feed");
    }

    #[test]
    fn relay_frames_round_trip_and_count_correctly() {
        let frame = encode_relay_frame(3, &[9, 8, 7]);
        assert_eq!(decode_relay_frame(&frame).unwrap(), (3, vec![9, 8, 7]));
        // An empty payload is legal (zero-length buffers still broadcast).
        let empty = encode_relay_frame(0, &[]);
        assert_eq!(decode_relay_frame(&empty).unwrap(), (0, vec![]));
        // Anything shorter than the index header is rejected.
        assert!(decode_relay_frame(&frame[..7]).is_err());
        assert!(decode_relay_frame(&[]).is_err());
        // Frame counts: whole-buffer when unchunked, ceil-div otherwise,
        // and always at least one so receivers terminate.
        assert_eq!(relay_frame_count(1 << 20, 0), 1);
        assert_eq!(relay_frame_count(0, 4096), 1);
        assert_eq!(relay_frame_count(4096, 4096), 1);
        assert_eq!(relay_frame_count(4097, 4096), 2);
        assert_eq!(relay_frame_count(3 * 4096, 4096), 3);
    }

    #[test]
    fn prefetch_tag_is_reserved_below_the_event_range() {
        assert_ne!(PREFETCH_TAG, CONTROL_TAG);
        assert_ne!(PREFETCH_TAG, COMPLETION_TAG);
        // Evaluated through a binding so the reservation reads as a
        // runtime check without tripping clippy's const-assert lint.
        let first_event_tag = FIRST_EVENT_TAG;
        assert!(PREFETCH_TAG.0 < first_event_tag);
    }

    #[test]
    fn truncated_task_train_is_an_error() {
        let n = EventNotification {
            request: EventRequest::TaskTrain(vec![TrainCar {
                tag: Tag(9),
                comm: CommId(0),
                spec: TaskSpec { steps: vec![TaskStep::Delete { buffer: BufferId(3) }] },
            }]),
            tag: Tag(9),
            comm: CommId(0),
            timed: false,
        };
        let bytes = n.encode();
        for cut in 1..bytes.len() {
            assert!(EventNotification::decode(&bytes[..bytes.len() - cut]).is_err());
        }
    }

    #[test]
    fn completion_notices_round_trip_and_reject_garbage() {
        for notice in [
            CompletionNotice { tag: Tag(2), ok: true },
            CompletionNotice { tag: Tag(u64::MAX), ok: false },
        ] {
            assert_eq!(CompletionNotice::decode(&notice.encode()).unwrap(), notice);
        }
        assert!(CompletionNotice::decode(&[]).is_err());
        assert!(CompletionNotice::decode(&[0; 8]).is_err());
        let mut bad = CompletionNotice { tag: Tag(1), ok: true }.encode();
        bad[8] = 7;
        assert!(CompletionNotice::decode(&bad).is_err());
    }

    #[test]
    fn completion_tag_is_reserved_below_the_event_range() {
        assert_ne!(COMPLETION_TAG, CONTROL_TAG);
        let first_event = FIRST_EVENT_TAG;
        assert!(COMPLETION_TAG.0 < first_event);
    }

    #[test]
    fn truncated_task_spec_is_an_error() {
        let n = EventNotification {
            request: EventRequest::Task(TaskSpec {
                steps: vec![TaskStep::Alloc { buffer: BufferId(1), size: 64 }],
            }),
            tag: Tag(5),
            comm: CommId(0),
            timed: false,
        };
        let bytes = n.encode();
        assert!(EventNotification::decode(&bytes[..bytes.len() - 1]).is_err());
        // Corrupt the step kind.
        let mut bad = bytes.clone();
        let step_kind_pos = bad.len() - 17; // step kind byte before two u64 operands
        bad[step_kind_pos] = 99;
        assert!(EventNotification::decode(&bad).is_err());
    }

    #[test]
    fn replies_round_trip_ok_and_err() {
        for reply in [
            EventReply::Ok(Vec::new()),
            EventReply::Ok(vec![0, 1, 2, 255]),
            EventReply::Err(OmpcError::UnknownBuffer(BufferId(9))),
            EventReply::Err(OmpcError::UnknownKernel(KernelId(3))),
            EventReply::Err(OmpcError::NodeFailure(4)),
            EventReply::Err(OmpcError::ShutDown),
            EventReply::Err(OmpcError::RegionAlreadyRun),
            EventReply::Err(OmpcError::Communication("lost".to_string())),
            EventReply::Err(OmpcError::InvalidConfig("bad".to_string())),
            EventReply::Err(OmpcError::Internal("oops".to_string())),
            EventReply::Err(OmpcError::RemoteEvent {
                node: 3,
                event: 77,
                error: Box::new(OmpcError::UnknownKernel(KernelId(12))),
            }),
        ] {
            assert_eq!(EventReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn truncated_or_garbage_reply_is_an_error() {
        assert!(EventReply::decode(&[]).is_err());
        assert!(EventReply::decode(&[9]).is_err());
        let err = EventReply::Err(OmpcError::Internal("x".to_string())).encode();
        assert!(EventReply::decode(&err[..err.len() - 1]).is_err());
    }

    #[test]
    fn execute_with_no_buffers_round_trips() {
        round_trip(EventRequest::Execute { kernel: KernelId(0), buffers: vec![] });
    }

    #[test]
    fn truncated_notification_is_an_error() {
        let n = EventNotification {
            request: EventRequest::Alloc { buffer: BufferId(7), size: 1024 },
            tag: Tag(1),
            comm: CommId(0),
            timed: false,
        };
        let bytes = n.encode();
        assert!(EventNotification::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(EventNotification::decode(&[]).is_err());
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let mut bytes = EventNotification {
            request: EventRequest::Shutdown,
            tag: Tag(1),
            comm: CommId(0),
            timed: false,
        }
        .encode();
        let last = bytes.len() - 1;
        bytes[last] = 99;
        assert!(EventNotification::decode(&bytes).is_err());
    }

    #[test]
    fn timed_flag_round_trips_and_rejects_garbage() {
        let n = EventNotification {
            request: EventRequest::Task(TaskSpec { steps: vec![] }),
            tag: Tag(3),
            comm: CommId(1),
            timed: true,
        };
        let mut bytes = n.encode();
        assert_eq!(EventNotification::decode(&bytes).unwrap(), n);
        // The timed byte sits right after the u64 tag + u32 comm.
        assert_eq!(bytes[12], 1);
        bytes[12] = 9;
        assert!(EventNotification::decode(&bytes).is_err());
    }

    #[test]
    fn timed_replies_round_trip_and_degrade_to_plain_ok() {
        let stamps = TaskStamps { recv_us: 10, deps_us: 20, exec_start_us: 21, exec_end_us: 99 };
        let reply = EventReply::OkTimed(stamps, vec![4, 5, 6]);
        let decoded = EventReply::decode(&reply.encode()).unwrap();
        assert_eq!(decoded, reply);
        // Stamp-oblivious origins read the payload exactly as for Ok.
        assert_eq!(decoded.clone().into_result().unwrap(), vec![4, 5, 6]);
        assert_eq!(decoded.into_timed_result().unwrap(), (vec![4, 5, 6], Some(stamps)));
        // An empty-payload timed reply round-trips too (stamps are fixed
        // width, so no payload/stamp ambiguity).
        let empty = EventReply::OkTimed(stamps, Vec::new());
        assert_eq!(EventReply::decode(&empty.encode()).unwrap(), empty);
        // Truncated stamps are an error, not a short payload.
        let bytes = EventReply::OkTimed(stamps, Vec::new()).encode();
        assert!(EventReply::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventRequest::Shutdown.name(), "shutdown");
        assert_eq!(EventRequest::TaskTrain(vec![]).name(), "task-train");
        assert_eq!(EventRequest::Reset.name(), "reset");
        assert_eq!(EventRequest::Retrieve { buffer: BufferId(0) }.name(), "retrieve");
        assert_eq!(
            EventRequest::Execute { kernel: KernelId(0), buffers: vec![] }.name(),
            "execute"
        );
    }
}
