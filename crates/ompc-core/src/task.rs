//! The runtime task graph of one target region.
//!
//! Tasks are appended in program order; dependence edges are derived from
//! the `depend` clauses exactly as the OpenMP specification prescribes:
//!
//! * a reader depends on the last writer of the buffer (flow / RAW),
//! * a writer depends on the last writer (output / WAW) and on every reader
//!   since that write (anti / WAR).
//!
//! Only flow edges move data at run time; anti and output edges are pure
//! ordering constraints. The head node keeps this graph, hands it to the
//! HEFT scheduler at the implicit barrier, and then retires tasks as their
//! dependences are satisfied (paper §3.1 and §4.4).

use crate::types::{BufferId, Dependence, KernelId, MapType, TaskId};
use std::collections::HashMap;

/// What a task does when it runs.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// `target enter data`: make the buffer available on the cluster.
    EnterData { buffer: BufferId, map: MapType },
    /// `target exit data`: bring the buffer back / release it.
    ExitData { buffer: BufferId, map: MapType },
    /// `target nowait`: run a kernel on a worker node.
    Target { kernel: KernelId, cost_hint: f64 },
    /// A classical OpenMP task: runs on the head node (pinned there, as the
    /// runtime must not violate OpenMP host-task semantics).
    Host { cost_hint: f64 },
}

impl TaskKind {
    /// Whether this task executes user code on a worker node.
    pub fn is_target(&self) -> bool {
        matches!(self, TaskKind::Target { .. })
    }

    /// Whether this task is a pure data-movement task.
    pub fn is_data(&self) -> bool {
        matches!(self, TaskKind::EnterData { .. } | TaskKind::ExitData { .. })
    }

    /// The buffer a data-movement task operates on (`None` for target and
    /// host tasks). Residency-aware planning uses this to pin enter/exit
    /// tasks next to the buffer's current device-resident copy.
    pub fn data_buffer(&self) -> Option<BufferId> {
        match self {
            TaskKind::EnterData { buffer, .. } | TaskKind::ExitData { buffer, .. } => Some(*buffer),
            _ => None,
        }
    }

    /// Estimated compute cost in seconds (data tasks cost nothing on a
    /// core; their cost is communication, accounted separately).
    pub fn cost_hint(&self) -> f64 {
        match self {
            TaskKind::Target { cost_hint, .. } | TaskKind::Host { cost_hint } => *cost_hint,
            _ => 0.0,
        }
    }
}

/// The reason an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Read-after-write: data flows from producer to consumer.
    Flow,
    /// Write-after-read: pure ordering.
    Anti,
    /// Write-after-write: pure ordering.
    Output,
}

/// A dependence edge between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEdge {
    /// Producer (must finish first).
    pub from: TaskId,
    /// Consumer.
    pub to: TaskId,
    /// Buffer that induced the edge.
    pub buffer: BufferId,
    /// Why the edge exists; only [`EdgeKind::Flow`] edges move data.
    pub kind: EdgeKind,
}

/// A node of the region graph.
#[derive(Debug, Clone)]
pub struct TargetTask {
    /// Dense task id (position in the region).
    pub id: TaskId,
    /// What the task does.
    pub kind: TaskKind,
    /// Its `depend` clauses.
    pub dependences: Vec<Dependence>,
    /// Trace label.
    pub label: String,
}

#[derive(Debug, Default, Clone)]
struct BufferState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// The dependence graph of one target region.
#[derive(Debug, Default, Clone)]
pub struct RegionGraph {
    tasks: Vec<TargetTask>,
    edges: Vec<TaskEdge>,
    successors: Vec<Vec<TaskId>>,
    predecessors: Vec<Vec<TaskId>>,
    buffer_state: HashMap<BufferId, BufferState>,
}

impl RegionGraph {
    /// Create an empty region graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a task, deriving its dependence edges from `dependences`.
    pub fn add_task(
        &mut self,
        kind: TaskKind,
        dependences: Vec<Dependence>,
        label: impl Into<String>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());

        // Collect edges first to avoid duplicated edges when a task both
        // reads and writes the same buffer.
        let mut new_edges: Vec<TaskEdge> = Vec::new();
        for dep in &dependences {
            let state = self.buffer_state.entry(dep.buffer).or_default();
            if dep.dep_type.reads() {
                if let Some(writer) = state.last_writer {
                    new_edges.push(TaskEdge {
                        from: writer,
                        to: id,
                        buffer: dep.buffer,
                        kind: EdgeKind::Flow,
                    });
                }
            }
            if dep.dep_type.writes() {
                for &reader in &state.readers_since_write {
                    if reader != id {
                        new_edges.push(TaskEdge {
                            from: reader,
                            to: id,
                            buffer: dep.buffer,
                            kind: EdgeKind::Anti,
                        });
                    }
                }
                if let Some(writer) = state.last_writer {
                    // Only add an output edge if we did not already add a
                    // flow edge from the same writer.
                    if !dep.dep_type.reads() {
                        new_edges.push(TaskEdge {
                            from: writer,
                            to: id,
                            buffer: dep.buffer,
                            kind: EdgeKind::Output,
                        });
                    }
                }
            }
        }
        // Update buffer states after computing edges.
        for dep in &dependences {
            let state = self.buffer_state.entry(dep.buffer).or_default();
            if dep.dep_type.writes() {
                state.last_writer = Some(id);
                state.readers_since_write.clear();
            }
            if dep.dep_type.reads() && !dep.dep_type.writes() {
                state.readers_since_write.push(id);
            }
        }

        // Deduplicate edges between the same pair of tasks, preferring flow
        // edges (they carry data-movement information).
        new_edges.sort_by_key(|e| {
            (e.from.0, matches!(e.kind, EdgeKind::Flow).then_some(0).unwrap_or(1))
        });
        let mut seen: Vec<TaskId> = Vec::new();
        for edge in new_edges {
            if seen.contains(&edge.from) {
                continue;
            }
            seen.push(edge.from);
            self.successors[edge.from.0].push(id);
            self.predecessors[id.0].push(edge.from);
            self.edges.push(edge);
        }

        self.tasks.push(TargetTask { id, kind, dependences, label: label.into() });
        id
    }

    /// All tasks in program order.
    pub fn tasks(&self) -> &[TargetTask] {
        &self.tasks
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &TargetTask {
        &self.tasks[id.0]
    }

    /// All dependence edges.
    pub fn edges(&self) -> &[TaskEdge] {
        &self.edges
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the region has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.predecessors[id.0]
    }

    /// Flow edges into `id`: the buffers whose data the task consumes and
    /// the tasks that produced them.
    pub fn flow_inputs(&self, id: TaskId) -> Vec<(TaskId, BufferId)> {
        self.edges
            .iter()
            .filter(|e| e.to == id && e.kind == EdgeKind::Flow)
            .map(|e| (e.from, e.buffer))
            .collect()
    }

    /// Tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.len()).map(TaskId).filter(|t| self.predecessors[t.0].is_empty()).collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.len()).map(TaskId).filter(|t| self.successors[t.0].is_empty()).collect()
    }

    /// Program order is always a valid topological order because edges only
    /// ever point from earlier to later tasks; this method exists for
    /// clarity at call sites.
    pub fn topological_order(&self) -> Vec<TaskId> {
        (0..self.len()).map(TaskId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing1_graph() -> (RegionGraph, Vec<TaskId>) {
        // The paper's Listing 1: enter data(A) -> foo(inout A) -> bar(inout A)
        // -> exit data(A).
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let t0 = g.add_task(
            TaskKind::EnterData { buffer: a, map: MapType::To },
            vec![Dependence::output(a)],
            "enter A",
        );
        let t1 = g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::inout(a)],
            "foo",
        );
        let t2 = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::inout(a)],
            "bar",
        );
        let t3 = g.add_task(
            TaskKind::ExitData { buffer: a, map: MapType::Release },
            vec![Dependence::input(a)],
            "exit A",
        );
        (g, vec![t0, t1, t2, t3])
    }

    #[test]
    fn listing1_builds_a_chain() {
        let (g, t) = listing1_graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.successors(t[0]), &[t[1]]);
        assert_eq!(g.successors(t[1]), &[t[2]]);
        assert_eq!(g.successors(t[2]), &[t[3]]);
        assert_eq!(g.roots(), vec![t[0]]);
        assert_eq!(g.sinks(), vec![t[3]]);
        // foo -> bar carries data (flow), enter -> foo carries data.
        assert_eq!(g.flow_inputs(t[1]), vec![(t[0], BufferId(0))]);
        assert_eq!(g.flow_inputs(t[2]), vec![(t[1], BufferId(0))]);
    }

    #[test]
    fn independent_readers_do_not_depend_on_each_other() {
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let w = g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "producer",
        );
        let r1 = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a)],
            "reader1",
        );
        let r2 = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a)],
            "reader2",
        );
        assert_eq!(g.predecessors(r1), &[w]);
        assert_eq!(g.predecessors(r2), &[w]);
        assert!(g.successors(r1).is_empty());
        assert!(!g.successors(w).is_empty());
    }

    #[test]
    fn writer_after_readers_gets_anti_edges() {
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let w0 = g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "w0",
        );
        let r = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a)],
            "r",
        );
        let w1 = g.add_task(
            TaskKind::Target { kernel: KernelId(2), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "w1",
        );
        let _ = w0;
        // w1 must wait for the reader (anti edge), not only the writer.
        assert!(g.predecessors(w1).contains(&r));
        let anti: Vec<_> = g.edges().iter().filter(|e| e.kind == EdgeKind::Anti).collect();
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0].from, r);
        assert_eq!(anti[0].to, w1);
    }

    #[test]
    fn write_after_write_gets_output_edge() {
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let w0 = g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "w0",
        );
        let w1 = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "w1",
        );
        assert_eq!(g.predecessors(w1), &[w0]);
        assert_eq!(g.edges()[0].kind, EdgeKind::Output);
    }

    #[test]
    fn independent_buffers_create_parallel_tasks() {
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let b = BufferId(1);
        g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::inout(a)],
            "ta",
        );
        g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::inout(b)],
            "tb",
        );
        assert_eq!(g.roots().len(), 2);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn duplicate_edges_between_same_pair_are_collapsed() {
        let mut g = RegionGraph::new();
        let a = BufferId(0);
        let b = BufferId(1);
        let p = g.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a), Dependence::output(b)],
            "p",
        );
        let c = g.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a), Dependence::input(b)],
            "c",
        );
        // Two buffers but only one structural edge between the pair.
        assert_eq!(g.predecessors(c), &[p]);
        assert_eq!(g.successors(p), &[c]);
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn task_kind_helpers() {
        assert!(TaskKind::Target { kernel: KernelId(0), cost_hint: 0.5 }.is_target());
        assert!(TaskKind::EnterData { buffer: BufferId(0), map: MapType::To }.is_data());
        assert!(TaskKind::ExitData { buffer: BufferId(0), map: MapType::From }.is_data());
        assert!(!TaskKind::Host { cost_hint: 0.1 }.is_target());
        assert_eq!(TaskKind::Host { cost_hint: 0.1 }.cost_hint(), 0.1);
        assert_eq!(TaskKind::EnterData { buffer: BufferId(0), map: MapType::To }.cost_hint(), 0.0);
        assert_eq!(
            TaskKind::EnterData { buffer: BufferId(3), map: MapType::ToResident }.data_buffer(),
            Some(BufferId(3))
        );
        assert_eq!(
            TaskKind::ExitData { buffer: BufferId(4), map: MapType::From }.data_buffer(),
            Some(BufferId(4))
        );
        assert_eq!(TaskKind::Host { cost_hint: 0.1 }.data_buffer(), None);
    }

    #[test]
    fn program_order_is_topological() {
        let (g, _) = listing1_graph();
        let order = g.topological_order();
        for e in g.edges() {
            let from_pos = order.iter().position(|&t| t == e.from).unwrap();
            let to_pos = order.iter().position(|&t| t == e.to).unwrap();
            assert!(from_pos < to_pos);
        }
    }
}
