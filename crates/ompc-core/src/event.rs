//! The origin (head-node) side of the MPI-based event system (paper §4.2).
//!
//! Every operation on a worker node is an *event*: the head allocates a
//! fresh tag, picks a communicator round-robin, sends a new-event
//! notification to the destination's gate thread, exchanges any payload
//! messages on the `(tag, communicator)` channel, and finally waits for the
//! **typed reply** ([`crate::protocol::EventReply`]) on that same channel.
//! Because the tag is unique per event and shared only with the
//! destination, concurrent events cannot cross-talk even though many head
//! worker threads issue them at the same time.
//!
//! A reply is either `Ok(payload)` or `Err(OmpcError)`: worker-side handler
//! failures (unregistered kernels, missing buffers, killed nodes) come back
//! as [`crate::types::OmpcError::RemoteEvent`] values naming the origin
//! node and event tag, never as a silently missing completion. As a last
//! line of defence against a reply that can never arrive (a worker thread
//! that died without answering), every wait is additionally bounded by
//! [`crate::config::OmpcConfig::event_reply_timeout_ms`].

use crate::protocol::{
    EventNotification, EventReply, EventRequest, TaskStamps, CONTROL_TAG, FIRST_EVENT_TAG,
    PREFETCH_TAG,
};
use crate::types::{BufferId, KernelId, NodeId, OmpcResult};
use ompc_mpi::{CommId, Communicator, Tag};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters describing the event traffic of a device lifetime.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Number of events issued.
    pub events: AtomicU64,
    /// Number of data-carrying events (submit / retrieve / exchange).
    pub data_events: AtomicU64,
    /// Bytes moved by data-carrying events.
    pub bytes_moved: AtomicU64,
}

impl EventCounters {
    pub(crate) fn record(&self, data_bytes: Option<u64>) {
        self.events.fetch_add(1, Ordering::Relaxed);
        if let Some(bytes) = data_bytes {
            self.data_events.fetch_add(1, Ordering::Relaxed);
            self.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
        }
    }
}

/// Head-node handle used to drive worker nodes through events.
#[derive(Debug)]
pub struct EventSystem {
    comm: Communicator,
    next_tag: AtomicU64,
    counters: EventCounters,
    /// Upper bound on any single reply wait; `None` waits forever.
    reply_timeout: Option<Duration>,
}

impl EventSystem {
    /// Create an event system over the head node's world communicator, with
    /// reply waits unbounded.
    pub fn new(comm: Communicator) -> Self {
        Self::with_reply_timeout(comm, None)
    }

    /// [`EventSystem::new`] with an explicit bound on every reply wait.
    pub fn with_reply_timeout(comm: Communicator, reply_timeout: Option<Duration>) -> Self {
        Self {
            comm,
            next_tag: AtomicU64::new(FIRST_EVENT_TAG),
            counters: EventCounters::default(),
            reply_timeout,
        }
    }

    /// Wait for the typed reply of the event on `(tag, comm)` from `node`
    /// and convert it into the event's result. Worker-side errors arrive
    /// as decoded [`crate::types::OmpcError::RemoteEvent`] values; a timed-out or
    /// undeliverable reply is a [`crate::types::OmpcError::Communication`].
    fn await_reply(&self, node: NodeId, tag: Tag, comm: CommId) -> OmpcResult<Vec<u8>> {
        self.await_reply_timed(node, tag, comm).map(|(payload, _)| payload)
    }

    /// [`EventSystem::await_reply`], preserving the worker-side telemetry
    /// stamps of a timed reply (`None` for ordinary replies).
    fn await_reply_timed(
        &self,
        node: NodeId,
        tag: Tag,
        comm: CommId,
    ) -> OmpcResult<(Vec<u8>, Option<TaskStamps>)> {
        let channel = self.comm.on(comm)?;
        let msg = match self.reply_timeout {
            Some(timeout) => channel.recv_timeout(Some(node), Some(tag), timeout)?,
            None => channel.recv(Some(node), Some(tag))?,
        };
        EventReply::decode(&msg.data)?.into_timed_result()
    }

    /// Traffic counters (events issued, data events, bytes).
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Allocate an exclusive `(tag, communicator)` channel for a new event.
    /// Communicators are chosen round-robin by tag, mirroring the paper's
    /// mapping of events onto MPICH virtual communication interfaces. Also
    /// used by the message-passing `MpiBackend`, so composite task events
    /// and this system's synchronous events share one device-unique tag
    /// space.
    pub(crate) fn open_channel(&self) -> (Tag, CommId) {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let comm = CommId((tag % u64::from(self.comm.num_communicators())) as u32);
        (Tag(tag), comm)
    }

    /// The head node's communicator handle, for backends that probe and
    /// receive replies themselves instead of blocking per event.
    pub(crate) fn communicator(&self) -> &Communicator {
        &self.comm
    }

    /// The configured upper bound on any single reply wait.
    pub(crate) fn reply_timeout(&self) -> Option<Duration> {
        self.reply_timeout
    }

    pub(crate) fn notify(&self, node: NodeId, notification: &EventNotification) -> OmpcResult<()> {
        self.comm.send(node, CONTROL_TAG, notification.encode())?;
        Ok(())
    }

    /// Allocate `size` bytes for `buffer` on `node` and wait for the reply.
    pub fn alloc(&self, node: NodeId, buffer: BufferId, size: usize) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::Alloc { buffer, size: size as u64 },
                tag,
                comm,
                timed: false,
            },
        )?;
        self.await_reply(node, tag, comm)?;
        self.counters.record(None);
        Ok(())
    }

    /// Free `buffer` on `node` and wait for the reply.
    pub fn delete(&self, node: NodeId, buffer: BufferId) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::Delete { buffer },
                tag,
                comm,
                timed: false,
            },
        )?;
        self.await_reply(node, tag, comm)?;
        self.counters.record(None);
        Ok(())
    }

    /// Copy `data` into `buffer` on `node` (host → worker) and wait for the
    /// reply.
    pub fn submit(&self, node: NodeId, buffer: BufferId, data: Vec<u8>) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        let bytes = data.len() as u64;
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::Submit { buffer },
                tag,
                comm,
                timed: false,
            },
        )?;
        self.comm.on(comm)?.send(node, tag, data)?;
        self.await_reply(node, tag, comm)?;
        self.counters.record(Some(bytes));
        Ok(())
    }

    /// Copy several buffers to `node` in one event (host → worker), the
    /// prefetch analogue of the task trains: one gate notification, the
    /// payloads streaming in order on the train's own channel, one typed
    /// reply for the whole train. The worker additionally posts exactly one
    /// [`crate::protocol::CompletionNotice`] on [`PREFETCH_TAG`] — in both
    /// its handler and zombie-refusal paths — which this call drains after
    /// the reply so the any-source prefetch channel never accumulates
    /// orphans. A train is all-or-nothing on the wire: a failed car fails
    /// the whole event and the caller rolls back every booked copy.
    pub fn submit_train(&self, node: NodeId, cars: Vec<(BufferId, Vec<u8>)>) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        let buffers: Vec<BufferId> = cars.iter().map(|(b, _)| *b).collect();
        let sizes: Vec<u64> = cars.iter().map(|(_, d)| d.len() as u64).collect();
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::SubmitTrain { buffers },
                tag,
                comm,
                timed: false,
            },
        )?;
        let channel = self.comm.on(comm)?;
        for (_, data) in cars {
            channel.send(node, tag, data)?;
        }
        let outcome = self.await_reply(node, tag, comm).map(|_| ());
        // Drain the train's single prefetch notice regardless of outcome
        // (the zombie refusal path posts one too); leaving it behind would
        // let a later train drain a stale notice for the wrong event.
        let _ = match self.reply_timeout {
            Some(timeout) => {
                self.comm.recv_timeout(Some(node), Some(PREFETCH_TAG), timeout).map(|msg| msg.data)
            }
            None => self.comm.recv(Some(node), Some(PREFETCH_TAG)).map(|msg| msg.data),
        };
        outcome?;
        for bytes in sizes {
            self.counters.record(Some(bytes));
        }
        Ok(())
    }

    /// Fetch the contents of `buffer` from `node` (worker → host).
    pub fn retrieve(&self, node: NodeId, buffer: BufferId) -> OmpcResult<Vec<u8>> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::Retrieve { buffer },
                tag,
                comm,
                timed: false,
            },
        )?;
        let data = self.await_reply(node, tag, comm)?;
        self.counters.record(Some(data.len() as u64));
        Ok(data)
    }

    /// Forward `buffer` directly from worker `from` to worker `to` without
    /// staging it on the head node, and wait for the receiver's reply.
    /// Returns the number of bytes the receiver acknowledged. A failure of
    /// the *sending* half travels through the receiver (the sender forwards
    /// its error envelope instead of the data), so the head never hangs on
    /// a half-completed exchange.
    pub fn exchange(&self, from: NodeId, to: NodeId, buffer: BufferId) -> OmpcResult<u64> {
        let (tag, comm) = self.open_channel();
        self.notify(
            to,
            &EventNotification {
                request: EventRequest::ExchangeRecv { buffer, from },
                tag,
                comm,
                timed: false,
            },
        )?;
        self.notify(
            from,
            &EventNotification {
                request: EventRequest::ExchangeSend { buffer, to },
                tag,
                comm,
                timed: false,
            },
        )?;
        let ack = self.await_reply(to, tag, comm)?;
        let bytes =
            u64::from_le_bytes(ack.get(..8).unwrap_or(&[0u8; 8]).try_into().unwrap_or([0u8; 8]));
        self.counters.record(Some(bytes));
        Ok(bytes)
    }

    /// Run `kernel` on `node` against its device copies of `buffers` and
    /// wait for the reply. An unregistered kernel comes back as
    /// [`crate::types::OmpcError::RemoteEvent`] wrapping
    /// [`crate::types::OmpcError::UnknownKernel`] — not as a hang.
    pub fn execute(
        &self,
        node: NodeId,
        kernel: KernelId,
        buffers: Vec<BufferId>,
    ) -> OmpcResult<()> {
        self.execute_timed(node, kernel, buffers, false).map(|_| ())
    }

    /// [`EventSystem::execute`] with the notification's `timed` flag under
    /// caller control: with `timed`, the worker captures its receive /
    /// dependence-wait / kernel timestamps and the reply carries them back
    /// ([`TaskStamps`]). With `timed = false` this is byte-identical to
    /// [`EventSystem::execute`] and the worker reads no clock.
    pub fn execute_timed(
        &self,
        node: NodeId,
        kernel: KernelId,
        buffers: Vec<BufferId>,
        timed: bool,
    ) -> OmpcResult<Option<TaskStamps>> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification {
                request: EventRequest::Execute { kernel, buffers },
                tag,
                comm,
                timed,
            },
        )?;
        let (_, stamps) = self.await_reply_timed(node, tag, comm)?;
        self.counters.record(None);
        Ok(stamps)
    }

    /// Clear `node`'s device memory and wait for the acknowledgement —
    /// issued between device lifetimes when warm workers are recycled, so
    /// an adopted worker pool starts from an empty device state.
    pub fn reset(&self, node: NodeId) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification { request: EventRequest::Reset, tag, comm, timed: false },
        )?;
        self.await_reply(node, tag, comm)?;
        Ok(())
    }

    /// Zero the traffic counters (warm-worker adoption: the next device
    /// lifetime starts counting from scratch).
    pub(crate) fn reset_counters(&self) {
        self.counters.events.store(0, Ordering::Relaxed);
        self.counters.data_events.store(0, Ordering::Relaxed);
        self.counters.bytes_moved.store(0, Ordering::Relaxed);
    }

    /// Kill `node`'s event loop for real (failure injection): the node
    /// stops executing events and answers every later one with an error
    /// reply. Fire-and-forget — the injector must not block on the node it
    /// just declared dead.
    pub fn kill(&self, node: NodeId) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification { request: EventRequest::Kill, tag, comm, timed: false },
        )?;
        Ok(())
    }

    /// Tell `node` to leave its gate loop and terminate.
    pub fn shutdown(&self, node: NodeId) -> OmpcResult<()> {
        let (tag, comm) = self.open_channel();
        self.notify(
            node,
            &EventNotification { request: EventRequest::Shutdown, tag, comm, timed: false },
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_unique_and_round_robin_over_communicators() {
        let world = ompc_mpi::World::with_communicators(2, 4);
        let es = EventSystem::new(world.communicator(0));
        let mut tags = Vec::new();
        let mut comms = Vec::new();
        for _ in 0..8 {
            let (tag, comm) = es.open_channel();
            tags.push(tag);
            comms.push(comm.0);
        }
        let mut unique = tags.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), tags.len(), "event tags must be unique");
        // All four communicators get used.
        let mut cs = comms.clone();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 4);
    }

    #[test]
    fn counters_record_events_and_bytes() {
        let c = EventCounters::default();
        c.record(None);
        c.record(Some(100));
        c.record(Some(50));
        assert_eq!(c.events.load(Ordering::Relaxed), 3);
        assert_eq!(c.data_events.load(Ordering::Relaxed), 2);
        assert_eq!(c.bytes_moved.load(Ordering::Relaxed), 150);
    }
}
