//! Runtime configuration: threading, scheduling policy, and the overhead
//! model used by the simulated runtime.

use crate::runtime::fault::FaultPlan;
use crate::runtime::telemetry::TelemetryLevel;
use ompc_sched::{EagerScheduler, HeftScheduler, MinMinScheduler, RoundRobinScheduler, Scheduler};
use ompc_sim::SimTime;

/// Which [`crate::runtime::ExecutionBackend`] a
/// [`crate::cluster::ClusterDevice`] drives through the unified execution
/// core. All backends share every scheduling, windowing, forwarding, and
/// recovery decision; they differ only in *how* dispatched tasks execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`crate::runtime::ThreadedBackend`]: a long-lived pool of head
    /// worker threads drives each task's events synchronously (the
    /// libomptarget hidden-helper-thread analogue). The default.
    #[default]
    Threaded,
    /// [`crate::runtime::MpiBackend`]: pure message passing — the head
    /// serializes each task into one composite event carried over
    /// `ompc-mpi` tagged messages and probes for typed completion replies,
    /// as the paper's gate thread does. No head pool threads block per
    /// in-flight task.
    Mpi,
    /// [`crate::runtime::SimBackend`]: the deterministic virtual cluster.
    /// Selected implicitly by the `simulate_ompc*` family; a
    /// [`crate::cluster::ClusterDevice`] rejects it with
    /// [`crate::types::OmpcError::InvalidConfig`] because a real device
    /// has no cost model to simulate against.
    Sim,
}

impl BackendKind {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Threaded => "threaded",
            BackendKind::Mpi => "mpi",
            BackendKind::Sim => "sim",
        }
    }
}

/// Which static scheduler the runtime uses at the implicit barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// HEFT — the paper's choice (§4.4).
    Heft,
    /// Round-robin placement (ablation baseline).
    RoundRobin,
    /// Min-min list scheduling (ablation baseline).
    MinMin,
    /// Work-stealing-like eager placement (ablation baseline).
    Eager,
}

impl SchedulerKind {
    /// Instantiate the corresponding scheduler.
    pub fn build(self) -> Box<dyn Scheduler + Send + Sync> {
        match self {
            SchedulerKind::Heft => Box::new(HeftScheduler::new()),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::MinMin => Box::new(MinMinScheduler::new()),
            SchedulerKind::Eager => Box::new(EagerScheduler::new()),
        }
    }

    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heft => "heft",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::MinMin => "min-min",
            SchedulerKind::Eager => "eager",
        }
    }
}

/// Configuration of a [`crate::cluster::ClusterDevice`] (real threaded mode)
/// and of the simulated OMPC runtime.
///
/// Build one by updating the defaults:
///
/// ```
/// use ompc_core::config::{OmpcConfig, SchedulerKind};
///
/// let config = OmpcConfig {
///     head_worker_threads: 8,
///     max_inflight_tasks: Some(32),
///     scheduler: SchedulerKind::Heft,
///     ..OmpcConfig::default()
/// };
/// assert_eq!(config.inflight_window(), 32);
/// // The head pool is sized min(threads, window, tasks): a 4-task region
/// // on this config uses 4 pool threads, a 100-task region uses 8.
/// assert_eq!(config.head_worker_threads.min(config.inflight_window()).min(4), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OmpcConfig {
    /// Which execution backend a [`crate::cluster::ClusterDevice`] drives:
    /// the threaded head pool (default) or the message-passing
    /// [`crate::runtime::MpiBackend`]. The simulated backend is selected
    /// through the `simulate_ompc*` entry points instead.
    pub backend: BackendKind,
    /// Number of event-handler threads per worker node (paper §4.2).
    pub event_handler_threads: usize,
    /// Upper bound of the head-node worker pool. In LLVM's libomptarget one
    /// OpenMP thread blocks per in-flight `target nowait` region, so the
    /// paper's runtime can keep at most this many target tasks in flight —
    /// the limitation it identifies as the main scalability bottleneck (§7).
    /// In this runtime the thread-pool size and the dispatch window are
    /// decoupled (see [`OmpcConfig::max_inflight_tasks`]), and the pool
    /// itself is **long-lived**: the device spawns
    /// `min(head_worker_threads, window, tasks)` threads lazily for the
    /// largest region seen so far and reuses them across region
    /// executions instead of spawning/joining a fresh pool per region.
    pub head_worker_threads: usize,
    /// Size of the pipelined dispatch window: how many target regions the
    /// unified execution core keeps in flight at once, overlapping their
    /// input forwarding with other regions' compute. `None` reproduces the
    /// libomptarget-style per-thread limit (`head_worker_threads`, the §7
    /// bottleneck); `Some(n)` sets the window explicitly, independent of
    /// the thread pool.
    pub max_inflight_tasks: Option<usize>,
    /// Whether the in-flight limit is enforced (disabling it models the
    /// "fully asynchronous libomptarget" fix the paper proposes as future
    /// work; used in the ablation bench).
    pub enforce_in_flight_limit: bool,
    /// Issue a task's input transfers strictly one at a time, the way a
    /// blocked libomptarget head thread processes a target region's map
    /// items in order. Disabled by default: the pipelined dispatch loop
    /// issues all of a task's input forwards concurrently.
    pub serial_input_transfers: bool,
    /// Number of MPI communicators created at start-up and used round-robin
    /// by the event system.
    pub num_communicators: u32,
    /// Static scheduler used at the implicit barrier.
    pub scheduler: SchedulerKind,
    /// Whether the data manager forwards buffers directly between worker
    /// nodes (paper §4.3). Disabling it stages every transfer through the
    /// head node, the behaviour the DM was built to avoid; used by the
    /// ablation benchmark.
    pub worker_to_worker_forwarding: bool,
    /// Deterministic failure-injection plan honoured by both execution
    /// backends (paper §3.1 fault tolerance). Empty by default: no node
    /// ever fails and the fault subsystem stays entirely out of the
    /// dispatch loop.
    pub fault_plan: FaultPlan,
    /// When a failure is declared, re-run the configured static scheduler
    /// over the surviving workers instead of the fast round-robin
    /// [`crate::heartbeat::plan_recovery`] path.
    pub replan_on_failure: bool,
    /// Ring-heartbeat period in milliseconds (paper §3.1). In the simulated
    /// backend heartbeats follow virtual time; in the threaded backend the
    /// dispatch loop advances a logical clock by one period per round.
    pub heartbeat_period_ms: u64,
    /// Number of consecutive missed heartbeat periods after which a silent
    /// node is declared failed.
    pub heartbeat_miss_threshold: u32,
    /// Upper bound (milliseconds) on any single wait for an event reply in
    /// the threaded backend, or `None` to wait forever. The event-reply
    /// protocol guarantees every event is answered — success or typed
    /// error — so this is a last line of defence against a reply that can
    /// never arrive (e.g. a worker thread that died without answering);
    /// hitting it surfaces as an [`crate::types::OmpcError::Communication`]
    /// instead of a hang. `None` by default — a kernel is allowed to run
    /// arbitrarily long — and set to 60 s in [`OmpcConfig::small`], the
    /// test configuration, where kernels are tiny and a lost reply should
    /// fail the suite fast. When enabling it for production runs, budget
    /// for the slowest kernel plus queueing delay on the worker's handler
    /// pool.
    pub event_reply_timeout_ms: Option<u64>,
    /// Idle timeout (milliseconds) after which a head pool thread that
    /// received no work exits, letting the long-lived
    /// [`crate::runtime::HeadWorkerPool`] shrink below its high-water mark.
    /// `None` (the default) keeps the historical behaviour: the pool only
    /// ever grows, which is right for steady workloads but wastes threads
    /// on a device alternating huge and tiny regions. The pool re-grows
    /// lazily on the next region that needs more threads, so enabling the
    /// reaper trades idle memory for occasional re-spawn latency.
    pub pool_idle_timeout_ms: Option<u64>,
    /// Pack all tasks a dispatch round sends to one node into a single
    /// [`crate::protocol::EventRequest::TaskTrain`] message instead of one
    /// tagged message per task (the §7 per-task messaging cost). The worker
    /// runs the train in order and still replies **per task** on each car's
    /// own channel, so error blame, zombie-gate refusals, and fault
    /// recovery stay per-task. Only the [`crate::runtime::MpiBackend`]
    /// reads this knob; a round that sends a node exactly one task is sent
    /// as a plain `Task` message, wire-identical to batching disabled.
    /// Enabled by default.
    pub task_train_batching: bool,
    /// Keep the MPI worker loops of a [`crate::cluster::ClusterDevice`]
    /// alive after [`crate::cluster::ClusterDevice::shutdown`] and let the
    /// next device with the same shape (workers, communicators, handler
    /// threads) adopt them instead of spawning fresh ones — amortizing the
    /// fig. 7(a) startup share across runs. Workers are reset (device
    /// memory cleared, counters zeroed) between lifetimes, and a device
    /// that saw any node failure is never parked — a failed pool is torn
    /// down cold. Enabled by default; disable for tests that count spawned
    /// threads across device lifetimes.
    pub warm_worker_keepalive: bool,
    /// Start the transfers of [`crate::cluster::ClusterDevice::enter_data`]
    /// asynchronously: `enter_data` (and the `_f64s` variant) books the
    /// distribution in the [`crate::data_manager::DataManager`] in-flight
    /// table, hands it to the device's async transfer engine, and returns
    /// immediately; the first reader — a region task or a host read —
    /// awaits the in-flight entry instead of re-submitting. The explicit
    /// `enter_data_async` entry points always run asynchronously and return
    /// a ticket regardless of this knob. Disabled by default: `enter_data`
    /// blocks until the data landed, the historical behaviour.
    pub enter_data_async: bool,
    /// How many queued target regions ahead of the running one the
    /// cross-region prefetcher ([`crate::cluster::ClusterDevice::run_pipeline`])
    /// may stream enter-data inputs for while earlier regions compute
    /// (the §4.4 pipelined-dispatch extension to the data path). `0`
    /// disables prefetch: queued regions distribute their inputs only when
    /// they start. Prefetches never duplicate resident copies and roll
    /// back onto survivors when a target node dies mid-flight.
    pub prefetch_depth: usize,
    /// How many independent target regions the device admits into execution
    /// at once. `1` (the default) serializes regions exactly as before:
    /// each `execute_region` call runs alone and produces byte-identical
    /// records, reports, and transfer plans to the historical behaviour.
    /// Raising it lets that many clients run concurrently over the shared
    /// head worker pool and residency table — admission is strictly FIFO
    /// (a huge region cannot starve the small ones queued behind it; they
    /// were admitted in arrival order), each admitted region plans against
    /// a load snapshot of the regions already in flight, and every region
    /// keeps its own transfer-log namespace, telemetry scope, and
    /// [`crate::runtime::RunRecord`]. `0` is treated as `1`.
    pub max_concurrent_regions: usize,
    /// Minimum destination count at which a one-to-many distribution is
    /// planned as a **binomial broadcast tree** of worker-to-worker relays
    /// instead of a star of independent source-sourced sends. When a single
    /// planning step (a region's read-only input set, an async enter-data
    /// booking, or a prefetch train) must place one buffer on `k`
    /// destinations and `k >= collective_min_fanout`, the source sends
    /// O(log k) copies and interior recipients fan the payload onward, so
    /// the source link stops serializing `k` wire trips. `0` (the default)
    /// disables collectives entirely; any distribution below the threshold
    /// is planned exactly as before, byte-identical transfer logs included.
    /// Only the real backends honour the knob — the simulated backend keeps
    /// its analytic star model.
    pub collective_min_fanout: usize,
    /// Frame size, in KiB, of the chunked payload stream used by collective
    /// broadcast trees. With a positive value a relayed buffer travels as a
    /// pipeline of frames — an interior relay forwards frame `i` to its
    /// children while frame `i + 1` is still on the wire to it — overlapping
    /// serialization, transmission, and fan-out along the tree. `0` (the
    /// default) sends each relayed buffer as a single whole-buffer frame.
    /// Ignored outside collective distributions; point-to-point transfers
    /// are never chunked.
    pub collective_chunk_kib: usize,
    /// Opt-in wire emulation for benchmarking: when positive, every rank's
    /// outbound messages serialize through a per-rank egress budget of this
    /// many MiB/s, so `k` concurrent sends from one node genuinely queue on
    /// its link the way they would on a single NIC. `0` (the default)
    /// delivers at memcpy speed with no pacing. Purely a wall-clock model:
    /// delivery order, transfer plans, logs, and outputs are unaffected.
    pub emulated_link_mib_per_s: usize,
    /// How much the runtime records about its own execution (see
    /// [`crate::runtime::telemetry`]). [`TelemetryLevel::Off`] (the
    /// default) reaches no clock read and leaves
    /// [`crate::runtime::RunRecord::spans`] empty;
    /// [`TelemetryLevel::Spans`] records the full per-task lifecycle span
    /// stream on both real backends, exportable as a Chrome-trace timeline
    /// and foldable into an overhead attribution. Spans are observational:
    /// dispatch orders, completion orders, and transfer plans are identical
    /// at every level.
    pub telemetry: TelemetryLevel,
}

impl Default for OmpcConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::Threaded,
            // The paper's nodes have 24 cores / 48 hardware threads; the
            // OpenMP hidden-helper/worker pool on the head node is what
            // bounds in-flight target regions.
            event_handler_threads: 2,
            head_worker_threads: 48,
            max_inflight_tasks: None,
            enforce_in_flight_limit: true,
            serial_input_transfers: false,
            num_communicators: 8,
            scheduler: SchedulerKind::Heft,
            worker_to_worker_forwarding: true,
            fault_plan: FaultPlan::default(),
            replan_on_failure: false,
            heartbeat_period_ms: 10,
            heartbeat_miss_threshold: 3,
            event_reply_timeout_ms: None,
            pool_idle_timeout_ms: None,
            task_train_batching: true,
            warm_worker_keepalive: true,
            enter_data_async: false,
            prefetch_depth: 1,
            max_concurrent_regions: 1,
            collective_min_fanout: 0,
            collective_chunk_kib: 0,
            emulated_link_mib_per_s: 0,
            telemetry: TelemetryLevel::Off,
        }
    }
}

impl OmpcConfig {
    /// A configuration sized for small in-process tests: few threads, few
    /// communicators.
    pub fn small() -> Self {
        Self {
            backend: BackendKind::Threaded,
            event_handler_threads: 1,
            head_worker_threads: 4,
            max_inflight_tasks: None,
            enforce_in_flight_limit: true,
            serial_input_transfers: false,
            num_communicators: 2,
            scheduler: SchedulerKind::Heft,
            worker_to_worker_forwarding: true,
            fault_plan: FaultPlan::default(),
            replan_on_failure: false,
            heartbeat_period_ms: 10,
            heartbeat_miss_threshold: 3,
            event_reply_timeout_ms: Some(60_000),
            pool_idle_timeout_ms: None,
            task_train_batching: true,
            warm_worker_keepalive: true,
            enter_data_async: false,
            prefetch_depth: 1,
            max_concurrent_regions: 1,
            collective_min_fanout: 0,
            collective_chunk_kib: 0,
            emulated_link_mib_per_s: 0,
            telemetry: TelemetryLevel::Off,
        }
    }

    /// The configuration that reproduces the paper's libomptarget behaviour
    /// exactly: a dispatch window of one task per head worker thread and
    /// per-task input transfers issued one at a time (the §7 bottleneck).
    pub fn legacy_libomptarget() -> Self {
        Self { max_inflight_tasks: None, serial_input_transfers: true, ..Self::default() }
    }

    /// The effective dispatch-window size honoured by every execution
    /// backend: `usize::MAX` when the limit is lifted, the explicit
    /// [`OmpcConfig::max_inflight_tasks`] when set, and the libomptarget
    /// per-thread limit otherwise.
    pub fn inflight_window(&self) -> usize {
        if !self.enforce_in_flight_limit {
            usize::MAX
        } else {
            self.max_inflight_tasks.unwrap_or(self.head_worker_threads).max(1)
        }
    }

    /// The effective admission limit: how many regions may execute at once.
    /// `0` is clamped to `1` — a device that admits nothing would deadlock
    /// its first client.
    pub fn admission_limit(&self) -> usize {
        self.max_concurrent_regions.max(1)
    }

    /// The effective collective threshold: `None` when broadcast trees are
    /// disabled ([`OmpcConfig::collective_min_fanout`] of `0`), otherwise
    /// the minimum destination count, clamped to at least `2` — a
    /// one-destination "tree" is definitionally the existing point-to-point
    /// path and must stay byte-identical to it.
    pub fn collective_threshold(&self) -> Option<usize> {
        match self.collective_min_fanout {
            0 => None,
            n => Some(n.max(2)),
        }
    }

    /// The collective frame size in bytes: `0` means each relayed buffer
    /// travels as one whole-buffer frame.
    pub fn collective_chunk_bytes(&self) -> usize {
        self.collective_chunk_kib.saturating_mul(1024)
    }
}

/// Overhead constants of the simulated OMPC runtime, calibrated against the
/// runtime-overhead characterization of Fig. 7(a): start-up and shutdown are
/// constant, there is a fixed cost per scheduled task and per dispatched
/// event, and the whole runtime adds roughly 25 ms of constant overhead with
/// a ~4.7 ms gap after the first event.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadModel {
    /// Time from process start to the creation of the gate threads.
    pub startup: SimTime,
    /// Time from gate-thread destruction to process exit.
    pub shutdown: SimTime,
    /// Fixed scheduling cost per task in the graph (HEFT is O(e × p); the
    /// per-task constant folds the per-edge work of the patterns used).
    pub schedule_per_task: SimTime,
    /// Fixed scheduling cost per edge in the graph.
    pub schedule_per_edge: SimTime,
    /// Head-node bookkeeping to create and dispatch one event (origin side
    /// of the event system).
    pub event_dispatch: SimTime,
    /// Head-node bookkeeping to retire a completed event.
    pub event_completion: SimTime,
    /// Worker-node bookkeeping to handle one event (gate thread + handler).
    pub worker_event_handling: SimTime,
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self {
            startup: SimTime::from_millis(12),
            shutdown: SimTime::from_millis(8),
            schedule_per_task: SimTime::from_micros(25),
            schedule_per_edge: SimTime::from_micros(5),
            event_dispatch: SimTime::from_micros(120),
            event_completion: SimTime::from_micros(60),
            worker_event_handling: SimTime::from_micros(80),
        }
    }
}

impl OverheadModel {
    /// Total scheduling overhead for a graph of `tasks` tasks and `edges`
    /// edges.
    pub fn schedule_time(&self, tasks: usize, edges: usize) -> SimTime {
        SimTime(self.schedule_per_task.0 * tasks as u64 + self.schedule_per_edge.0 * edges as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kinds_build_their_scheduler() {
        for kind in [
            SchedulerKind::Heft,
            SchedulerKind::RoundRobin,
            SchedulerKind::MinMin,
            SchedulerKind::Eager,
        ] {
            let s = kind.build();
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn backend_kinds_have_stable_names_and_threaded_default() {
        assert_eq!(BackendKind::default(), BackendKind::Threaded);
        assert_eq!(BackendKind::Threaded.name(), "threaded");
        assert_eq!(BackendKind::Mpi.name(), "mpi");
        assert_eq!(BackendKind::Sim.name(), "sim");
        assert_eq!(OmpcConfig::default().backend, BackendKind::Threaded);
        assert_eq!(OmpcConfig::small().backend, BackendKind::Threaded);
        // The idle reaper is opt-in.
        assert_eq!(OmpcConfig::default().pool_idle_timeout_ms, None);
        assert_eq!(OmpcConfig::small().pool_idle_timeout_ms, None);
        // Task-train batching and warm-worker keepalive are on by default.
        assert!(OmpcConfig::default().task_train_batching);
        assert!(OmpcConfig::small().task_train_batching);
        assert!(OmpcConfig::default().warm_worker_keepalive);
        assert!(OmpcConfig::small().warm_worker_keepalive);
        // Telemetry is off by default: no clock reads, empty span streams.
        assert_eq!(OmpcConfig::default().telemetry, crate::runtime::TelemetryLevel::Off);
        assert_eq!(OmpcConfig::small().telemetry, crate::runtime::TelemetryLevel::Off);
        // enter_data stays blocking unless opted in; the pipeline prefetches
        // one region ahead by default.
        assert!(!OmpcConfig::default().enter_data_async);
        assert!(!OmpcConfig::small().enter_data_async);
        assert_eq!(OmpcConfig::default().prefetch_depth, 1);
        assert_eq!(OmpcConfig::small().prefetch_depth, 1);
        // Regions are serialized unless the client opts into concurrency;
        // a zero limit is clamped so the device always admits someone.
        assert_eq!(OmpcConfig::default().max_concurrent_regions, 1);
        assert_eq!(OmpcConfig::small().max_concurrent_regions, 1);
        assert_eq!(OmpcConfig::default().admission_limit(), 1);
        assert_eq!(
            OmpcConfig { max_concurrent_regions: 0, ..OmpcConfig::small() }.admission_limit(),
            1
        );
        assert_eq!(
            OmpcConfig { max_concurrent_regions: 4, ..OmpcConfig::small() }.admission_limit(),
            4
        );
    }

    #[test]
    fn collective_knobs_default_off_and_resolve() {
        // Broadcast trees are strictly opt-in: the default configuration
        // plans every distribution as the historical star.
        assert_eq!(OmpcConfig::default().collective_min_fanout, 0);
        assert_eq!(OmpcConfig::small().collective_min_fanout, 0);
        assert_eq!(OmpcConfig::default().collective_chunk_kib, 0);
        assert_eq!(OmpcConfig::small().collective_chunk_kib, 0);
        assert_eq!(OmpcConfig::default().collective_threshold(), None);
        // A one-destination tree is meaningless; the threshold clamps to 2.
        let c = OmpcConfig { collective_min_fanout: 1, ..OmpcConfig::small() };
        assert_eq!(c.collective_threshold(), Some(2));
        let c = OmpcConfig { collective_min_fanout: 4, ..OmpcConfig::small() };
        assert_eq!(c.collective_threshold(), Some(4));
        // Chunk size resolves KiB -> bytes; zero means whole-buffer frames.
        assert_eq!(OmpcConfig::default().collective_chunk_bytes(), 0);
        let c = OmpcConfig { collective_chunk_kib: 64, ..OmpcConfig::small() };
        assert_eq!(c.collective_chunk_bytes(), 64 * 1024);
    }

    #[test]
    fn default_config_enforces_in_flight_limit() {
        let c = OmpcConfig::default();
        assert!(c.enforce_in_flight_limit);
        assert_eq!(c.head_worker_threads, 48);
        assert!(c.num_communicators >= 1);
        let s = OmpcConfig::small();
        assert!(s.head_worker_threads < c.head_worker_threads);
    }

    #[test]
    fn inflight_window_resolution() {
        let mut c = OmpcConfig::default();
        // Legacy default: one in-flight task per head worker thread.
        assert_eq!(c.inflight_window(), c.head_worker_threads);
        c.max_inflight_tasks = Some(7);
        assert_eq!(c.inflight_window(), 7);
        c.max_inflight_tasks = Some(0);
        assert_eq!(c.inflight_window(), 1, "window is clamped to at least one task");
        c.enforce_in_flight_limit = false;
        assert_eq!(c.inflight_window(), usize::MAX);
        let legacy = OmpcConfig::legacy_libomptarget();
        assert!(legacy.serial_input_transfers);
        assert_eq!(legacy.inflight_window(), legacy.head_worker_threads);
    }

    #[test]
    fn schedule_time_scales_with_graph_size() {
        let m = OverheadModel::default();
        let small = m.schedule_time(10, 20);
        let large = m.schedule_time(1000, 3000);
        assert!(large > small);
        assert_eq!(
            m.schedule_time(2, 3),
            SimTime(m.schedule_per_task.0 * 2 + m.schedule_per_edge.0 * 3)
        );
    }
}
