//! The simulated OMPC runtime: the same scheduling and data-movement logic
//! as the threaded runtime, driven over the `ompc-sim` virtual cluster.
//!
//! This is what regenerates the paper's figures at 2–64 nodes on a small
//! host. The model captures the behaviours the paper identifies as decisive
//! for OMPC's performance:
//!
//! * the whole graph is scheduled statically with HEFT before execution
//!   (scheduling overhead grows with graph size, Fig. 7a);
//! * every task dispatch and completion passes through the head node's
//!   event system and pays a per-event cost;
//! * input data is forwarded worker-to-worker (never staged through the
//!   head) when the producer ran on another worker;
//! * root tasks receive their initial data from the head node and sink
//!   results are retrieved back to it (enter / exit data);
//! * the head node can only keep a bounded number of target tasks in
//!   flight — one per head worker thread, the libomptarget limitation the
//!   paper blames for the scalability drop at 32–64 nodes (§7).

use crate::config::{OmpcConfig, OverheadModel};
use crate::model::WorkloadGraph;
use crate::types::NodeId;
use ompc_sim::{ClusterConfig, Completion, Engine, SimContext, SimProcess, SimStats, SimTime, Token, Trace};
use ompc_sched::Platform;
use std::collections::VecDeque;

const TOK_STARTUP: u64 = 1 << 48;
const TOK_SCHEDULE: u64 = 2 << 48;
const TOK_DISPATCH: u64 = 3 << 48;
const TOK_TRANSFER: u64 = 4 << 48;
const TOK_COMPUTE: u64 = 5 << 48;
const TOK_COMPLETE: u64 = 6 << 48;
const TOK_RETRIEVE: u64 = 7 << 48;
const TOK_SHUTDOWN: u64 = 8 << 48;
const TOK_STAGE: u64 = 9 << 48;
const TOK_MASK: u64 = (1 << 48) - 1;

/// Result of one simulated OMPC run.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpcSimResult {
    /// Total virtual execution time (the quantity plotted in Figs. 5 and 6).
    pub makespan: SimTime,
    /// Start-up overhead (process start to gate-thread creation).
    pub startup: SimTime,
    /// Whole-graph scheduling overhead.
    pub schedule: SimTime,
    /// Shutdown overhead.
    pub shutdown: SimTime,
    /// Aggregate engine statistics (per-node compute, messages, bytes).
    pub stats: SimStats,
}

impl OmpcSimResult {
    /// Time not attributable to start-up, scheduling, or shutdown.
    pub fn execution(&self) -> SimTime {
        self.makespan
            .saturating_sub(self.startup)
            .saturating_sub(self.schedule)
            .saturating_sub(self.shutdown)
    }

    /// Overhead fractions of the total wall time, as plotted in Fig. 7(a):
    /// `(startup, schedule, shutdown)` each divided by the makespan.
    pub fn overhead_fractions(&self) -> (f64, f64, f64) {
        let total = self.makespan.as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.startup.as_secs_f64() / total,
            self.schedule.as_secs_f64() / total,
            self.shutdown.as_secs_f64() / total,
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Startup,
    Schedule,
    Running,
    Draining,
    ShuttingDown,
    Done,
}

/// The [`SimProcess`] implementing the OMPC execution protocol over a
/// [`WorkloadGraph`].
pub struct OmpcSimProcess<'w> {
    workload: &'w WorkloadGraph,
    overheads: OverheadModel,
    assignment: Vec<NodeId>,
    limit: usize,
    forwarding: bool,
    phase: Phase,
    remaining_preds: Vec<usize>,
    pending_inputs: Vec<usize>,
    /// Remaining input transfers of a dispatched task, issued one at a time
    /// because the blocked head worker thread that owns the task performs
    /// its data movements sequentially (submit/exchange then wait), exactly
    /// as libomptarget processes a target region's map items in order.
    input_queue: Vec<VecDeque<(NodeId, u64)>>,
    staged_inputs: Vec<Vec<u64>>,
    ready: VecDeque<usize>,
    in_flight: usize,
    completed: usize,
    retrievals_pending: usize,
    schedule_time: SimTime,
}

impl<'w> OmpcSimProcess<'w> {
    /// Build the process: runs the configured static scheduler immediately
    /// (the real HEFT code) to obtain the task-to-node assignment.
    pub fn new(
        workload: &'w WorkloadGraph,
        cluster: &ClusterConfig,
        config: &OmpcConfig,
        overheads: OverheadModel,
    ) -> Self {
        let workers = cluster.worker_nodes().max(1);
        let platform = Platform::homogeneous(
            workers,
            (cluster.network.latency + cluster.network.per_message_overhead).as_secs_f64(),
            cluster.network.bandwidth_bytes_per_sec,
        );
        let schedule = config.scheduler.build().schedule(&workload.graph, &platform);
        let assignment: Vec<NodeId> =
            (0..workload.len()).map(|t| schedule.proc_of(t) + 1).collect();
        let limit = if config.enforce_in_flight_limit {
            config.head_worker_threads.max(1)
        } else {
            usize::MAX
        };
        let remaining_preds =
            (0..workload.len()).map(|t| workload.graph.predecessors(t).len()).collect();
        let schedule_time =
            overheads.schedule_time(workload.len(), workload.graph.edges().len());
        Self {
            workload,
            overheads,
            assignment,
            limit,
            forwarding: config.worker_to_worker_forwarding,
            phase: Phase::Startup,
            remaining_preds,
            pending_inputs: vec![0; workload.len()],
            input_queue: vec![VecDeque::new(); workload.len()],
            staged_inputs: vec![Vec::new(); workload.len()],
            ready: VecDeque::new(),
            in_flight: 0,
            completed: 0,
            retrievals_pending: 0,
            schedule_time,
        }
    }

    /// The node each task was assigned to (worker nodes are 1-based).
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// Scheduling overhead charged for this graph.
    pub fn schedule_time(&self) -> SimTime {
        self.schedule_time
    }

    fn try_dispatch(&mut self, ctx: &mut SimContext) {
        while self.in_flight < self.limit {
            let Some(task) = self.ready.pop_front() else { break };
            self.in_flight += 1;
            ctx.runtime(
                0,
                self.overheads.event_dispatch,
                TOK_DISPATCH | task as u64,
                format!("dispatch t{task}"),
            );
        }
    }

    fn issue_inputs(&mut self, task: usize, ctx: &mut SimContext) {
        let node = self.assignment[task];
        let mut queue: VecDeque<(NodeId, u64)> = VecDeque::new();
        for &pred in self.workload.graph.predecessors(task) {
            let bytes = self.workload.graph.edge_bytes(pred, task);
            if bytes == 0 {
                continue;
            }
            let src = self.assignment[pred];
            if src != node {
                queue.push_back((src, bytes));
            }
        }
        if self.workload.graph.predecessors(task).is_empty() {
            let bytes = self.workload.output_bytes[task];
            if bytes > 0 {
                // Initial data distributed from the head node (enter data).
                queue.push_back((0, bytes));
            }
        }
        self.pending_inputs[task] = queue.len();
        self.input_queue[task] = queue;
        if self.pending_inputs[task] == 0 {
            self.start_compute(task, ctx);
        } else {
            self.issue_next_input(task, ctx);
        }
    }

    /// Issue the next queued input transfer of `task`. Transfers of one
    /// task are sequential (the head worker thread owning the task blocks
    /// on each data-movement event in turn); transfers of different tasks
    /// still overlap freely.
    fn issue_next_input(&mut self, task: usize, ctx: &mut SimContext) {
        let Some((src, bytes)) = self.input_queue[task].pop_front() else { return };
        let node = self.assignment[task];
        if self.forwarding || src == 0 {
            ctx.send_labeled(src, node, bytes, TOK_TRANSFER | task as u64, format!("in t{task}"));
        } else {
            // Forwarding disabled (ablation): stage the buffer through the
            // head node, then on to the consumer.
            self.staged_inputs[task].push(bytes);
            ctx.send_labeled(src, 0, bytes, TOK_STAGE | task as u64, format!("stage t{task}"));
        }
    }

    fn start_compute(&mut self, task: usize, ctx: &mut SimContext) {
        let node = self.assignment[task];
        let cost = SimTime::from_secs_f64(self.workload.graph.tasks()[task].cost)
            + self.overheads.worker_event_handling;
        ctx.compute_labeled(node, cost, TOK_COMPUTE | task as u64, format!("t{task}"));
    }

    fn finish_task(&mut self, task: usize, ctx: &mut SimContext) {
        self.completed += 1;
        self.in_flight -= 1;
        for &succ in self.workload.graph.successors(task) {
            self.remaining_preds[succ] -= 1;
            if self.remaining_preds[succ] == 0 {
                self.ready.push_back(succ);
            }
        }
        if self.completed == self.workload.len() {
            self.phase = Phase::Draining;
            // Retrieve the results of every sink task back to the head node
            // (exit data).
            for sink in self.workload.graph.sinks() {
                let node = self.assignment[sink];
                let bytes = self.workload.output_bytes[sink];
                if node != 0 && bytes > 0 {
                    ctx.send_labeled(node, 0, bytes, TOK_RETRIEVE | sink as u64, format!("out t{sink}"));
                    self.retrievals_pending += 1;
                }
            }
            if self.retrievals_pending == 0 {
                self.begin_shutdown(ctx);
            }
        } else {
            self.try_dispatch(ctx);
        }
    }

    fn begin_shutdown(&mut self, ctx: &mut SimContext) {
        self.phase = Phase::ShuttingDown;
        ctx.runtime(0, self.overheads.shutdown, TOK_SHUTDOWN, "shutdown".to_string());
    }
}

impl SimProcess for OmpcSimProcess<'_> {
    fn init(&mut self, ctx: &mut SimContext) {
        if self.workload.is_empty() {
            ctx.stop();
            return;
        }
        ctx.runtime(0, self.overheads.startup, TOK_STARTUP, "startup".to_string());
    }

    fn on_completion(&mut self, completion: Completion, ctx: &mut SimContext) {
        let token: Token = completion.token();
        let kind = token & !TOK_MASK;
        let task = (token & TOK_MASK) as usize;
        match kind {
            TOK_STARTUP => {
                self.phase = Phase::Schedule;
                ctx.runtime(0, self.schedule_time, TOK_SCHEDULE, "schedule".to_string());
            }
            TOK_SCHEDULE => {
                self.phase = Phase::Running;
                self.ready = self.workload.graph.roots().into();
                self.try_dispatch(ctx);
            }
            TOK_DISPATCH => self.issue_inputs(task, ctx),
            TOK_STAGE => {
                let bytes = self.staged_inputs[task].pop().expect("staged transfer bookkeeping");
                let node = self.assignment[task];
                ctx.send_labeled(0, node, bytes, TOK_TRANSFER | task as u64, format!("in t{task}"));
            }
            TOK_TRANSFER => {
                self.pending_inputs[task] -= 1;
                if self.pending_inputs[task] == 0 {
                    self.start_compute(task, ctx);
                } else {
                    self.issue_next_input(task, ctx);
                }
            }
            TOK_COMPUTE => {
                ctx.runtime(
                    0,
                    self.overheads.event_completion,
                    TOK_COMPLETE | task as u64,
                    format!("complete t{task}"),
                );
            }
            TOK_COMPLETE => self.finish_task(task, ctx),
            TOK_RETRIEVE => {
                self.retrievals_pending -= 1;
                if self.retrievals_pending == 0 {
                    self.begin_shutdown(ctx);
                }
            }
            TOK_SHUTDOWN => {
                self.phase = Phase::Done;
                ctx.stop();
            }
            _ => unreachable!("unknown token kind {kind:#x}"),
        }
    }
}

/// Run the simulated OMPC runtime on `workload` over `cluster` and return
/// the timing result. Tracing is disabled for speed; use
/// [`simulate_ompc_traced`] when the trace is needed.
pub fn simulate_ompc(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
) -> OmpcSimResult {
    simulate_ompc_inner(workload, cluster, config, overheads, false).0
}

/// Like [`simulate_ompc`] but also returns the full execution trace.
pub fn simulate_ompc_traced(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
) -> (OmpcSimResult, Trace) {
    simulate_ompc_inner(workload, cluster, config, overheads, true)
}

fn simulate_ompc_inner(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
    traced: bool,
) -> (OmpcSimResult, Trace) {
    let trace = if traced { Trace::new() } else { Trace::disabled() };
    let mut engine = Engine::with_trace(cluster.clone(), trace);
    let mut process = OmpcSimProcess::new(workload, cluster, config, overheads.clone());
    let schedule = process.schedule_time();
    let makespan = engine.run(&mut process);
    let (stats, trace) = engine.finish();
    (
        OmpcSimResult {
            makespan,
            startup: overheads.startup,
            schedule,
            shutdown: overheads.shutdown,
            stats,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use ompc_sched::TaskGraph;

    fn chain_workload(n: usize, cost: f64, bytes: u64) -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(cost);
        }
        for i in 1..n {
            g.add_edge(i - 1, i, bytes);
        }
        WorkloadGraph::new(g, vec![bytes; n])
    }

    fn wide_workload(width: usize, cost: f64, bytes: u64) -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..width {
            g.add_task(cost);
        }
        WorkloadGraph::new(g, vec![bytes; width])
    }

    fn default_setup(nodes: usize) -> (ClusterConfig, OmpcConfig, OverheadModel) {
        (
            ClusterConfig::santos_dumont(nodes),
            OmpcConfig::default(),
            OverheadModel::default(),
        )
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let (cluster, config, overheads) = default_setup(2);
        let w = WorkloadGraph::default();
        let r = simulate_ompc(&w, &cluster, &config, &overheads);
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn chain_makespan_is_at_least_serial_compute_plus_overheads() {
        let (cluster, config, overheads) = default_setup(3);
        let w = chain_workload(8, 0.05, 1 << 20);
        let r = simulate_ompc(&w, &cluster, &config, &overheads);
        let serial = SimTime::from_secs_f64(8.0 * 0.05);
        assert!(r.makespan > serial + overheads.startup + overheads.shutdown);
        // Every task ran exactly once.
        assert_eq!(r.stats.total_tasks(), 8);
        // Only worker nodes compute.
        assert_eq!(r.stats.nodes[0].tasks_executed, 0);
    }

    #[test]
    fn independent_tasks_scale_with_more_nodes() {
        let overheads = OverheadModel::default();
        // Lift the in-flight limit so node count (not head threads) is the
        // binding constraint in this test.
        let mut config = OmpcConfig::default();
        config.enforce_in_flight_limit = false;
        let w = wide_workload(256, 0.05, 1 << 16);
        let small = simulate_ompc(&w, &ClusterConfig::santos_dumont(3), &config, &overheads);
        let large = simulate_ompc(&w, &ClusterConfig::santos_dumont(17), &config, &overheads);
        assert!(
            large.makespan < small.makespan,
            "64 independent tasks must finish faster on 16 workers ({}) than on 2 ({})",
            large.makespan,
            small.makespan
        );
    }

    #[test]
    fn in_flight_limit_throttles_wide_graphs() {
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(9);
        let w = wide_workload(256, 0.02, 1 << 10);
        let mut limited = OmpcConfig::default();
        limited.head_worker_threads = 4;
        let mut unlimited = OmpcConfig::default();
        unlimited.enforce_in_flight_limit = false;
        let r_lim = simulate_ompc(&w, &cluster, &limited, &overheads);
        let r_unl = simulate_ompc(&w, &cluster, &unlimited, &overheads);
        assert!(
            r_lim.makespan > r_unl.makespan,
            "a 4-task in-flight limit must hurt a 256-wide graph"
        );
    }

    #[test]
    fn overhead_fraction_shrinks_with_larger_tasks() {
        let (cluster, config, overheads) = default_setup(2);
        let tiny = chain_workload(16, 2e-5, 1024);
        let big = chain_workload(16, 0.5, 1024);
        let r_tiny = simulate_ompc(&tiny, &cluster, &config, &overheads);
        let r_big = simulate_ompc(&big, &cluster, &config, &overheads);
        let frac = |r: &OmpcSimResult| {
            let (s, c, d) = r.overhead_fractions();
            s + c + d
        };
        assert!(frac(&r_tiny) > frac(&r_big));
        assert!(frac(&r_big) < 0.25, "large tasks must have small overhead");
    }

    #[test]
    fn scheduler_choice_changes_assignment() {
        let cluster = ClusterConfig::santos_dumont(5);
        let overheads = OverheadModel::default();
        let w = chain_workload(12, 0.01, 64 << 20);
        let mut heft_cfg = OmpcConfig::default();
        heft_cfg.scheduler = SchedulerKind::Heft;
        let mut rr_cfg = OmpcConfig::default();
        rr_cfg.scheduler = SchedulerKind::RoundRobin;
        let heft = OmpcSimProcess::new(&w, &cluster, &heft_cfg, overheads.clone());
        let rr = OmpcSimProcess::new(&w, &cluster, &rr_cfg, overheads.clone());
        // HEFT keeps the communication-heavy chain on one node; round robin
        // scatters it.
        let heft_nodes: std::collections::BTreeSet<_> = heft.assignment().iter().collect();
        let rr_nodes: std::collections::BTreeSet<_> = rr.assignment().iter().collect();
        assert_eq!(heft_nodes.len(), 1);
        assert!(rr_nodes.len() > 1);
        // And the simulated makespan agrees that HEFT is at least as good.
        let r_heft = simulate_ompc(&w, &cluster, &heft_cfg, &overheads);
        let r_rr = simulate_ompc(&w, &cluster, &rr_cfg, &overheads);
        assert!(r_heft.makespan <= r_rr.makespan);
    }

    #[test]
    fn traced_run_matches_untraced_makespan() {
        let (cluster, config, overheads) = default_setup(4);
        let w = chain_workload(6, 0.01, 1 << 18);
        let plain = simulate_ompc(&w, &cluster, &config, &overheads);
        let (traced, trace) = simulate_ompc_traced(&w, &cluster, &config, &overheads);
        assert_eq!(plain.makespan, traced.makespan);
        assert!(trace.len() > 0);
    }

    #[test]
    fn determinism_across_runs() {
        let (cluster, config, overheads) = default_setup(6);
        let w = chain_workload(20, 0.02, 1 << 19);
        let a = simulate_ompc(&w, &cluster, &config, &overheads);
        let b = simulate_ompc(&w, &cluster, &config, &overheads);
        assert_eq!(a, b);
    }
}
