//! The simulated OMPC runtime, as a thin façade over the unified execution
//! core: [`crate::runtime::RuntimeCore`] makes every scheduling, windowing,
//! and forwarding decision, and [`crate::runtime::SimBackend`] models their
//! cost on the deterministic virtual cluster of `ompc-sim`.
//!
//! This is what regenerates the paper's figures at 2–64 nodes on a small
//! host. The model captures the behaviours the paper identifies as decisive
//! for OMPC's performance:
//!
//! * the whole graph is scheduled statically with HEFT before execution
//!   (scheduling overhead grows with graph size, Fig. 7a);
//! * every task dispatch and completion passes through the head node's
//!   event system and pays a per-event cost;
//! * input data is forwarded worker-to-worker (never staged through the
//!   head) when the producer ran on another worker;
//! * root tasks receive their initial data from the head node and sink
//!   results are retrieved back to it (enter / exit data);
//! * the head node keeps a bounded number of target tasks in flight —
//!   [`crate::config::OmpcConfig::max_inflight_tasks`]. With the default
//!   (one task per head worker thread, the libomptarget limitation) the
//!   §7 scalability drop at 32–64 nodes reproduces; widening the window
//!   pipelines dispatch and lifts it.

use crate::config::{OmpcConfig, OverheadModel};
use crate::model::WorkloadGraph;
use crate::runtime::fault::FaultState;
use crate::runtime::sim::sim_platform;
use crate::runtime::{RunRecord, RuntimeCore, RuntimePlan, SimBackend};
use crate::types::{OmpcError, OmpcResult};
use ompc_sim::{ClusterConfig, SimStats, SimTime, Trace};

/// Result of one simulated OMPC run.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpcSimResult {
    /// Total virtual execution time (the quantity plotted in Figs. 5 and 6).
    pub makespan: SimTime,
    /// Start-up overhead (process start to gate-thread creation).
    pub startup: SimTime,
    /// Whole-graph scheduling overhead.
    pub schedule: SimTime,
    /// Shutdown overhead.
    pub shutdown: SimTime,
    /// Aggregate engine statistics (per-node compute, messages, bytes).
    pub stats: SimStats,
}

impl OmpcSimResult {
    /// Time not attributable to start-up, scheduling, or shutdown.
    pub fn execution(&self) -> SimTime {
        self.makespan
            .saturating_sub(self.startup)
            .saturating_sub(self.schedule)
            .saturating_sub(self.shutdown)
    }

    /// Overhead fractions of the total wall time, as plotted in Fig. 7(a):
    /// `(startup, schedule, shutdown)` each divided by the makespan.
    pub fn overhead_fractions(&self) -> (f64, f64, f64) {
        let total = self.makespan.as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.startup.as_secs_f64() / total,
            self.schedule.as_secs_f64() / total,
            self.shutdown.as_secs_f64() / total,
        )
    }
}

/// The outcome of one simulated OMPC run — the **one outcome-shaped API**
/// behind the whole `simulate_ompc*` family. Whatever happens to the run,
/// the execution core's decision record (and the trace, when enabled)
/// survives: a run aborted by a propagated task error still reports which
/// tasks dispatched and retired before the failure, which is what the
/// cross-backend error-equivalence tests compare. The convenience wrappers
/// ([`simulate_ompc`], [`simulate_ompc_recorded`], [`simulate_ompc_traced`],
/// [`simulate_ompc_with_plan`]) all reduce to this shape.
///
/// ```
/// use ompc_core::prelude::*;
/// use ompc_core::sim_runtime::simulate_ompc_outcome;
/// use ompc_sim::ClusterConfig;
///
/// let mut g = ompc_sched::TaskGraph::new();
/// for _ in 0..4 {
///     g.add_task(0.002);
/// }
/// for t in 1..4 {
///     g.add_edge(t - 1, t, 1024);
/// }
/// let workload = WorkloadGraph::new(g, vec![1024; 4]);
/// // Task 2's execution is forced to fail: the run errors, but the
/// // decision record still shows everything that retired first.
/// let config = OmpcConfig {
///     fault_plan: FaultPlan::none().error_on_task(2),
///     max_inflight_tasks: Some(1),
///     ..OmpcConfig::default()
/// };
/// let outcome = simulate_ompc_outcome(
///     &workload,
///     &ClusterConfig::santos_dumont(3),
///     &config,
///     &OverheadModel::default(),
///     None,
/// );
/// assert!(outcome.result.is_err());
/// assert_eq!(outcome.record.completion_order, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct OmpcSimOutcome {
    /// The timing result, or the error that aborted the run.
    pub result: OmpcResult<OmpcSimResult>,
    /// The execution core's decision record — always available, even for a
    /// failed run (it then covers everything up to the failure).
    pub record: RunRecord,
    /// The execution trace; [`Trace::disabled`] unless the run was started
    /// through a traced entry point.
    pub trace: Trace,
}

impl OmpcSimOutcome {
    /// Convert into a plain result, keeping the record and trace on
    /// success and dropping them on failure (the lossy view the pre-unified
    /// `simulate_ompc*` wrappers expose).
    pub fn into_result(self) -> OmpcResult<(OmpcSimResult, RunRecord, Trace)> {
        self.result.map(|r| (r, self.record, self.trace))
    }
}

/// Run the simulated OMPC runtime on `workload` over `cluster` and return
/// the timing result. Tracing is disabled for speed; use
/// [`simulate_ompc_traced`] when the trace is needed.
///
/// Fails with [`OmpcError::InvalidConfig`] when the cluster has no worker
/// nodes (the head node cannot execute target tasks), with
/// [`OmpcError::NodeFailure`] when an injected failure
/// ([`OmpcConfig::fault_plan`]) leaves no survivors to recover onto, and
/// with the propagated task error (an
/// [`OmpcError::RemoteEvent`]) when the fault plan injects
/// a task-execution failure — never by hanging.
///
/// ```
/// use ompc_core::prelude::*;
/// use ompc_core::sim_runtime::simulate_ompc;
/// use ompc_sim::ClusterConfig;
///
/// // A 4-task chain on a 1-head + 3-worker virtual cluster.
/// let mut graph = ompc_sched::TaskGraph::new();
/// for _ in 0..4 {
///     graph.add_task(0.01);
/// }
/// for t in 1..4 {
///     graph.add_edge(t - 1, t, 1 << 10);
/// }
/// let workload = WorkloadGraph::new(graph, vec![1 << 10; 4]);
///
/// let result = simulate_ompc(
///     &workload,
///     &ClusterConfig::santos_dumont(4),
///     &OmpcConfig::default(),
///     &OverheadModel::default(),
/// )
/// .unwrap();
/// assert!(result.makespan > ompc_sim::SimTime::ZERO);
/// assert_eq!(result.stats.total_tasks(), 4);
/// ```
pub fn simulate_ompc(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
) -> OmpcResult<OmpcSimResult> {
    simulate_ompc_outcome(workload, cluster, config, overheads, None).result
}

/// The unified error-aware entry point: run the simulation — under an
/// explicit [`RuntimePlan`] when given, the cluster-derived plan otherwise
/// — and return the full [`OmpcSimOutcome`], whose decision record
/// survives a failed run. This is the error-aware counterpart of
/// [`crate::cluster::ClusterDevice::last_run_record`]. Tracing is disabled
/// for speed; use [`simulate_ompc_outcome_traced`] when the trace is
/// needed.
pub fn simulate_ompc_outcome(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
    plan: Option<&RuntimePlan>,
) -> OmpcSimOutcome {
    simulate_outcome_inner(workload, cluster, config, overheads, plan.cloned(), false)
}

/// [`simulate_ompc_outcome`] with the execution trace enabled.
pub fn simulate_ompc_outcome_traced(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
    plan: Option<&RuntimePlan>,
) -> OmpcSimOutcome {
    simulate_outcome_inner(workload, cluster, config, overheads, plan.cloned(), true)
}

/// Like [`simulate_ompc`] but also returns the full execution trace.
pub fn simulate_ompc_traced(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
) -> OmpcResult<(OmpcSimResult, Trace)> {
    let (result, _, trace) =
        simulate_ompc_outcome_traced(workload, cluster, config, overheads, None).into_result()?;
    Ok((result, trace))
}

/// Like [`simulate_ompc`] but also returns the execution core's decision
/// record (assignment, dispatch and completion order, peak concurrency,
/// and — under an injected fault plan — the failure and recovery events).
pub fn simulate_ompc_recorded(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
) -> OmpcResult<(OmpcSimResult, RunRecord)> {
    let (result, record, _) =
        simulate_ompc_outcome(workload, cluster, config, overheads, None).into_result()?;
    Ok((result, record))
}

/// Run the simulation under an explicit, externally computed [`RuntimePlan`]
/// instead of deriving one from the cluster's network model. This is how
/// the backend-equivalence tests drive the simulated, threaded, and MPI
/// backends from the *same* plan.
pub fn simulate_ompc_with_plan(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
    plan: &RuntimePlan,
) -> OmpcResult<(OmpcSimResult, RunRecord)> {
    let (result, record, _) =
        simulate_ompc_outcome(workload, cluster, config, overheads, Some(plan)).into_result()?;
    Ok((result, record))
}

/// The static plan [`simulate_ompc`] derives for a workload: the configured
/// scheduler over the cluster's own communication model.
pub fn sim_plan(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
) -> RuntimePlan {
    RuntimePlan::for_workload(workload, &sim_platform(cluster), config)
}

fn simulate_outcome_inner(
    workload: &WorkloadGraph,
    cluster: &ClusterConfig,
    config: &OmpcConfig,
    overheads: &OverheadModel,
    plan: Option<RuntimePlan>,
    traced: bool,
) -> OmpcSimOutcome {
    let fail = |e: OmpcError| OmpcSimOutcome {
        result: Err(e),
        record: RunRecord::default(),
        trace: Trace::disabled(),
    };
    let workers = cluster.worker_nodes();
    if workers == 0 {
        return fail(OmpcError::InvalidConfig(format!(
            "cluster of {} node(s) has no worker nodes: node 0 is the head node and cannot \
             execute target tasks; configure at least 2 nodes",
            cluster.nodes
        )));
    }
    if let Err(e) = config.fault_plan.validate_task_errors(workload.len()) {
        return fail(e);
    }
    let plan = plan.unwrap_or_else(|| sim_plan(workload, cluster, config));
    let trace = if traced { Trace::new() } else { Trace::disabled() };
    let faults = match FaultState::from_config(
        &config.fault_plan,
        config.heartbeat_period_ms,
        config.heartbeat_miss_threshold,
        workers,
    ) {
        Ok(f) => f.map(|f| f.with_replan(config.replan_on_failure)),
        Err(e) => return fail(e),
    };
    let mut core = match faults {
        Some(faults) => RuntimeCore::with_faults(workload, &plan, faults),
        None => RuntimeCore::new(workload, &plan),
    };
    let mut backend = SimBackend::new(workload, cluster, config, overheads.clone(), trace);
    let executed = core.execute(&mut backend);
    let mut record = core.record();
    record.transfers = backend.take_transfers();
    if let Err(e) = executed {
        // The run failed (propagated task error, unrecoverable node loss):
        // the record of what happened before the failure survives.
        let (_, trace) = backend.finish();
        return OmpcSimOutcome { result: Err(e), record, trace };
    }
    let schedule = backend.schedule_time();
    let (stats, trace) = backend.finish();
    OmpcSimOutcome {
        result: Ok(OmpcSimResult {
            makespan: stats.makespan,
            startup: overheads.startup,
            schedule,
            shutdown: overheads.shutdown,
            stats,
        }),
        record,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use ompc_sched::TaskGraph;
    use ompc_sim::SimTime;

    fn chain_workload(n: usize, cost: f64, bytes: u64) -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(cost);
        }
        for i in 1..n {
            g.add_edge(i - 1, i, bytes);
        }
        WorkloadGraph::new(g, vec![bytes; n])
    }

    fn wide_workload(width: usize, cost: f64, bytes: u64) -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..width {
            g.add_task(cost);
        }
        WorkloadGraph::new(g, vec![bytes; width])
    }

    fn default_setup(nodes: usize) -> (ClusterConfig, OmpcConfig, OverheadModel) {
        (ClusterConfig::santos_dumont(nodes), OmpcConfig::default(), OverheadModel::default())
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let (cluster, config, overheads) = default_setup(2);
        let w = WorkloadGraph::default();
        let r = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn chain_makespan_is_at_least_serial_compute_plus_overheads() {
        let (cluster, config, overheads) = default_setup(3);
        let w = chain_workload(8, 0.05, 1 << 20);
        let r = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
        let serial = SimTime::from_secs_f64(8.0 * 0.05);
        assert!(r.makespan > serial + overheads.startup + overheads.shutdown);
        // Every task ran exactly once.
        assert_eq!(r.stats.total_tasks(), 8);
        // Only worker nodes compute.
        assert_eq!(r.stats.nodes[0].tasks_executed, 0);
    }

    #[test]
    fn independent_tasks_scale_with_more_nodes() {
        let overheads = OverheadModel::default();
        // Lift the in-flight limit so node count (not head threads) is the
        // binding constraint in this test.
        let config = OmpcConfig { enforce_in_flight_limit: false, ..OmpcConfig::default() };
        let w = wide_workload(256, 0.05, 1 << 16);
        let small =
            simulate_ompc(&w, &ClusterConfig::santos_dumont(3), &config, &overheads).unwrap();
        let large =
            simulate_ompc(&w, &ClusterConfig::santos_dumont(17), &config, &overheads).unwrap();
        assert!(
            large.makespan < small.makespan,
            "256 independent tasks must finish faster on 16 workers ({}) than on 2 ({})",
            large.makespan,
            small.makespan
        );
    }

    #[test]
    fn in_flight_limit_throttles_wide_graphs() {
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(9);
        let w = wide_workload(256, 0.02, 1 << 10);
        let limited = OmpcConfig { max_inflight_tasks: Some(4), ..OmpcConfig::default() };
        let unlimited = OmpcConfig { enforce_in_flight_limit: false, ..OmpcConfig::default() };
        let r_lim = simulate_ompc(&w, &cluster, &limited, &overheads).unwrap();
        let r_unl = simulate_ompc(&w, &cluster, &unlimited, &overheads).unwrap();
        assert!(
            r_lim.makespan > r_unl.makespan,
            "a 4-task in-flight window must hurt a 256-wide graph"
        );
    }

    #[test]
    fn shrinking_the_window_monotonically_increases_makespan() {
        // The §7 effect, as a property of the unified core: the narrower the
        // head node's dispatch window, the longer a wide graph takes.
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(9);
        let w = wide_workload(128, 0.02, 1 << 14);
        let mut previous: Option<SimTime> = None;
        for window in [1usize, 2, 4, 8, 16, 64, 256] {
            let config = OmpcConfig { max_inflight_tasks: Some(window), ..OmpcConfig::default() };
            let r = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
            if let Some(prev) = previous {
                assert!(
                    r.makespan <= prev,
                    "window {window} must not be slower than the next-narrower window \
                     ({} > {prev})",
                    r.makespan
                );
            }
            previous = Some(r.makespan);
        }
        // And the extremes differ strictly: the bottleneck is real.
        let narrow = {
            let c = OmpcConfig { max_inflight_tasks: Some(1), ..OmpcConfig::default() };
            simulate_ompc(&w, &cluster, &c, &overheads).unwrap()
        };
        let wide = {
            let c = OmpcConfig { max_inflight_tasks: Some(256), ..OmpcConfig::default() };
            simulate_ompc(&w, &cluster, &c, &overheads).unwrap()
        };
        assert!(narrow.makespan > wide.makespan);
    }

    #[test]
    fn pipelined_transfers_beat_legacy_serial_transfers() {
        // A fan-in heavy graph: each consumer pulls several large inputs.
        // Issuing them concurrently (the pipelined dispatch loop) must not
        // be slower than the legacy one-at-a-time issue, and is strictly
        // faster when transfers dominate.
        let mut g = TaskGraph::new();
        let sources = 6;
        for _ in 0..sources {
            g.add_task(0.001);
        }
        let sink = g.add_task(0.001);
        for s in 0..sources {
            g.add_edge(s, sink, 64 << 20);
        }
        let w = WorkloadGraph::new(g, vec![64 << 20; sources + 1]);
        let (cluster, _, overheads) = default_setup(8);
        let pipelined = simulate_ompc(&w, &cluster, &OmpcConfig::default(), &overheads).unwrap();
        let legacy =
            simulate_ompc(&w, &cluster, &OmpcConfig::legacy_libomptarget(), &overheads).unwrap();
        assert!(
            pipelined.makespan < legacy.makespan,
            "overlapped input forwarding ({}) must beat serial forwarding ({})",
            pipelined.makespan,
            legacy.makespan
        );
    }

    #[test]
    fn staged_transfers_pay_both_legs_even_when_pipelined() {
        // Forwarding disabled + concurrent input transfers: each staged
        // input's head->consumer leg must wait for its own worker->head leg,
        // so a large input always pays its serialization twice - regardless
        // of a small sibling input completing its first leg earlier. The
        // plan pins producer and consumer to different nodes (HEFT would
        // otherwise colocate them and avoid the transfer entirely).
        let mut g = TaskGraph::new();
        let small = g.add_task(1e-4);
        let big = g.add_task(1e-4);
        let sink = g.add_task(1e-4);
        g.add_edge(small, sink, 1 << 10);
        g.add_edge(big, sink, 256 << 20);
        let w = WorkloadGraph::new(g, vec![1 << 10, 256 << 20, 64]);
        let cluster = ClusterConfig::santos_dumont(4);
        let config = OmpcConfig {
            worker_to_worker_forwarding: false,
            serial_input_transfers: false,
            ..OmpcConfig::default()
        };
        let plan = RuntimePlan { assignment: vec![3, 1, 2], window: config.inflight_window() };
        let (r, record) =
            simulate_ompc_with_plan(&w, &cluster, &config, &OverheadModel::default(), &plan)
                .unwrap();
        assert_eq!(record.assignment, vec![3, 1, 2]);
        // The 256 MB buffer crosses the network three times: head -> big's
        // node (enter data), big's node -> head (stage), head -> sink's node.
        let one_leg = cluster.network.transfer_time(256 << 20);
        assert!(
            r.makespan >= SimTime(one_leg.0 * 3),
            "staged big input must cross the network three times: makespan {} < 3 x {one_leg}",
            r.makespan
        );
    }

    #[test]
    fn colocated_consumer_waits_for_shared_input_arrival() {
        // Two consumers of one producer pinned to the same node: the second
        // gets no transfer of its own (the copy is already on the wire for
        // the first), but it must not start computing until that copy has
        // arrived - the simulated analogue of the threaded transfer gate.
        let mut g = TaskGraph::new();
        let p = g.add_task(1e-4);
        let c1 = g.add_task(1e-4);
        let c2 = g.add_task(0.05);
        g.add_edge(p, c1, 256 << 20);
        g.add_edge(p, c2, 256 << 20);
        let w = WorkloadGraph::new(g, vec![256 << 20, 64, 64]);
        let cluster = ClusterConfig::santos_dumont(4);
        let config = OmpcConfig::default();
        let overheads = OverheadModel::default();
        let plan = RuntimePlan { assignment: vec![1, 2, 2], window: config.inflight_window() };
        let (r, _) = simulate_ompc_with_plan(&w, &cluster, &config, &overheads, &plan).unwrap();
        // The forward p -> node 2 and c2's 50 ms compute must serialize
        // (plus the initial head -> node 1 distribution of p's input).
        let one_leg = cluster.network.transfer_time(256 << 20);
        let floor = overheads.startup
            + SimTime(one_leg.0 * 2)
            + SimTime::from_secs_f64(0.05)
            + overheads.shutdown;
        assert!(
            r.makespan >= floor,
            "co-located consumer must wait for the shared input: makespan {} < floor {floor}",
            r.makespan
        );
    }

    #[test]
    fn overhead_fraction_shrinks_with_larger_tasks() {
        let (cluster, config, overheads) = default_setup(2);
        let tiny = chain_workload(16, 2e-5, 1024);
        let big = chain_workload(16, 0.5, 1024);
        let r_tiny = simulate_ompc(&tiny, &cluster, &config, &overheads).unwrap();
        let r_big = simulate_ompc(&big, &cluster, &config, &overheads).unwrap();
        let frac = |r: &OmpcSimResult| {
            let (s, c, d) = r.overhead_fractions();
            s + c + d
        };
        assert!(frac(&r_tiny) > frac(&r_big));
        assert!(frac(&r_big) < 0.25, "large tasks must have small overhead");
    }

    #[test]
    fn scheduler_choice_changes_assignment() {
        let cluster = ClusterConfig::santos_dumont(5);
        let w = chain_workload(12, 0.01, 64 << 20);
        let heft_cfg = OmpcConfig { scheduler: SchedulerKind::Heft, ..OmpcConfig::default() };
        let rr_cfg = OmpcConfig { scheduler: SchedulerKind::RoundRobin, ..OmpcConfig::default() };
        let heft = sim_plan(&w, &cluster, &heft_cfg);
        let rr = sim_plan(&w, &cluster, &rr_cfg);
        // HEFT keeps the communication-heavy chain on one node; round robin
        // scatters it.
        let heft_nodes: std::collections::BTreeSet<_> = heft.assignment.iter().collect();
        let rr_nodes: std::collections::BTreeSet<_> = rr.assignment.iter().collect();
        assert_eq!(heft_nodes.len(), 1);
        assert!(rr_nodes.len() > 1);
        // And the simulated makespan agrees that HEFT is at least as good.
        let overheads = OverheadModel::default();
        let r_heft = simulate_ompc(&w, &cluster, &heft_cfg, &overheads).unwrap();
        let r_rr = simulate_ompc(&w, &cluster, &rr_cfg, &overheads).unwrap();
        assert!(r_heft.makespan <= r_rr.makespan);
    }

    #[test]
    fn recorded_run_reports_core_decisions() {
        let (cluster, config, overheads) = default_setup(4);
        let w = chain_workload(6, 0.01, 1 << 18);
        let (result, record) = simulate_ompc_recorded(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(result.stats.total_tasks(), 6);
        // A chain dispatches and completes strictly in order.
        assert_eq!(record.dispatch_order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(record.completion_order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(record.peak_in_flight, 1);
        assert_eq!(record.assignment.len(), 6);
    }

    #[test]
    fn traced_run_matches_untraced_makespan() {
        let (cluster, config, overheads) = default_setup(4);
        let w = chain_workload(6, 0.01, 1 << 18);
        let plain = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
        let (traced, trace) = simulate_ompc_traced(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(plain.makespan, traced.makespan);
        assert!(!trace.is_empty());
    }

    #[test]
    fn determinism_across_runs() {
        let (cluster, config, overheads) = default_setup(6);
        let w = chain_workload(20, 0.02, 1 << 19);
        let a = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
        let b = simulate_ompc(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_less_cluster_is_rejected_up_front() {
        // ROADMAP follow-up: this used to panic inside the engine with
        // "compute on unknown node 1".
        let (_, config, overheads) = default_setup(2);
        let w = chain_workload(4, 0.01, 1 << 10);
        let err =
            simulate_ompc(&w, &ClusterConfig::santos_dumont(1), &config, &overheads).unwrap_err();
        assert!(matches!(err, OmpcError::InvalidConfig(_)));
        assert!(err.to_string().contains("no worker nodes"), "unclear message: {err}");
    }

    #[test]
    fn injected_failure_recovers_and_is_recorded() {
        use crate::runtime::fault::FaultPlan;
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(4);
        let w = chain_workload(10, 0.02, 1 << 16);
        let baseline =
            simulate_ompc_recorded(&w, &cluster, &OmpcConfig::default(), &overheads).unwrap();
        // Kill the node running the chain after its third retirement.
        let victim = baseline.1.assignment[2];
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().fail_after_completions(victim, 3),
            ..OmpcConfig::default()
        };
        let (result, record) = simulate_ompc_recorded(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(result.stats.makespan, result.makespan);
        assert_eq!(record.failures.len(), 1);
        assert_eq!(record.failures[0].node, victim);
        assert!(record.failures[0].detected_at >= record.failures[0].silenced_at);
        assert!(!record.reexecuted.is_empty(), "lost work must re-execute");
        assert!(record.replanned.iter().all(|r| r.from == victim && r.to != victim));
        // Every task still retired (the last retirement of each id exists).
        let mut retired: Vec<usize> = record.completion_order.clone();
        retired.sort_unstable();
        retired.dedup();
        assert_eq!(retired, (0..w.len()).collect::<Vec<_>>());
        // Failures cost time.
        let clean = simulate_ompc(&w, &cluster, &OmpcConfig::default(), &overheads).unwrap();
        assert!(result.makespan > clean.makespan, "recovery must not be free");
    }

    #[test]
    fn replan_on_failure_reschedules_over_survivors() {
        use crate::runtime::fault::FaultPlan;
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(5);
        // Independent tasks spread over all workers.
        let w = wide_workload(16, 0.02, 1 << 12);
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().fail_after_completions(1, 1),
            replan_on_failure: true,
            max_inflight_tasks: Some(2),
            ..OmpcConfig::default()
        };
        let (_, record) = simulate_ompc_recorded(&w, &cluster, &config, &overheads).unwrap();
        assert_eq!(record.failures.len(), 1);
        // Nothing may end up on the dead node except tasks retired before
        // the failure.
        for (task, &node) in record.assignment.iter().enumerate() {
            if node == 1 {
                let last = record.completion_order.iter().rposition(|&t| t == task);
                assert!(last.is_some(), "task {task} on the dead node never retired");
            }
        }
        assert!(record.replanned.iter().all(|r| r.to != 1));
    }

    #[test]
    fn failure_of_the_only_worker_is_unrecoverable() {
        use crate::runtime::fault::FaultPlan;
        let overheads = OverheadModel::default();
        let cluster = ClusterConfig::santos_dumont(2);
        let w = chain_workload(6, 0.02, 1 << 10);
        let config = OmpcConfig {
            fault_plan: FaultPlan::none().fail_after_completions(1, 2),
            ..OmpcConfig::default()
        };
        let err = simulate_ompc(&w, &cluster, &config, &overheads).unwrap_err();
        assert_eq!(err, OmpcError::NodeFailure(1));
    }
}
