//! The target-region builder: the user-facing analogue of OpenMP's
//! `target enter data` / `target nowait depend(...)` / `target exit data`
//! constructs (paper Listing 1 and §3).

use crate::buffer::BufferRegistry;
use crate::cluster::{ClusterDevice, HostFn};
use crate::runtime::RunRecord;
use crate::stats::RegionReport;
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, Dependence, KernelId, MapType, OmpcResult, TaskId};
use std::collections::HashMap;
use std::sync::Arc;

/// A single-shot target region under construction.
///
/// Tasks are recorded in program order, dependence edges are derived from
/// the `depend` clauses, and nothing executes until [`TargetRegion::run`] is
/// called — mirroring the OMPC runtime, which delays execution to the
/// implicit barrier so the whole graph can be scheduled at once with HEFT.
pub struct TargetRegion<'d> {
    device: &'d ClusterDevice,
    graph: RegionGraph,
    host_fns: HashMap<usize, HostFn>,
}

impl<'d> TargetRegion<'d> {
    pub(crate) fn new(device: &'d ClusterDevice) -> Self {
        Self { device, graph: RegionGraph::new(), host_fns: HashMap::new() }
    }

    /// Number of tasks recorded so far.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether no tasks have been recorded.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The region's task graph (for inspection and tests).
    pub fn graph(&self) -> &RegionGraph {
        &self.graph
    }

    /// `target enter data map(to: data)`: register `data` as a new buffer
    /// and schedule its distribution to the cluster.
    pub fn map_to(&mut self, data: Vec<u8>) -> BufferId {
        let buffer = self.device.buffers().register(data);
        self.enter_data(buffer, MapType::To);
        buffer
    }

    /// Convenience: [`TargetRegion::map_to`] for a slice of `f64`s.
    pub fn map_to_f64s(&mut self, values: &[f64]) -> BufferId {
        self.map_to(ompc_mpi::typed::f64s_to_bytes(values))
    }

    /// `target enter data map(alloc:)`: register a zero-filled buffer of
    /// `size` bytes that will be allocated on the cluster without copying.
    pub fn map_alloc(&mut self, size: usize) -> BufferId {
        let buffer = self.device.buffers().register_uninit(size);
        self.enter_data(buffer, MapType::Alloc);
        buffer
    }

    /// [`TargetRegion::map_to`] with **keep-resident** semantics
    /// ([`MapType::ToResident`]): the buffer is distributed once and then
    /// stays mapped on its worker across region executions. A later
    /// [`TargetRegion::map_from`] flushes its contents to the host without
    /// dropping the device copies; only [`TargetRegion::release`] (or the
    /// device-level [`crate::cluster::ClusterDevice::exit_data`]) ends the
    /// mapping. Re-entering the buffer in a later region generates **no**
    /// transfer — the residency-aware data manager sees it is already
    /// present.
    pub fn map_to_resident(&mut self, data: Vec<u8>) -> BufferId {
        let buffer = self.device.buffers().register(data);
        self.enter_data(buffer, MapType::ToResident);
        buffer
    }

    /// Convenience: [`TargetRegion::map_to_resident`] for a slice of
    /// `f64`s.
    pub fn map_to_resident_f64s(&mut self, values: &[f64]) -> BufferId {
        self.map_to_resident(ompc_mpi::typed::f64s_to_bytes(values))
    }

    /// Add an explicit `target enter data` task for an existing buffer.
    pub fn enter_data(&mut self, buffer: BufferId, map: MapType) -> TaskId {
        self.graph.add_task(
            TaskKind::EnterData { buffer, map },
            vec![Dependence::output(buffer)],
            format!("enter-data {buffer}"),
        )
    }

    /// `target nowait depend(...)`: offload `kernel` with the given
    /// dependences. The kernel's cost hint is taken from its registration.
    pub fn target(&mut self, kernel: KernelId, dependences: Vec<Dependence>) -> TaskId {
        self.target_labeled(kernel, dependences, format!("{kernel}"))
    }

    /// [`TargetRegion::target`] with an explicit trace label.
    pub fn target_labeled(
        &mut self,
        kernel: KernelId,
        dependences: Vec<Dependence>,
        label: impl Into<String>,
    ) -> TaskId {
        let cost_hint = self.device.kernel_cost(kernel);
        self.graph.add_task(TaskKind::Target { kernel, cost_hint }, dependences, label)
    }

    /// [`TargetRegion::target`] with an explicit cost hint in seconds,
    /// overriding the kernel's registered hint (useful when the cost
    /// depends on the buffer sizes of this particular invocation).
    pub fn target_with_cost(
        &mut self,
        kernel: KernelId,
        cost_hint: f64,
        dependences: Vec<Dependence>,
        label: impl Into<String>,
    ) -> TaskId {
        self.graph.add_task(TaskKind::Target { kernel, cost_hint }, dependences, label)
    }

    /// A classical OpenMP task: runs on the head node with access to the
    /// host buffer registry, ordered by its dependences like any other task.
    pub fn host_task<F>(&mut self, dependences: Vec<Dependence>, f: F) -> TaskId
    where
        F: Fn(&BufferRegistry) + Send + Sync + 'static,
    {
        let id = self.graph.add_task(
            TaskKind::Host { cost_hint: 1e-5 },
            dependences,
            "host-task".to_string(),
        );
        self.host_fns.insert(id.0, Arc::new(f));
        id
    }

    /// Add an explicit `target exit data` task.
    ///
    /// As in the paper's Listing 1 (`depend(out: *A)`), the exit-data task
    /// carries an `inout` dependence so it is ordered after every earlier
    /// reader and writer of the buffer — the device copies must not be
    /// released while other tasks may still consume them.
    pub fn exit_data(&mut self, buffer: BufferId, map: MapType) -> TaskId {
        self.graph.add_task(
            TaskKind::ExitData { buffer, map },
            vec![Dependence::inout(buffer)],
            format!("exit-data {buffer}"),
        )
    }

    /// `target exit data map(from:)`: bring the buffer's latest contents
    /// back to the host and release the device copies — unless the buffer
    /// is **keep-resident** ([`TargetRegion::map_to_resident`] /
    /// [`crate::cluster::ClusterDevice::enter_data`]), in which case this
    /// is a flush: the host copy is brought up to date and the device
    /// copies stay mapped for later regions.
    pub fn map_from(&mut self, buffer: BufferId) -> TaskId {
        self.exit_data(buffer, MapType::From)
    }

    /// `target exit data map(release:)`: drop the device copies without
    /// copying back.
    pub fn release(&mut self, buffer: BufferId) -> TaskId {
        self.exit_data(buffer, MapType::Release)
    }

    /// Execute the region: schedule the whole graph, dispatch the tasks to
    /// the worker nodes, and wait for completion (the implicit barrier at
    /// the end of an OpenMP parallel region).
    pub fn run(self) -> OmpcResult<RegionReport> {
        self.device.execute_region(self.graph, self.host_fns)
    }

    /// [`TargetRegion::run`], additionally returning this execution's own
    /// [`RunRecord`] (assignment, dispatch and completion orders, transfer
    /// plan, telemetry spans). With concurrent clients over one device,
    /// [`ClusterDevice::last_run_record`] only exposes whichever execution
    /// finished last; `run_recorded` hands each client the record of *its*
    /// region without racing the device-level slot.
    pub fn run_recorded(self) -> OmpcResult<(RegionReport, RunRecord)> {
        self.device.execute_region_recorded(self.graph, self.host_fns)
    }

    /// Decompose the builder into its graph and host-task table, for
    /// pipelined execution ([`ClusterDevice::run_pipeline`]) where the
    /// device wants to inspect queued regions before running them.
    pub(crate) fn into_parts(self) -> (RegionGraph, HashMap<usize, HostFn>) {
        (self.graph, self.host_fns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::EdgeKind;

    #[test]
    fn region_builder_creates_expected_graph_shape() {
        let device = ClusterDevice::spawn(1);
        let k = device.register_kernel_fn("k", 1e-6, |_| {});
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[1.0]);
        let b = region.map_alloc(8);
        let t1 = region.target(k, vec![Dependence::input(a), Dependence::output(b)]);
        let t2 = region.target(k, vec![Dependence::inout(b)]);
        region.map_from(b);
        region.release(a);

        let g = region.graph();
        assert_eq!(g.len(), 6);
        assert!(!region.is_empty());
        assert_eq!(region.len(), 6);
        // t1 depends on both enter-data tasks, t2 on t1.
        assert_eq!(g.predecessors(t1).len(), 2);
        assert_eq!(g.predecessors(t2), &[t1]);
        // The flow edge t1 -> t2 exists because t1 writes b and t2 reads it.
        assert!(g.edges().iter().any(|e| e.from == t1 && e.to == t2 && e.kind == EdgeKind::Flow));
    }

    #[test]
    fn exit_data_depends_on_last_writer() {
        let device = ClusterDevice::spawn(1);
        let k = device.register_kernel_fn("k", 1e-6, |_| {});
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[0.0]);
        let w = region.target(k, vec![Dependence::inout(a)]);
        let exit = region.map_from(a);
        let g = region.graph();
        assert_eq!(g.predecessors(exit), &[w]);
    }

    #[test]
    fn target_with_cost_overrides_hint() {
        let device = ClusterDevice::spawn(1);
        let k = device.register_kernel_fn("k", 1e-6, |_| {});
        let mut region = device.target_region();
        let a = region.map_to_f64s(&[0.0]);
        let t = region.target_with_cost(k, 2.5, vec![Dependence::inout(a)], "expensive");
        match region.graph().task(t).kind {
            TaskKind::Target { cost_hint, .. } => assert!((cost_hint - 2.5).abs() < 1e-12),
            _ => panic!("expected a target task"),
        }
    }
}
