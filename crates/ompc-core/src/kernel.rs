//! Kernels: the code a target task runs on a worker node.
//!
//! In the paper, the body of a `#pragma omp target` region is outlined by
//! Clang into an entry point present in the fat binary of every MPI process,
//! so the head node only needs to ship an entry-point identifier. Here the
//! analogue is a [`KernelRegistry`] shared by every rank of the in-process
//! cluster: kernels are registered once on the head node and referenced by
//! [`KernelId`] in execute events.

use crate::types::{BufferId, KernelId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The buffers a kernel invocation operates on, in the order they were
/// declared by the task's `depend` clauses.
#[derive(Debug)]
pub struct KernelArgs<'a> {
    buffers: Vec<(BufferId, &'a mut Vec<u8>)>,
}

impl<'a> KernelArgs<'a> {
    /// Build the argument pack from (id, storage) pairs.
    pub fn new(buffers: Vec<(BufferId, &'a mut Vec<u8>)>) -> Self {
        Self { buffers }
    }

    /// Number of buffers passed to the kernel.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether the kernel received no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Id of the `idx`-th buffer.
    pub fn buffer_id(&self, idx: usize) -> BufferId {
        self.buffers[idx].0
    }

    /// Read-only view of the `idx`-th buffer.
    pub fn bytes(&self, idx: usize) -> &[u8] {
        self.buffers[idx].1
    }

    /// Mutable view of the `idx`-th buffer.
    pub fn bytes_mut(&mut self, idx: usize) -> &mut Vec<u8> {
        self.buffers[idx].1
    }

    /// Interpret the `idx`-th buffer as little-endian `f64`s.
    pub fn as_f64s(&self, idx: usize) -> Vec<f64> {
        ompc_mpi::typed::bytes_to_f64s(self.bytes(idx))
            .expect("buffer is not a whole number of f64")
    }

    /// Overwrite the `idx`-th buffer with little-endian `f64`s.
    pub fn set_f64s(&mut self, idx: usize, values: &[f64]) {
        *self.bytes_mut(idx) = ompc_mpi::typed::f64s_to_bytes(values);
    }

    /// Interpret the `idx`-th buffer as little-endian `u64`s.
    pub fn as_u64s(&self, idx: usize) -> Vec<u64> {
        ompc_mpi::typed::bytes_to_u64s(self.bytes(idx))
            .expect("buffer is not a whole number of u64")
    }

    /// Overwrite the `idx`-th buffer with little-endian `u64`s.
    pub fn set_u64s(&mut self, idx: usize, values: &[u64]) {
        *self.bytes_mut(idx) = ompc_mpi::typed::u64s_to_bytes(values);
    }
}

/// A target-region body.
pub trait Kernel: Send + Sync {
    /// Execute the kernel on the worker node against its local copies of
    /// the task's buffers.
    fn execute(&self, args: &mut KernelArgs<'_>);

    /// Estimated execution cost in seconds, used by the HEFT scheduler.
    /// Defaults to a small constant when unknown.
    fn cost_hint(&self) -> f64 {
        1e-3
    }

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "kernel"
    }
}

/// A kernel backed by a closure.
pub struct FnKernel<F: Fn(&mut KernelArgs<'_>) + Send + Sync> {
    f: F,
    cost: f64,
    name: String,
}

impl<F: Fn(&mut KernelArgs<'_>) + Send + Sync> FnKernel<F> {
    /// Wrap a closure with a cost hint (seconds) and a name.
    pub fn new(name: impl Into<String>, cost: f64, f: F) -> Self {
        Self { f, cost, name: name.into() }
    }
}

impl<F: Fn(&mut KernelArgs<'_>) + Send + Sync> Kernel for FnKernel<F> {
    fn execute(&self, args: &mut KernelArgs<'_>) {
        (self.f)(args)
    }
    fn cost_hint(&self) -> f64 {
        self.cost
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The cluster-wide kernel table (one per [`crate::cluster::ClusterDevice`]),
/// shared by the head node and every worker thread, mirroring the fat binary
/// replicated on every MPI process.
#[derive(Default)]
pub struct KernelRegistry {
    kernels: RwLock<HashMap<usize, Arc<dyn Kernel>>>,
    next: RwLock<usize>,
}

impl KernelRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a kernel and return its id.
    pub fn register(&self, kernel: Arc<dyn Kernel>) -> KernelId {
        let mut next = self.next.write();
        let id = *next;
        *next += 1;
        self.kernels.write().insert(id, kernel);
        KernelId(id)
    }

    /// Register a closure as a kernel.
    pub fn register_fn<F>(&self, name: impl Into<String>, cost: f64, f: F) -> KernelId
    where
        F: Fn(&mut KernelArgs<'_>) + Send + Sync + 'static,
    {
        self.register(Arc::new(FnKernel::new(name, cost, f)))
    }

    /// Look up a kernel by id.
    pub fn get(&self, id: KernelId) -> Option<Arc<dyn Kernel>> {
        self.kernels.read().get(&id.0).cloned()
    }

    /// Forget every registered kernel and restart ids from 0 — issued when
    /// a warm worker pool is adopted by a new device lifetime, so the new
    /// lifetime's registrations get the same ids a cold start would assign.
    pub fn clear(&self) {
        let mut next = self.next.write();
        self.kernels.write().clear();
        *next = 0;
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let reg = KernelRegistry::new();
        assert!(reg.is_empty());
        let id = reg.register_fn("double", 0.5, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 2.0).collect();
            args.set_f64s(0, &v);
        });
        assert_eq!(reg.len(), 1);
        let k = reg.get(id).unwrap();
        assert_eq!(k.name(), "double");
        assert!((k.cost_hint() - 0.5).abs() < 1e-12);
        assert!(reg.get(KernelId(99)).is_none());
        reg.clear();
        assert!(reg.is_empty());
        let id2 = reg.register_fn("fresh", 1e-6, |_| {});
        assert_eq!(id2, KernelId(0), "cleared registries restart ids from 0");
    }

    #[test]
    fn kernel_args_typed_access() {
        let mut a = ompc_mpi::typed::f64s_to_bytes(&[1.0, 2.0]);
        let mut b = ompc_mpi::typed::u64s_to_bytes(&[7]);
        let mut args = KernelArgs::new(vec![(BufferId(0), &mut a), (BufferId(1), &mut b)]);
        assert_eq!(args.len(), 2);
        assert!(!args.is_empty());
        assert_eq!(args.buffer_id(1), BufferId(1));
        assert_eq!(args.as_f64s(0), vec![1.0, 2.0]);
        assert_eq!(args.as_u64s(1), vec![7]);
        args.set_f64s(0, &[3.0]);
        args.set_u64s(1, &[8, 9]);
        assert_eq!(args.as_f64s(0), vec![3.0]);
        assert_eq!(args.as_u64s(1), vec![8, 9]);
    }

    #[test]
    fn fn_kernel_executes_closure() {
        let reg = KernelRegistry::new();
        let id = reg.register_fn("sum", 1e-6, |args| {
            let total: f64 = args.as_f64s(0).iter().sum();
            args.set_f64s(1, &[total]);
        });
        let mut input = ompc_mpi::typed::f64s_to_bytes(&[1.0, 2.0, 3.0]);
        let mut output = ompc_mpi::typed::f64s_to_bytes(&[0.0]);
        let mut args = KernelArgs::new(vec![(BufferId(0), &mut input), (BufferId(1), &mut output)]);
        reg.get(id).unwrap().execute(&mut args);
        assert_eq!(args.as_f64s(1), vec![6.0]);
    }

    #[test]
    fn default_cost_hint_is_small() {
        struct Noop;
        impl Kernel for Noop {
            fn execute(&self, _args: &mut KernelArgs<'_>) {}
        }
        assert!(Noop.cost_hint() > 0.0);
        assert_eq!(Noop.name(), "kernel");
    }
}
