//! Conversions between the runtime's task graphs and the abstract graphs
//! consumed by the schedulers and the simulated runtimes.

use crate::buffer::BufferRegistry;
use crate::task::{EdgeKind, RegionGraph, TaskKind};
use ompc_sched::TaskGraph;

/// An abstract workload: a schedulable task graph plus the number of bytes
/// each task produces as output. This is the common currency between the
/// Task Bench generator, the simulated OMPC runtime, and the baseline
/// runtime models, so all of them execute exactly the same workload.
#[derive(Debug, Clone, Default)]
pub struct WorkloadGraph {
    /// Task costs (seconds) and dependence edges (bytes).
    pub graph: TaskGraph,
    /// Output size in bytes of each task, indexed by task id. Roots consume
    /// an input of this size from the head node under OMPC; sinks have
    /// their output of this size retrieved at exit data.
    pub output_bytes: Vec<u64>,
}

impl WorkloadGraph {
    /// Create a workload from a graph and per-task output sizes.
    pub fn new(graph: TaskGraph, output_bytes: Vec<u64>) -> Self {
        assert_eq!(graph.len(), output_bytes.len(), "output_bytes must have one entry per task");
        Self { graph, output_bytes }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the workload has no tasks.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Total bytes on all dependence edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.graph.edges().iter().map(|e| e.bytes).sum()
    }

    /// Total compute seconds across all tasks.
    pub fn total_compute(&self) -> f64 {
        self.graph.total_cost()
    }
}

/// Convert a runtime [`RegionGraph`] into the scheduler's [`TaskGraph`].
///
/// * Target and host tasks keep their cost hints; data tasks cost nothing.
/// * Flow edges carry the size of the buffer that moves; anti and output
///   edges carry zero bytes (pure ordering).
/// * No task is pinned here: the runtime itself pins data tasks to their
///   consumer's node after scheduling (paper §4.4) and executes host tasks
///   on the head node outside the offload schedule.
pub fn region_to_sched(region: &RegionGraph, buffers: &BufferRegistry) -> TaskGraph {
    let mut graph = TaskGraph::new();
    for task in region.tasks() {
        let cost = match &task.kind {
            TaskKind::Target { cost_hint, .. } | TaskKind::Host { cost_hint } => *cost_hint,
            TaskKind::EnterData { .. } | TaskKind::ExitData { .. } => 0.0,
        };
        graph.add_task_full(cost, None, task.label.clone());
    }
    for edge in region.edges() {
        let bytes = if edge.kind == EdgeKind::Flow {
            buffers.size_of(edge.buffer).unwrap_or(0) as u64
        } else {
            0
        };
        graph.add_edge(edge.from.0, edge.to.0, bytes);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Dependence, KernelId, MapType};

    #[test]
    fn workload_graph_validates_lengths() {
        let mut g = TaskGraph::new();
        g.add_task(1.0);
        g.add_task(2.0);
        g.add_edge(0, 1, 128);
        let w = WorkloadGraph::new(g, vec![64, 64]);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.total_edge_bytes(), 128);
        assert!((w.total_compute() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one entry per task")]
    fn mismatched_output_bytes_panics() {
        let mut g = TaskGraph::new();
        g.add_task(1.0);
        let _ = WorkloadGraph::new(g, vec![]);
    }

    #[test]
    fn region_conversion_preserves_structure_and_sizes() {
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 1000]);
        let mut region = RegionGraph::new();
        let enter = region.add_task(
            TaskKind::EnterData { buffer: a, map: MapType::To },
            vec![Dependence::output(a)],
            "enter",
        );
        let foo = region.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 0.25 },
            vec![Dependence::inout(a)],
            "foo",
        );
        let exit = region.add_task(
            TaskKind::ExitData { buffer: a, map: MapType::From },
            vec![Dependence::input(a)],
            "exit",
        );
        let sched = region_to_sched(&region, &buffers);
        assert_eq!(sched.len(), 3);
        assert!((sched.tasks()[enter.0].cost - 0.0).abs() < 1e-12);
        assert!((sched.tasks()[foo.0].cost - 0.25).abs() < 1e-12);
        assert_eq!(sched.edge_bytes(enter.0, foo.0), 1000);
        assert_eq!(sched.edge_bytes(foo.0, exit.0), 1000);
        assert!(sched.is_acyclic());
        let _ = exit;
    }

    #[test]
    fn anti_edges_carry_no_bytes() {
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 512]);
        let mut region = RegionGraph::new();
        let w0 = region.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 0.1 },
            vec![Dependence::output(a)],
            "w0",
        );
        let r = region.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 0.1 },
            vec![Dependence::input(a)],
            "r",
        );
        let w1 = region.add_task(
            TaskKind::Target { kernel: KernelId(2), cost_hint: 0.1 },
            vec![Dependence::output(a)],
            "w1",
        );
        let sched = region_to_sched(&region, &buffers);
        assert_eq!(sched.edge_bytes(w0.0, r.0), 512);
        // The anti edge r -> w1 moves nothing.
        assert_eq!(sched.edge_bytes(r.0, w1.0), 0);
    }
}
