//! Identifiers and small enums shared across the runtime.

use std::fmt;

/// Identifier of a cluster node. Node 0 is always the head node; worker
/// nodes are 1..=N.
pub type NodeId = usize;

/// Identifier of a mapped buffer (host pointer analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf:{}", self.0)
    }
}

/// Identifier of a task in a target region's task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task:{}", self.0)
    }
}

/// Identifier of a kernel registered with the cluster device (the analogue
/// of an outlined target-region entry point in the fat binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId(pub usize);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel:{}", self.0)
    }
}

/// The direction of a `depend` clause on a target task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceType {
    /// The task only reads the buffer (`depend(in: …)`).
    In,
    /// The task only writes the buffer (`depend(out: …)`).
    Out,
    /// The task reads and writes the buffer (`depend(inout: …)`).
    InOut,
}

impl DependenceType {
    /// Whether the dependence implies the task reads the buffer.
    pub fn reads(self) -> bool {
        matches!(self, DependenceType::In | DependenceType::InOut)
    }

    /// Whether the dependence implies the task writes the buffer.
    pub fn writes(self) -> bool {
        matches!(self, DependenceType::Out | DependenceType::InOut)
    }
}

/// The direction of a `map` clause on enter/exit data constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapType {
    /// Copy host data to the device group (`map(to: …)`).
    To,
    /// Copy device data back to the host (`map(from: …)`).
    From,
    /// Copy in both directions (`map(tofrom: …)`).
    ToFrom,
    /// Allocate on the device group without copying (`map(alloc: …)`).
    Alloc,
    /// Drop the device copy without copying back (`map(release: …)`).
    Release,
    /// Like [`MapType::To`], but the buffer is marked **keep-resident**:
    /// a later exit-data `map(from:)` flushes its contents to the host
    /// while keeping the device copies mapped, so iterative multi-region
    /// applications re-use them without re-distribution. Only
    /// [`MapType::Release`] (or the device-level
    /// `ClusterDevice::exit_data`) ends the mapping.
    ToResident,
}

impl MapType {
    /// Whether the map moves data host → cluster.
    pub fn copies_to_device(self) -> bool {
        matches!(self, MapType::To | MapType::ToFrom | MapType::ToResident)
    }

    /// Whether the map moves data cluster → host.
    pub fn copies_from_device(self) -> bool {
        matches!(self, MapType::From | MapType::ToFrom)
    }

    /// Whether the map marks the buffer keep-resident across regions.
    pub fn keeps_resident(self) -> bool {
        matches!(self, MapType::ToResident)
    }
}

/// A single `depend` clause entry: a buffer and the access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependence {
    /// The buffer the task depends on.
    pub buffer: BufferId,
    /// Access direction.
    pub dep_type: DependenceType,
}

impl Dependence {
    /// An input dependence.
    pub fn input(buffer: BufferId) -> Self {
        Self { buffer, dep_type: DependenceType::In }
    }
    /// An output dependence.
    pub fn output(buffer: BufferId) -> Self {
        Self { buffer, dep_type: DependenceType::Out }
    }
    /// An inout dependence.
    pub fn inout(buffer: BufferId) -> Self {
        Self { buffer, dep_type: DependenceType::InOut }
    }
}

/// Errors surfaced by the OMPC runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmpcError {
    /// A task referenced a buffer that was never mapped.
    UnknownBuffer(BufferId),
    /// A kernel id was not registered with the device.
    UnknownKernel(KernelId),
    /// The region was already executed (regions are single-shot).
    RegionAlreadyRun,
    /// The underlying communication substrate reported an error.
    Communication(String),
    /// A worker node failed (detected by the heartbeat monitor) and no
    /// surviving worker was available to recover its tasks.
    NodeFailure(NodeId),
    /// The runtime was configured inconsistently (e.g. a cluster without
    /// worker nodes, or a fault plan naming a node outside the cluster).
    InvalidConfig(String),
    /// The cluster was shut down while work was outstanding.
    ShutDown,
    /// Miscellaneous internal invariant violation.
    Internal(String),
    /// An event handler on a worker node reported a failure through the
    /// event-reply protocol: carries the originating node, the event tag,
    /// and the underlying error — the head node never blocks on a failed
    /// event, it receives this instead of a completion.
    RemoteEvent {
        /// Node whose handler failed.
        node: NodeId,
        /// Id of the event that failed: the wire tag (unique per device
        /// lifetime) in the threaded backend, the task index for errors
        /// modelled by the simulated backend — backend-specific, so
        /// cross-backend comparisons should use
        /// [`OmpcError::origin_node`] / [`OmpcError::root_cause`] rather
        /// than error equality.
        event: u64,
        /// What went wrong on the worker.
        error: Box<OmpcError>,
    },
}

impl fmt::Display for OmpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpcError::UnknownBuffer(b) => write!(f, "unknown buffer {b}"),
            OmpcError::UnknownKernel(k) => write!(f, "unknown kernel {k}"),
            OmpcError::RegionAlreadyRun => write!(f, "target region already executed"),
            OmpcError::Communication(m) => write!(f, "communication error: {m}"),
            OmpcError::NodeFailure(n) => write!(f, "worker node {n} failed"),
            OmpcError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            OmpcError::ShutDown => write!(f, "cluster already shut down"),
            OmpcError::Internal(m) => write!(f, "internal runtime error: {m}"),
            OmpcError::RemoteEvent { node, event, error } => {
                write!(f, "event {event} failed on node {node}: {error}")
            }
        }
    }
}

impl OmpcError {
    /// The worker node this error originates from, when it names one: the
    /// failed node of a [`OmpcError::NodeFailure`], or the replying node of
    /// a [`OmpcError::RemoteEvent`]. The execution core uses this to tell a
    /// *stale* failure (the blamed node has been killed by the failure
    /// injector — requeue the task) from a genuine one (propagate).
    pub fn origin_node(&self) -> Option<NodeId> {
        match self {
            OmpcError::NodeFailure(n) => Some(*n),
            OmpcError::RemoteEvent { node, .. } => Some(*node),
            _ => None,
        }
    }

    /// Strip [`OmpcError::RemoteEvent`] wrappers and return the underlying
    /// error (self when not remote).
    pub fn root_cause(&self) -> &OmpcError {
        match self {
            OmpcError::RemoteEvent { error, .. } => error.root_cause(),
            other => other,
        }
    }
}

impl std::error::Error for OmpcError {}

impl From<ompc_mpi::MpiError> for OmpcError {
    fn from(e: ompc_mpi::MpiError) -> Self {
        OmpcError::Communication(e.to_string())
    }
}

/// Convenient result alias for runtime operations.
pub type OmpcResult<T> = Result<T, OmpcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_direction_flags() {
        assert!(DependenceType::In.reads());
        assert!(!DependenceType::In.writes());
        assert!(DependenceType::Out.writes());
        assert!(!DependenceType::Out.reads());
        assert!(DependenceType::InOut.reads() && DependenceType::InOut.writes());
    }

    #[test]
    fn map_direction_flags() {
        assert!(MapType::To.copies_to_device());
        assert!(!MapType::To.copies_from_device());
        assert!(MapType::From.copies_from_device());
        assert!(MapType::ToFrom.copies_to_device() && MapType::ToFrom.copies_from_device());
        assert!(!MapType::Alloc.copies_to_device());
        assert!(!MapType::Release.copies_from_device());
        assert!(MapType::ToResident.copies_to_device());
        assert!(!MapType::ToResident.copies_from_device());
        assert!(MapType::ToResident.keeps_resident() && !MapType::To.keeps_resident());
    }

    #[test]
    fn dependence_constructors() {
        let b = BufferId(3);
        assert_eq!(Dependence::input(b).dep_type, DependenceType::In);
        assert_eq!(Dependence::output(b).dep_type, DependenceType::Out);
        assert_eq!(Dependence::inout(b).dep_type, DependenceType::InOut);
    }

    #[test]
    fn error_display() {
        assert!(OmpcError::UnknownBuffer(BufferId(1)).to_string().contains("buf:1"));
        assert!(OmpcError::NodeFailure(2).to_string().contains("node 2"));
        let e: OmpcError = ompc_mpi::MpiError::RequestConsumed.into();
        assert!(matches!(e, OmpcError::Communication(_)));
    }

    #[test]
    fn ids_display() {
        assert_eq!(BufferId(5).to_string(), "buf:5");
        assert_eq!(TaskId(2).to_string(), "task:2");
        assert_eq!(KernelId(9).to_string(), "kernel:9");
    }
}
