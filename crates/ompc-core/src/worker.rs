//! The worker-node runtime: device memory, the gate thread, and the event
//! handler pool (the destination side of the event system, paper §4.2).
//!
//! Every event ends in exactly one typed reply
//! ([`crate::protocol::EventReply`]) on the event's exclusive channel:
//! `Ok(payload)` on success or `Err` carrying the originating node and
//! event tag when the handler failed — the head node never blocks on an
//! event whose handler errored. A [`EventRequest::Kill`] (failure
//! injection) kills the event loop for real: the node stops executing
//! events and refuses every later one with an error reply until the final
//! [`EventRequest::Shutdown`].

use crate::kernel::{KernelArgs, KernelRegistry};
use crate::protocol::{
    decode_relay_frame, encode_relay_frame, relay_frame_count, CompletionNotice, EventNotification,
    EventReply, EventRequest, RelayChild, TaskStamps, COMPLETION_TAG, CONTROL_TAG, PREFETCH_TAG,
};
use crate::runtime::telemetry::monotonic_us;
use crate::types::{BufferId, NodeId, OmpcError, OmpcResult};
use ompc_mpi::{Communicator, Tag};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The head node's rank in the world communicator.
const HEAD_RANK: usize = 0;

/// Upper bound on any single wait for the next frame of a collective
/// payload stream. The head's rescue machinery re-sources an orphaned
/// recipient long before this fires (it reacts to the dead relay's typed
/// refusal); the bound is the last line of defence turning a frame that can
/// never arrive into a typed error instead of a hang.
const RELAY_FRAME_TIMEOUT_MS: u64 = 60_000;

/// A worker node's local buffer storage (its "device memory").
#[derive(Debug, Default)]
pub struct DeviceMemory {
    buffers: Mutex<HashMap<u64, Vec<u8>>>,
    /// Signalled on every store, so a composite task's `AwaitLocal` step
    /// can wait for a buffer a co-scheduled task is transferring in.
    arrival: parking_lot::Condvar,
}

impl DeviceMemory {
    /// Create empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store (or overwrite) the contents of a buffer.
    pub fn store(&self, id: BufferId, data: Vec<u8>) {
        self.buffers.lock().insert(id.0, data);
        self.arrival.notify_all();
    }

    /// Block until the buffer is locally present, up to `timeout`. Returns
    /// whether the buffer arrived — `false` means the co-scheduled task
    /// that owned the transfer never stored it (it failed or its node
    /// died), and the caller must error out instead of computing on
    /// missing data.
    pub fn wait_for(&self, id: BufferId, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut buffers = self.buffers.lock();
        loop {
            if buffers.contains_key(&id.0) {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.arrival.wait_for(&mut buffers, deadline - now);
        }
    }

    /// Clone the contents of a buffer.
    pub fn get(&self, id: BufferId) -> Option<Vec<u8>> {
        self.buffers.lock().get(&id.0).cloned()
    }

    /// Remove a buffer, returning whether it was present.
    pub fn remove(&self, id: BufferId) -> bool {
        self.buffers.lock().remove(&id.0).is_some()
    }

    /// Whether the buffer is present.
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.lock().contains_key(&id.0)
    }

    /// Number of resident buffers.
    pub fn len(&self) -> usize {
        self.buffers.lock().len()
    }

    /// Whether no buffers are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident buffer (warm-worker recycling between device
    /// lifetimes).
    pub fn clear(&self) {
        self.buffers.lock().clear();
        self.arrival.notify_all();
    }
}

/// Wrap a handler error as a [`OmpcError::RemoteEvent`] naming this node
/// and event, unless it already carries an origin (a forwarded remote
/// error keeps its original attribution).
fn as_remote(node: NodeId, tag: Tag, error: OmpcError) -> OmpcError {
    match error {
        already @ OmpcError::RemoteEvent { .. } => already,
        error => OmpcError::RemoteEvent { node, event: tag.0, error: Box::new(error) },
    }
}

/// Compute the outcome (reply payload or error) of one head-replying event.
///
/// `recv_us` is the handler-entry timestamp when the head asked for a timed
/// reply (`notification.timed`), `None` otherwise — no clock is read for
/// untimed events. Execute/Task events return the captured [`TaskStamps`]
/// alongside their payload so the caller can reply `OkTimed`.
fn event_outcome(
    channel: &Communicator,
    memory: &DeviceMemory,
    kernels: &KernelRegistry,
    request: EventRequest,
    tag: Tag,
    recv_us: Option<u64>,
) -> OmpcResult<(Vec<u8>, Option<TaskStamps>)> {
    match request {
        EventRequest::Alloc { buffer, size } => {
            memory.store(buffer, vec![0u8; size as usize]);
            Ok((Vec::new(), None))
        }
        EventRequest::Delete { buffer } => {
            memory.remove(buffer);
            Ok((Vec::new(), None))
        }
        EventRequest::Submit { buffer } => {
            let msg = channel.recv(Some(HEAD_RANK), Some(tag))?;
            memory.store(buffer, msg.data);
            Ok((Vec::new(), None))
        }
        EventRequest::Retrieve { buffer } => {
            memory.get(buffer).map(|d| (d, None)).ok_or(OmpcError::UnknownBuffer(buffer))
        }
        EventRequest::ExchangeRecv { buffer, from } => {
            // The sending half transmits a reply envelope: the data on
            // success, its error otherwise — which we forward to the head
            // (with the sender's attribution) instead of acknowledging.
            let msg = channel.recv(Some(from), Some(tag))?;
            let data = EventReply::decode(&msg.data)?.into_result()?;
            let bytes = (data.len() as u64).to_le_bytes().to_vec();
            memory.store(buffer, data);
            Ok((bytes, None))
        }
        EventRequest::Execute { kernel, buffers } => {
            let exec_start = recv_us.map(|_| monotonic_us());
            execute_kernel(memory, kernels, kernel, &buffers)?;
            let stamps = recv_us.map(|recv_us| {
                let start = exec_start.unwrap_or(recv_us);
                TaskStamps {
                    recv_us,
                    deps_us: start,
                    exec_start_us: start,
                    exec_end_us: monotonic_us(),
                }
            });
            Ok((Vec::new(), stamps))
        }
        EventRequest::Task(spec) => {
            let stamps = run_task_steps(channel, memory, kernels, spec, tag, recv_us)?;
            Ok((Vec::new(), stamps))
        }
        EventRequest::Reset => {
            memory.clear();
            Ok((Vec::new(), None))
        }
        EventRequest::ExchangeSend { .. }
        | EventRequest::TaskTrain(_)
        | EventRequest::SubmitTrain { .. }
        | EventRequest::RelayRecv { .. }
        | EventRequest::RelayFeed { .. }
        | EventRequest::Shutdown
        | EventRequest::Kill => {
            unreachable!("not a single-reply head event")
        }
    }
}

/// Stream `data` to every listed child as `[frame index u64][payload]`
/// frames on each child's own relay channel. Frames go out breadth-first —
/// frame `i` reaches every child before frame `i + 1` is serialized — so
/// the whole tree's pipelines fill together. Used by the feeding half of a
/// worker-sourced broadcast ([`EventRequest::RelayFeed`]) and by the head
/// node when it is itself the tree source.
pub(crate) fn send_relay_frames(
    comm: &Communicator,
    data: &[u8],
    chunk_bytes: u64,
    children: &[RelayChild],
) -> OmpcResult<()> {
    let frames = relay_frame_count(data.len() as u64, chunk_bytes);
    for index in 0..frames {
        let payload = if chunk_bytes == 0 {
            data
        } else {
            let start = (index * chunk_bytes) as usize;
            let end = (start + chunk_bytes as usize).min(data.len());
            &data[start..end]
        };
        let frame = encode_relay_frame(index, payload);
        for child in children {
            comm.on(child.comm)?.send(child.node, child.tag, frame.clone())?;
        }
    }
    Ok(())
}

/// Receive one buffer as collective payload frames and relay each frame
/// onward: frames are accepted **from any source** (planned parent or a
/// rescue feeder), written once, and forwarded once to every child the
/// moment they first arrive — so this node fans frame `i` onward while
/// frame `i + 1` is still inbound. Duplicate frames (normal during
/// re-sourcing, when a rescue feeder replays the whole stream) are ignored.
#[allow(clippy::too_many_arguments)]
fn relay_recv_frames(
    comm: &Communicator,
    channel: &Communicator,
    memory: &DeviceMemory,
    buffer: BufferId,
    total_bytes: u64,
    chunk_bytes: u64,
    children: &[RelayChild],
    tag: Tag,
) -> OmpcResult<()> {
    let frames = relay_frame_count(total_bytes, chunk_bytes) as usize;
    let mut data = vec![0u8; total_bytes as usize];
    let mut seen = vec![false; frames];
    let mut remaining = frames;
    while remaining > 0 {
        let msg = channel
            .recv_timeout(None, Some(tag), std::time::Duration::from_millis(RELAY_FRAME_TIMEOUT_MS))
            .map_err(|e| {
                OmpcError::Communication(format!("waiting for a collective frame of {buffer}: {e}"))
            })?;
        let (index, payload) = decode_relay_frame(&msg.data)?;
        let index = index as usize;
        if index >= frames {
            return Err(OmpcError::Internal(format!(
                "collective frame index {index} out of range for {frames} frames of {buffer}"
            )));
        }
        if seen[index] {
            continue;
        }
        let offset = if chunk_bytes == 0 { 0 } else { index * chunk_bytes as usize };
        let expected = if chunk_bytes == 0 {
            total_bytes as usize
        } else {
            (total_bytes as usize - offset).min(chunk_bytes as usize)
        };
        if payload.len() != expected {
            return Err(OmpcError::Internal(format!(
                "collective frame {index} of {buffer} carried {} bytes, expected {expected}",
                payload.len()
            )));
        }
        data[offset..offset + payload.len()].copy_from_slice(&payload);
        seen[index] = true;
        remaining -= 1;
        for child in children {
            comm.on(child.comm)?.send(child.node, child.tag, msg.data.clone())?;
        }
    }
    memory.store(buffer, data);
    Ok(())
}

/// Post a compact completion notice for a finished (or refused) composite
/// task to the head's any-source completion channel. Sent strictly *after*
/// the task's typed reply: sends are eager, so by the time the head drains
/// the notice the reply is already in its mailbox.
fn post_completion(comm: &Communicator, tag: Tag, ok: bool) {
    let notice = CompletionNotice { tag, ok };
    let _ = comm.send(HEAD_RANK, COMPLETION_TAG, notice.encode());
}

/// Post the single prefetch notice of a [`EventRequest::SubmitTrain`] on
/// the head's any-source prefetch channel. Sent in both the handler and the
/// zombie-refusal paths, so the head can always drain exactly one notice
/// per train after its reply arrives.
fn post_prefetch_notice(comm: &Communicator, tag: Tag, ok: bool) {
    let notice = CompletionNotice { tag, ok };
    let _ = comm.send(HEAD_RANK, PREFETCH_TAG, notice.encode());
}

/// Run `kernel` against the node's device copies of `buffers`.
fn execute_kernel(
    memory: &DeviceMemory,
    kernels: &KernelRegistry,
    kernel: crate::types::KernelId,
    buffers: &[BufferId],
) -> OmpcResult<()> {
    let k = kernels.get(kernel).ok_or(OmpcError::UnknownKernel(kernel))?;
    // Work on private copies so concurrent read-only forwards of the
    // same buffers keep seeing a consistent resident version; the
    // dependence graph already serializes writers.
    let mut copies: Vec<(BufferId, Vec<u8>)> =
        buffers.iter().map(|&b| (b, memory.get(b).unwrap_or_default())).collect();
    {
        let mut args = KernelArgs::new(copies.iter_mut().map(|(id, data)| (*id, data)).collect());
        k.execute(&mut args);
    }
    for (id, data) in copies {
        memory.store(id, data);
    }
    Ok(())
}

/// Execute the steps of a composite [`EventRequest::Task`] in order. The
/// first failing step aborts the task; the caller replies with the error.
///
/// With `recv_us` set (the head asked for a timed reply), the worker stamps
/// the moment the data steps finished (`deps_us` — everything before it is
/// dependency/transfer wait) and the kernel-execution window; without it no
/// clock is ever read.
fn run_task_steps(
    channel: &Communicator,
    memory: &DeviceMemory,
    kernels: &KernelRegistry,
    spec: crate::protocol::TaskSpec,
    tag: Tag,
    recv_us: Option<u64>,
) -> OmpcResult<Option<TaskStamps>> {
    use crate::protocol::TaskStep;
    let mut stamps = recv_us.map(|recv_us| TaskStamps {
        recv_us,
        deps_us: recv_us,
        exec_start_us: recv_us,
        exec_end_us: recv_us,
    });
    for step in spec.steps {
        match step {
            TaskStep::RecvFromHead { buffer } => {
                let msg = channel.recv(Some(HEAD_RANK), Some(tag))?;
                memory.store(buffer, msg.data);
            }
            TaskStep::RecvFromWorker { buffer, from } => {
                // The sender transmits a reply envelope: the data on
                // success, its error (kept with its original attribution)
                // otherwise.
                let msg = channel.recv(Some(from), Some(tag))?;
                let data = EventReply::decode(&msg.data)?.into_result()?;
                memory.store(buffer, data);
            }
            TaskStep::AwaitLocal { buffer, timeout_ms } => {
                if !memory.wait_for(buffer, std::time::Duration::from_millis(timeout_ms)) {
                    return Err(OmpcError::Internal(format!(
                        "task step timed out after {timeout_ms} ms waiting for {buffer} to \
                         arrive from a co-scheduled transfer"
                    )));
                }
            }
            TaskStep::Alloc { buffer, size } => {
                if !memory.contains(buffer) {
                    memory.store(buffer, vec![0u8; size as usize]);
                }
            }
            TaskStep::Delete { buffer } => {
                // Deferred head-side maintenance riding this task; absent
                // buffers are fine (the copy may never have landed).
                memory.remove(buffer);
            }
            TaskStep::Execute { kernel, buffers } => {
                if let Some(s) = stamps.as_mut() {
                    let now = monotonic_us();
                    s.deps_us = now;
                    s.exec_start_us = now;
                }
                execute_kernel(memory, kernels, kernel, &buffers)?;
                if let Some(s) = stamps.as_mut() {
                    s.exec_end_us = monotonic_us();
                }
            }
        }
    }
    Ok(stamps)
}

/// Handle one event on the worker side, always producing exactly one typed
/// reply (to the head node, or to the exchange receiver for the sending
/// half). Returns the handler's own outcome so tests and the gate loop can
/// observe failures; the same error has already been sent as the reply.
/// Exposed for unit testing; normal use is through [`worker_main`].
pub fn handle_event(
    comm: &Communicator,
    memory: &DeviceMemory,
    kernels: &KernelRegistry,
    notification: EventNotification,
) -> OmpcResult<()> {
    let channel = comm.on(notification.comm)?;
    let tag = notification.tag;
    let node = comm.rank();
    // Handler-entry timestamp, read only when the head asked for a timed
    // reply — an untimed event costs no clock read on the worker.
    let recv_us = notification.timed.then(monotonic_us);
    match notification.request {
        EventRequest::Shutdown | EventRequest::Kill => Ok(()), // gate-loop concerns
        EventRequest::ExchangeSend { buffer, to } => {
            // The sending half's "reply" is the envelope it forwards to the
            // receiver: the data on success, the error otherwise. The
            // receiver propagates a failure to the head, so the head never
            // hangs on a half-completed exchange.
            let outcome = memory.get(buffer).ok_or(OmpcError::UnknownBuffer(buffer));
            let reply = match &outcome {
                Ok(data) => EventReply::Ok(data.clone()),
                Err(e) => EventReply::Err(as_remote(node, tag, e.clone())),
            };
            channel.send(to, tag, reply.encode())?;
            outcome.map(|_| ())
        }
        EventRequest::SubmitTrain { buffers } => {
            // A prefetch train: the payloads stream in order on the train's
            // own channel (non-overtaking per sender/channel/tag), stored
            // as they arrive, answered by one typed reply for the whole
            // train plus exactly one prefetch notice.
            let mut outcome = Ok(());
            for buffer in buffers {
                match channel.recv(Some(HEAD_RANK), Some(tag)) {
                    Ok(msg) => memory.store(buffer, msg.data),
                    Err(e) => {
                        outcome = Err(OmpcError::from(e));
                        break;
                    }
                }
            }
            let reply = match &outcome {
                Ok(()) => EventReply::Ok(Vec::new()),
                Err(e) => EventReply::Err(as_remote(node, tag, e.clone())),
            };
            let ok = outcome.is_ok();
            channel.send(HEAD_RANK, tag, reply.encode())?;
            post_prefetch_notice(comm, tag, ok);
            outcome
        }
        EventRequest::RelayRecv { buffer, total_bytes, chunk_bytes, children } => {
            let outcome = relay_recv_frames(
                comm,
                &channel,
                memory,
                buffer,
                total_bytes,
                chunk_bytes,
                &children,
                tag,
            );
            let reply = match &outcome {
                // The ack payload carries the delivered byte count, like an
                // exchange acknowledgement.
                Ok(()) => EventReply::Ok(total_bytes.to_le_bytes().to_vec()),
                Err(e) => EventReply::Err(as_remote(node, tag, e.clone())),
            };
            channel.send(HEAD_RANK, tag, reply.encode())?;
            outcome
        }
        EventRequest::RelayFeed { buffer, chunk_bytes, children } => {
            let outcome = memory
                .get(buffer)
                .ok_or(OmpcError::UnknownBuffer(buffer))
                .and_then(|data| send_relay_frames(comm, &data, chunk_bytes, &children));
            let reply = match &outcome {
                Ok(()) => EventReply::Ok(Vec::new()),
                Err(e) => EventReply::Err(as_remote(node, tag, e.clone())),
            };
            channel.send(HEAD_RANK, tag, reply.encode())?;
            outcome
        }
        EventRequest::TaskTrain(cars) => {
            // Run the cars strictly in order, replying per car on each
            // car's own exclusive channel — a failed car replies its typed
            // error and the train keeps rolling (tasks are independent;
            // the head's per-task blame machinery decides what a failure
            // means). The first car error is this handler's own outcome.
            let mut result = Ok(());
            for car in cars {
                let channel = comm.on(car.comm)?;
                // Each car stamps its own pickup time: cars run strictly in
                // order, so car N's recv marks when the handler reached it.
                let car_recv_us = notification.timed.then(monotonic_us);
                let outcome =
                    run_task_steps(&channel, memory, kernels, car.spec, car.tag, car_recv_us);
                let (reply, ok) = match outcome {
                    Ok(Some(stamps)) => (EventReply::OkTimed(stamps, Vec::new()), true),
                    Ok(None) => (EventReply::Ok(Vec::new()), true),
                    Err(e) => {
                        let remote = as_remote(node, car.tag, e.clone());
                        if result.is_ok() {
                            result = Err(e);
                        }
                        (EventReply::Err(remote), false)
                    }
                };
                channel.send(HEAD_RANK, car.tag, reply.encode())?;
                post_completion(comm, car.tag, ok);
            }
            result
        }
        request => {
            let is_task = matches!(request, EventRequest::Task(_));
            let outcome = event_outcome(&channel, memory, kernels, request, tag, recv_us);
            let (reply, result) = match outcome {
                Ok((payload, Some(stamps))) => (EventReply::OkTimed(stamps, payload), Ok(())),
                Ok((payload, None)) => (EventReply::Ok(payload), Ok(())),
                Err(e) => (EventReply::Err(as_remote(node, tag, e.clone())), Err(e)),
            };
            let ok = result.is_ok();
            channel.send(HEAD_RANK, tag, reply.encode())?;
            if is_task {
                post_completion(comm, tag, ok);
            }
            result
        }
    }
}

/// Refuse an event on a killed node: reply with the node's failure instead
/// of executing anything, so no peer ever blocks on a dead node. Every car
/// of a task train is refused individually — the zombie gate answers on
/// each car's own channel (and completion notice), exactly as it would for
/// unbatched tasks.
fn refuse_event(comm: &Communicator, notification: &EventNotification) -> OmpcResult<()> {
    let node = comm.rank();
    if let EventRequest::TaskTrain(cars) = &notification.request {
        for car in cars {
            let channel = comm.on(car.comm)?;
            let error = as_remote(node, car.tag, OmpcError::NodeFailure(node));
            channel.send(HEAD_RANK, car.tag, EventReply::Err(error).encode())?;
            post_completion(comm, car.tag, false);
        }
        return Ok(());
    }
    let channel = comm.on(notification.comm)?;
    let error = as_remote(node, notification.tag, OmpcError::NodeFailure(node));
    let dest = match notification.request {
        // The exchange receiver is the peer waiting on the sending half.
        EventRequest::ExchangeSend { to, .. } => to,
        _ => HEAD_RANK,
    };
    channel.send(dest, notification.tag, EventReply::Err(error).encode())?;
    if matches!(notification.request, EventRequest::Task(_)) {
        post_completion(comm, notification.tag, false);
    }
    if matches!(notification.request, EventRequest::SubmitTrain { .. }) {
        // The head drains one prefetch notice per train even on refusal.
        post_prefetch_notice(comm, notification.tag, false);
    }
    Ok(())
}

/// The worker-node main loop: a gate thread receiving new-event
/// notifications and a pool of event-handler threads executing them.
///
/// Returns when a shutdown event is received (normal termination) or when
/// the communication substrate reports that the peers are gone. A kill
/// event ([`EventRequest::Kill`], failure injection) ends the node's
/// useful life early: events already accepted still complete (and reply),
/// but every event notified afterwards is refused with an error reply
/// instead of being executed — peers observe the failure immediately
/// rather than hanging, and no further effects land on the dead node.
pub fn worker_main(comm: Communicator, kernels: Arc<KernelRegistry>, handler_threads: usize) {
    let memory = Arc::new(DeviceMemory::new());
    let (tx, rx) = crossbeam::channel::unbounded::<EventNotification>();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..handler_threads.max(1) {
            let rx = rx.clone();
            let comm = comm.clone();
            let memory = Arc::clone(&memory);
            let kernels = Arc::clone(&kernels);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ompc-handler-{}-{}", comm.rank(), i))
                    .spawn_scoped(scope, move || {
                        while let Ok(notification) = rx.recv() {
                            // Errors on individual events must not kill the
                            // handler pool; the head node receives them as
                            // error replies on the event channel.
                            let _ = handle_event(&comm, &memory, &kernels, notification);
                        }
                    })
                    .expect("failed to spawn event handler thread"),
            );
        }
        drop(rx);

        // Gate loop: receive notifications and enqueue their destination
        // part into the local event queue. Events that can never block
        // (alloc, delete, retrieve, the sending half of an exchange) are
        // executed inline by the gate thread — the analogue of the paper's
        // handlers re-enqueueing events that still have pending I/O — so a
        // small handler pool cannot deadlock on two opposing exchanges.
        // The loop ends when the world shuts down or every peer terminated
        // (recv fails), or when a shutdown event arrives.
        let mut dead = false;
        while let Ok(msg) = comm.recv(None, Some(CONTROL_TAG)) {
            let Ok(notification) = EventNotification::decode(&msg.data) else {
                continue;
            };
            match notification.request {
                EventRequest::Shutdown => break,
                EventRequest::Kill => {
                    dead = true;
                    continue;
                }
                _ => {}
            }
            if dead {
                let _ = refuse_event(&comm, &notification);
                continue;
            }
            // A prefetch train is inline too: its payloads are sent eagerly
            // right after the envelope, so the receives are bounded — and a
            // pooled train could queue behind a composite task whose
            // `AwaitLocal` step is waiting for this very train, deadlocking
            // a single-handler pool until the await times out.
            // RelayFeed is inline for the same reason as ExchangeSend: it
            // only sends (the local copy is resident by construction), so
            // it can never block the gate. RelayRecv stays pooled — it
            // waits on inbound frames, exactly like the receiving half of
            // an exchange.
            let inline = matches!(
                notification.request,
                EventRequest::Alloc { .. }
                    | EventRequest::Delete { .. }
                    | EventRequest::Retrieve { .. }
                    | EventRequest::ExchangeSend { .. }
                    | EventRequest::SubmitTrain { .. }
                    | EventRequest::RelayFeed { .. }
                    | EventRequest::Reset
            );
            if inline {
                let _ = handle_event(&comm, &memory, &kernels, notification);
            } else if tx.send(notification).is_err() {
                break;
            }
        }
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::KernelId;
    use ompc_mpi::{CommId, Tag, World};

    #[test]
    fn device_memory_basics() {
        let mem = DeviceMemory::new();
        assert!(mem.is_empty());
        mem.store(BufferId(1), vec![1, 2, 3]);
        assert!(mem.contains(BufferId(1)));
        assert_eq!(mem.get(BufferId(1)), Some(vec![1, 2, 3]));
        assert_eq!(mem.len(), 1);
        assert!(mem.remove(BufferId(1)));
        assert!(!mem.remove(BufferId(1)));
        assert!(mem.get(BufferId(9)).is_none());
    }

    #[test]
    fn handle_alloc_submit_execute_retrieve_cycle() {
        // Drive a single worker's event handler directly from the test
        // acting as the head node.
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let kid = kernels.register_fn("scale", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x * 3.0).collect();
            args.set_f64s(0, &v);
        });

        // Submit data.
        let buffer = BufferId(0);
        let tag = Tag(10);
        let comm = CommId(1);
        head.on(comm).unwrap().send(1, tag, ompc_mpi::typed::f64s_to_bytes(&[1.0, 2.0])).unwrap();
        handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification { request: EventRequest::Submit { buffer }, tag, comm, timed: false },
        )
        .unwrap();
        // The typed Ok reply arrived at the head.
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag)).unwrap();
        assert_eq!(EventReply::decode(&msg.data).unwrap(), EventReply::Ok(Vec::new()));

        // Execute the kernel.
        let tag2 = Tag(11);
        handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Execute { kernel: kid, buffers: vec![buffer] },
                tag: tag2,
                comm,
                timed: false,
            },
        )
        .unwrap();
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag2)).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());

        // Retrieve the result.
        let tag3 = Tag(12);
        handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Retrieve { buffer },
                tag: tag3,
                comm,
                timed: false,
            },
        )
        .unwrap();
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag3)).unwrap();
        let data = EventReply::decode(&msg.data).unwrap().into_result().unwrap();
        assert_eq!(ompc_mpi::typed::bytes_to_f64s(&data).unwrap(), vec![3.0, 6.0]);
    }

    #[test]
    fn retrieve_of_missing_buffer_is_an_error() {
        let world = World::new(2);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let err = handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Retrieve { buffer: BufferId(5) },
                tag: Tag(1),
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, OmpcError::UnknownBuffer(BufferId(5)));
    }

    #[test]
    fn execute_of_unknown_kernel_is_an_error() {
        let world = World::new(2);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let err = handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Execute { kernel: KernelId(3), buffers: vec![] },
                tag: Tag(1),
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, OmpcError::UnknownKernel(KernelId(3)));
    }

    #[test]
    fn worker_to_worker_exchange_moves_data_directly() {
        let world = World::with_communicators(3, 2);
        let head = world.communicator(0);
        let w1 = world.communicator(1);
        let w2 = world.communicator(2);
        let mem1 = DeviceMemory::new();
        let mem2 = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let buffer = BufferId(0);
        mem1.store(buffer, vec![7, 8, 9]);

        let tag = Tag(20);
        let comm = CommId(0);
        // Receiving half first (it blocks waiting for the data), then the
        // sending half, run from two threads like real event handlers.
        let recv_thread = std::thread::spawn({
            let w2 = w2.clone();
            let kernels = KernelRegistry::new();
            move || {
                let mem2 = DeviceMemory::new();
                handle_event(
                    &w2,
                    &mem2,
                    &kernels,
                    EventNotification {
                        request: EventRequest::ExchangeRecv { buffer, from: 1 },
                        tag,
                        comm,
                        timed: false,
                    },
                )
                .unwrap();
                mem2.get(buffer)
            }
        });
        handle_event(
            &w1,
            &mem1,
            &kernels,
            EventNotification {
                request: EventRequest::ExchangeSend { buffer, to: 2 },
                tag,
                comm,
                timed: false,
            },
        )
        .unwrap();
        let received = recv_thread.join().unwrap();
        assert_eq!(received, Some(vec![7, 8, 9]));
        // The head got a typed acknowledgement carrying the byte count.
        let ack = head.recv(Some(2), Some(tag)).unwrap();
        let payload = EventReply::decode(&ack.data).unwrap().into_result().unwrap();
        assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), 3);
        let _ = mem2;
    }

    #[test]
    fn handler_error_is_replied_to_the_head_not_dropped() {
        let world = World::new(2);
        let head = world.communicator(0);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let tag = Tag(33);
        let err = handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Execute { kernel: KernelId(7), buffers: vec![] },
                tag,
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, OmpcError::UnknownKernel(KernelId(7)));
        // The head receives the same failure as a typed error reply, with
        // the originating node and event tag attached.
        let msg = head.recv(Some(1), Some(tag)).unwrap();
        match EventReply::decode(&msg.data).unwrap().into_result().unwrap_err() {
            OmpcError::RemoteEvent { node, event, error } => {
                assert_eq!((node, event), (1, 33));
                assert_eq!(*error, OmpcError::UnknownKernel(KernelId(7)));
            }
            other => panic!("expected a remote-event error, got {other:?}"),
        }
    }

    #[test]
    fn failed_exchange_sender_unblocks_receiver_and_head() {
        // The sending half fails (the buffer was never stored): the sender
        // forwards its error envelope to the receiver, which propagates it
        // to the head — nobody hangs on the half-completed exchange.
        let world = World::with_communicators(3, 2);
        let head = world.communicator(0);
        let w1 = world.communicator(1);
        let w2 = world.communicator(2);
        let buffer = BufferId(6);
        let tag = Tag(40);
        let comm = CommId(0);
        let recv_thread = std::thread::spawn({
            let w2 = w2.clone();
            move || {
                let mem2 = DeviceMemory::new();
                let kernels = KernelRegistry::new();
                handle_event(
                    &w2,
                    &mem2,
                    &kernels,
                    EventNotification {
                        request: EventRequest::ExchangeRecv { buffer, from: 1 },
                        tag,
                        comm,
                        timed: false,
                    },
                )
            }
        });
        let mem1 = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let send_err = handle_event(
            &w1,
            &mem1,
            &kernels,
            EventNotification {
                request: EventRequest::ExchangeSend { buffer, to: 2 },
                tag,
                comm,
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(send_err, OmpcError::UnknownBuffer(buffer));
        assert!(recv_thread.join().unwrap().is_err());
        let msg = head.recv(Some(2), Some(tag)).unwrap();
        let forwarded = EventReply::decode(&msg.data).unwrap().into_result().unwrap_err();
        assert_eq!(forwarded.origin_node(), Some(1), "the error keeps the sender's attribution");
        assert_eq!(forwarded.root_cause(), &OmpcError::UnknownBuffer(buffer));
    }

    #[test]
    fn task_train_replies_per_car_and_posts_notices_in_order() {
        use crate::protocol::{TaskSpec, TaskStep, TrainCar};
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let bump = kernels.register_fn("bump", 1e-6, |args| {
            let v: Vec<f64> = args.as_f64s(0).iter().map(|x| x + 1.0).collect();
            args.set_f64s(0, &v);
        });

        // Car 1 succeeds; car 2 names an unregistered kernel and fails.
        let good = TrainCar {
            tag: Tag(50),
            comm: CommId(1),
            spec: TaskSpec {
                steps: vec![
                    TaskStep::RecvFromHead { buffer: BufferId(1) },
                    TaskStep::Execute { kernel: bump, buffers: vec![BufferId(1)] },
                ],
            },
        };
        let bad = TrainCar {
            tag: Tag(51),
            comm: CommId(0),
            spec: TaskSpec {
                steps: vec![TaskStep::Execute { kernel: KernelId(99), buffers: vec![] }],
            },
        };
        // The good car's payload travels on the car's own channel.
        head.on(CommId(1))
            .unwrap()
            .send(1, Tag(50), ompc_mpi::typed::f64s_to_bytes(&[1.0]))
            .unwrap();
        let err = handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::TaskTrain(vec![good, bad]),
                tag: Tag(50),
                comm: CommId(1),
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, OmpcError::UnknownKernel(KernelId(99)), "first car error is the outcome");

        // Per-car replies on each car's own channel.
        let ok = head.on(CommId(1)).unwrap().recv(Some(1), Some(Tag(50))).unwrap();
        assert!(EventReply::decode(&ok.data).unwrap().into_result().is_ok());
        let bad_reply = head.on(CommId(0)).unwrap().recv(Some(1), Some(Tag(51))).unwrap();
        let bad_err = EventReply::decode(&bad_reply.data).unwrap().into_result().unwrap_err();
        assert_eq!(bad_err.origin_node(), Some(1), "blame stays per task inside a train");
        assert_eq!(bad_err.root_cause(), &OmpcError::UnknownKernel(KernelId(99)));
        // The failed car did not abort the train: the good car executed.
        assert_eq!(
            memory.get(BufferId(1)),
            Some(ompc_mpi::typed::f64s_to_bytes(&[2.0])),
            "earlier cars execute regardless of later failures"
        );

        // Two completion notices, in car order, with per-car outcomes.
        use crate::protocol::{CompletionNotice, COMPLETION_TAG};
        let n1 = head.recv(Some(1), Some(COMPLETION_TAG)).unwrap();
        let n2 = head.recv(Some(1), Some(COMPLETION_TAG)).unwrap();
        assert_eq!(
            CompletionNotice::decode(&n1.data).unwrap(),
            CompletionNotice { tag: Tag(50), ok: true }
        );
        assert_eq!(
            CompletionNotice::decode(&n2.data).unwrap(),
            CompletionNotice { tag: Tag(51), ok: false }
        );
    }

    #[test]
    fn submit_train_stores_payloads_in_order_and_posts_one_notice() {
        use crate::protocol::PREFETCH_TAG;
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let tag = Tag(80);
        let comm = CommId(0);
        // Payloads ride the train's own channel, in the listed order.
        head.on(comm).unwrap().send(1, tag, vec![1, 1]).unwrap();
        head.on(comm).unwrap().send(1, tag, vec![2, 2, 2]).unwrap();
        handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::SubmitTrain { buffers: vec![BufferId(4), BufferId(9)] },
                tag,
                comm,
                timed: false,
            },
        )
        .unwrap();
        assert_eq!(memory.get(BufferId(4)), Some(vec![1, 1]));
        assert_eq!(memory.get(BufferId(9)), Some(vec![2, 2, 2]));
        // One typed reply for the whole train, then exactly one notice on
        // the prefetch channel.
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag)).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());
        let notice = head.recv(Some(1), Some(PREFETCH_TAG)).unwrap();
        assert_eq!(
            CompletionNotice::decode(&notice.data).unwrap(),
            CompletionNotice { tag, ok: true }
        );
    }

    #[test]
    fn killed_worker_refuses_a_submit_train_with_an_error_and_a_notice() {
        use crate::protocol::PREFETCH_TAG;
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker_comm = world.communicator(1);
        let kernels = Arc::new(KernelRegistry::new());
        let worker = std::thread::spawn(move || worker_main(worker_comm, kernels, 1));

        let kill = EventNotification {
            request: EventRequest::Kill,
            tag: Tag(90),
            comm: CommId(0),
            timed: false,
        };
        head.send(1, CONTROL_TAG, kill.encode()).unwrap();
        let train = EventNotification {
            request: EventRequest::SubmitTrain { buffers: vec![BufferId(7)] },
            tag: Tag(91),
            comm: CommId(1),
            timed: false,
        };
        head.send(1, CONTROL_TAG, train.encode()).unwrap();
        let msg = head.on(CommId(1)).unwrap().recv(Some(1), Some(Tag(91))).unwrap();
        let err = EventReply::decode(&msg.data).unwrap().into_result().unwrap_err();
        assert_eq!(err.root_cause(), &OmpcError::NodeFailure(1));
        // The refusal path still posts the train's single prefetch notice.
        let notice = head.recv(Some(1), Some(PREFETCH_TAG)).unwrap();
        assert_eq!(
            CompletionNotice::decode(&notice.data).unwrap(),
            CompletionNotice { tag: Tag(91), ok: false }
        );
        let shutdown = EventNotification {
            request: EventRequest::Shutdown,
            tag: Tag(92),
            comm: CommId(0),
            timed: false,
        };
        head.send(1, CONTROL_TAG, shutdown.encode()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn relay_recv_reassembles_chunks_forwards_once_and_replies_bytes() {
        // Head (rank 0) streams a 10-byte buffer to w1 in 4-byte frames,
        // out of order and with a duplicate; w1 relays every distinct frame
        // to w2's relay channel exactly once.
        let world = World::with_communicators(3, 2);
        let head = world.communicator(0);
        let w1 = world.communicator(1);
        let w2 = world.communicator(2);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let buffer = BufferId(3);
        let data: Vec<u8> = (0..10).collect();
        let tag = Tag(30);
        let comm = CommId(1);
        let child = RelayChild { node: 2, tag: Tag(31), comm: CommId(0) };

        let frame = |i: u64| {
            let start = (i * 4) as usize;
            encode_relay_frame(i, &data[start..(start + 4).min(10)])
        };
        let ch = head.on(comm).unwrap();
        ch.send(1, tag, frame(1)).unwrap();
        ch.send(1, tag, frame(0)).unwrap();
        ch.send(1, tag, frame(0)).unwrap(); // duplicate: ignored, not re-forwarded
        ch.send(1, tag, frame(2)).unwrap();

        handle_event(
            &w1,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::RelayRecv {
                    buffer,
                    total_bytes: 10,
                    chunk_bytes: 4,
                    children: vec![child],
                },
                tag,
                comm,
                timed: false,
            },
        )
        .unwrap();
        assert_eq!(memory.get(buffer), Some(data.clone()));

        // The head's ack carries the delivered byte count.
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag)).unwrap();
        let payload = EventReply::decode(&msg.data).unwrap().into_result().unwrap();
        assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), 10);

        // w2 received each distinct frame exactly once, in arrival order.
        let child_ch = w2.on(child.comm).unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            let msg = child_ch.recv(Some(1), Some(child.tag)).unwrap();
            got.push(crate::protocol::decode_relay_frame(&msg.data).unwrap().0);
        }
        assert_eq!(got, vec![1, 0, 2]);
        assert!(child_ch.iprobe(Some(1), Some(child.tag)).is_none(), "duplicate was forwarded");
    }

    #[test]
    fn relay_feed_streams_resident_buffer_and_replies() {
        let world = World::with_communicators(3, 2);
        let head = world.communicator(0);
        let w1 = world.communicator(1);
        let w2 = world.communicator(2);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let buffer = BufferId(8);
        memory.store(buffer, vec![5; 10]);
        let tag = Tag(60);
        let child = RelayChild { node: 2, tag: Tag(61), comm: CommId(1) };
        handle_event(
            &w1,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::RelayFeed { buffer, chunk_bytes: 4, children: vec![child] },
                tag,
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap();
        let msg = head.on(CommId(0)).unwrap().recv(Some(1), Some(tag)).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());
        let child_ch = w2.on(child.comm).unwrap();
        let mut rebuilt = vec![0u8; 10];
        for want in 0..3u64 {
            let msg = child_ch.recv(Some(1), Some(child.tag)).unwrap();
            let (i, payload) = crate::protocol::decode_relay_frame(&msg.data).unwrap();
            assert_eq!(i, want, "frames stream in index order");
            rebuilt[(i * 4) as usize..(i * 4) as usize + payload.len()].copy_from_slice(&payload);
        }
        assert_eq!(rebuilt, vec![5; 10]);

        // A missing buffer is a typed error, not a hang downstream.
        let err = handle_event(
            &w1,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::RelayFeed {
                    buffer: BufferId(99),
                    chunk_bytes: 0,
                    children: vec![],
                },
                tag: Tag(62),
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, OmpcError::UnknownBuffer(BufferId(99)));
        let msg = head.on(CommId(0)).unwrap().recv(Some(1), Some(Tag(62))).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_err());
    }

    #[test]
    fn relay_recv_accepts_frames_from_a_rescue_source() {
        // The planned parent sends one frame and dies; a rescue feeder
        // replays the whole stream from another rank. The receiver ignores
        // the replayed duplicate and assembles the rest — oblivious to the
        // failure, as the re-sourcing contract requires.
        let world = World::with_communicators(4, 2);
        let head = world.communicator(0);
        let parent = world.communicator(2);
        let rescuer = world.communicator(3);
        let w1 = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        let buffer = BufferId(4);
        let data: Vec<u8> = (10..18).collect();
        let tag = Tag(70);
        let comm = CommId(1);
        parent.on(comm).unwrap().send(1, tag, encode_relay_frame(0, &data[..4])).unwrap();
        for i in 0..2u64 {
            let start = (i * 4) as usize;
            rescuer
                .on(comm)
                .unwrap()
                .send(1, tag, encode_relay_frame(i, &data[start..start + 4]))
                .unwrap();
        }
        handle_event(
            &w1,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::RelayRecv {
                    buffer,
                    total_bytes: 8,
                    chunk_bytes: 4,
                    children: vec![],
                },
                tag,
                comm,
                timed: false,
            },
        )
        .unwrap();
        assert_eq!(memory.get(buffer), Some(data));
        let msg = head.on(comm).unwrap().recv(Some(1), Some(tag)).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());
    }

    #[test]
    fn reset_clears_device_memory_and_replies_ok() {
        let world = World::new(2);
        let head = world.communicator(0);
        let worker = world.communicator(1);
        let memory = DeviceMemory::new();
        let kernels = KernelRegistry::new();
        memory.store(BufferId(3), vec![1, 2, 3]);
        handle_event(
            &worker,
            &memory,
            &kernels,
            EventNotification {
                request: EventRequest::Reset,
                tag: Tag(60),
                comm: CommId(0),
                timed: false,
            },
        )
        .unwrap();
        assert!(memory.is_empty());
        let msg = head.recv(Some(1), Some(Tag(60))).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());
    }

    #[test]
    fn killed_worker_refuses_every_train_car_individually() {
        use crate::protocol::{CompletionNotice, TaskSpec, TaskStep, TrainCar, COMPLETION_TAG};
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker_comm = world.communicator(1);
        let kernels = Arc::new(KernelRegistry::new());
        let worker = std::thread::spawn(move || worker_main(worker_comm, kernels, 1));

        let kill = EventNotification {
            request: EventRequest::Kill,
            tag: Tag(70),
            comm: CommId(0),
            timed: false,
        };
        head.send(1, CONTROL_TAG, kill.encode()).unwrap();
        let cars: Vec<TrainCar> = [71u64, 72]
            .iter()
            .map(|&t| TrainCar {
                tag: Tag(t),
                comm: CommId((t % 2) as u32),
                spec: TaskSpec { steps: vec![TaskStep::Alloc { buffer: BufferId(t), size: 8 }] },
            })
            .collect();
        let train = EventNotification {
            request: EventRequest::TaskTrain(cars),
            tag: Tag(71),
            comm: CommId(1),
            timed: false,
        };
        head.send(1, CONTROL_TAG, train.encode()).unwrap();

        for tag in [71u64, 72] {
            let msg =
                head.on(CommId((tag % 2) as u32)).unwrap().recv(Some(1), Some(Tag(tag))).unwrap();
            let err = EventReply::decode(&msg.data).unwrap().into_result().unwrap_err();
            assert_eq!(err.origin_node(), Some(1), "car {tag}");
            assert_eq!(err.root_cause(), &OmpcError::NodeFailure(1), "car {tag}");
            let notice = head.recv(Some(1), Some(COMPLETION_TAG)).unwrap();
            assert_eq!(
                CompletionNotice::decode(&notice.data).unwrap(),
                CompletionNotice { tag: Tag(tag), ok: false }
            );
        }
        let shutdown = EventNotification {
            request: EventRequest::Shutdown,
            tag: Tag(73),
            comm: CommId(0),
            timed: false,
        };
        head.send(1, CONTROL_TAG, shutdown.encode()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn killed_worker_refuses_events_with_error_replies_until_shutdown() {
        let world = World::with_communicators(2, 2);
        let head = world.communicator(0);
        let worker_comm = world.communicator(1);
        let kernels = Arc::new(KernelRegistry::new());
        let worker = std::thread::spawn(move || worker_main(worker_comm, kernels, 1));

        let send = |req: EventRequest, tag: u64| {
            let n =
                EventNotification { request: req, tag: Tag(tag), comm: CommId(0), timed: false };
            head.send(1, CONTROL_TAG, n.encode()).unwrap();
        };
        // Before the kill: a normal alloc completes with an Ok reply.
        send(EventRequest::Alloc { buffer: BufferId(1), size: 8 }, 100);
        let msg = head.on(CommId(0)).unwrap().recv(Some(1), Some(Tag(100))).unwrap();
        assert!(EventReply::decode(&msg.data).unwrap().into_result().is_ok());

        // Kill the node, then try to execute: the event is refused.
        send(EventRequest::Kill, 101);
        send(EventRequest::Execute { kernel: KernelId(0), buffers: vec![] }, 102);
        let msg = head.on(CommId(0)).unwrap().recv(Some(1), Some(Tag(102))).unwrap();
        let err = EventReply::decode(&msg.data).unwrap().into_result().unwrap_err();
        assert_eq!(err.origin_node(), Some(1));
        assert_eq!(err.root_cause(), &OmpcError::NodeFailure(1));

        // Shutdown still terminates the gate loop.
        send(EventRequest::Shutdown, 103);
        worker.join().unwrap();
    }
}
