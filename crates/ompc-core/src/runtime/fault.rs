//! The fault-tolerance subsystem of the unified execution core
//! (paper §3.1).
//!
//! Four pieces cooperate, all of them driven from inside
//! [`super::RuntimeCore`]'s dispatch loop rather than out-of-band:
//!
//! * **Injection** — a deterministic, seeded-workload-friendly
//!   [`FailureInjector`] consumes a [`FaultPlan`] from
//!   [`crate::config::OmpcConfig::fault_plan`]: *fail node N once the fault
//!   clock reaches T milliseconds* or *fail node N right after its K-th
//!   task retirement*. Because `AfterCompletions` triggers are evaluated at
//!   an exact position in the task-completion stream, both execution
//!   backends kill the node at the same protocol point and recover the same
//!   tasks.
//! * **Detection** — the ring-topology [`crate::heartbeat::HeartbeatMonitor`]
//!   is fed by the dispatch loop: every dispatch round, each node that the
//!   injector has not silenced beats; a silenced node misses its beats and
//!   is declared failed after
//!   [`crate::config::OmpcConfig::heartbeat_miss_threshold`] periods. The
//!   fault clock is virtual time in the simulated backend and a logical
//!   clock advanced one [`crate::config::OmpcConfig::heartbeat_period_ms`]
//!   per round in the threaded backend.
//! * **Recovery** — between injection and declaration the dead node
//!   completes nothing: the [`crate::data_manager::DataManager`] discards
//!   its copies and writes immediately ([`LostBuffer`] lineage), and the
//!   core requeues every task the backend reports from the dead node. Once
//!   the monitor declares the failure, the affected tasks are replanned
//!   onto survivors — round-robin via [`crate::heartbeat::plan_recovery`],
//!   or a full re-run of the static scheduler over the shrunken platform
//!   when [`crate::config::OmpcConfig::replan_on_failure`] is set.
//! * **Observability** — every failure leaves a [`FailureRecord`] (and the
//!   re-executed / replanned task sets) in [`super::RunRecord`], from which
//!   `ompc-bench` derives the fault-overhead figure.
//!
//! Failures are modelled at the protocol layer: a "dead" node stops
//! heart-beating and is excommunicated from the data manager, but the OS
//! thread (or simulated resource) backing it keeps draining events — their
//! effects are discarded. This keeps injection deterministic and both
//! backends byte-for-byte comparable.

use crate::heartbeat::{HeartbeatMonitor, Millis};
use crate::types::{BufferId, NodeId, OmpcError, OmpcResult};
use std::collections::{BTreeMap, BTreeSet};

/// When an injected failure takes effect.
///
/// ```
/// use ompc_core::runtime::{FaultPlan, FaultTrigger};
///
/// let plan = FaultPlan::none()
///     .fail_after_completions(1, 3) // node 1 dies after its 3rd retirement
///     .fail_at_millis(2, 50) // node 2 dies at fault-clock 50 ms
///     .fail_at_wall_millis(3, 10_000); // node 3 dies 10 s into the run
/// assert_eq!(plan.events.len(), 3);
/// assert!(matches!(plan.events[2].trigger, FaultTrigger::AtWallMillis(10_000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The node dies once the fault clock reaches this many milliseconds
    /// (virtual time in the simulated backend, the logical dispatch clock
    /// in the threaded backend).
    AtMillis(Millis),
    /// The node dies immediately after its K-th task retirement — the
    /// trigger to use when every backend must fail at the identical point
    /// of the completion stream.
    ///
    /// Only **first-attempt** retirements advance this trigger's clock.
    /// Recovery re-executions — lineage producers un-retired after a node
    /// death, and in-flight tasks restarted on a survivor — retire again,
    /// but those retirements are *recovery work*, not progress of the
    /// original completion stream: counting them would let one injected
    /// failure push a survivor past its own trigger and turn a
    /// one-failure plan into a cascade whose shape depends on where
    /// recovery happened to land. The execution core therefore skips the
    /// injector's retirement accounting for any task in its re-executed
    /// set, which keeps `AfterCompletions` positions identical across all
    /// execution backends even when recovery timing differs.
    AfterCompletions(usize),
    /// The node dies once this much *real* (wall-clock) time has elapsed
    /// since the run started — the trigger soak tests use to inject
    /// failures by elapsed time regardless of how the fault clock advances.
    /// Inherently non-deterministic with respect to the completion stream;
    /// prefer the other triggers when both backends must fail at the same
    /// protocol point.
    AtWallMillis(Millis),
}

/// One injected failure: a worker node and its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The worker node that dies (`1..=num_workers`; the head node cannot
    /// fail).
    pub node: NodeId,
    /// When it dies.
    pub trigger: FaultTrigger,
}

/// A deterministic failure-injection plan, configured through
/// [`crate::config::OmpcConfig::fault_plan`]. An empty plan (the default)
/// disables the fault subsystem entirely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The injected node failures, in configuration order.
    pub events: Vec<FaultEvent>,
    /// Tasks whose execution is forced to fail at the protocol layer: the
    /// threaded backend executes them against a deliberately unregistered
    /// kernel (a genuine worker-side handler error travelling back through
    /// the event-reply channel), the simulated backend models the same
    /// failed reply. Used to test the error-reply path deterministically
    /// in both backends.
    pub task_errors: Vec<usize>,
}

impl FaultPlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects no *node* failures (task-error injection
    /// does not involve the heartbeat/recovery subsystem).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add a failure of `node` at fault-clock time `millis`.
    pub fn fail_at_millis(mut self, node: NodeId, millis: Millis) -> Self {
        self.events.push(FaultEvent { node, trigger: FaultTrigger::AtMillis(millis) });
        self
    }

    /// Add a failure of `node` once `millis` of real (wall-clock) time have
    /// elapsed since the run started — for soak tests that inject failures
    /// by elapsed time.
    pub fn fail_at_wall_millis(mut self, node: NodeId, millis: Millis) -> Self {
        self.events.push(FaultEvent { node, trigger: FaultTrigger::AtWallMillis(millis) });
        self
    }

    /// Add a failure of `node` right after its `completions`-th task
    /// retirement.
    pub fn fail_after_completions(mut self, node: NodeId, completions: usize) -> Self {
        self.events.push(FaultEvent { node, trigger: FaultTrigger::AfterCompletions(completions) });
        self
    }

    /// Force `task`'s execution to fail at the protocol layer (an injected
    /// worker-side handler error). Both backends propagate the same
    /// `RemoteEvent { node, error: UnknownKernel, .. }`; only the `event`
    /// id is backend-specific (the real wire tag in the threaded backend,
    /// the task index in the simulated one) — compare errors across
    /// backends via `origin_node()` / `root_cause()`, not equality.
    pub fn error_on_task(mut self, task: usize) -> Self {
        self.task_errors.push(task);
        self
    }

    /// Whether `task` is marked for an injected execution error.
    pub fn has_task_error(&self, task: usize) -> bool {
        self.task_errors.contains(&task)
    }

    /// Check the injected task errors against a graph of `total_tasks`
    /// tasks: a typo'd task index must be rejected up front, not silently
    /// degrade the plan to a no-op. Called by both backends at execution
    /// time (only then is the graph size known).
    pub fn validate_task_errors(&self, total_tasks: usize) -> OmpcResult<()> {
        for &task in &self.task_errors {
            if task >= total_tasks {
                return Err(OmpcError::InvalidConfig(format!(
                    "fault plan injects an error into task {task} but the graph has only \
                     {total_tasks} task(s)"
                )));
            }
        }
        Ok(())
    }

    /// Check the plan against a cluster of `num_workers` worker nodes.
    pub fn validate(&self, num_workers: usize) -> OmpcResult<()> {
        for event in &self.events {
            if event.node < 1 || event.node > num_workers {
                return Err(OmpcError::InvalidConfig(format!(
                    "fault plan names node {} but the cluster has worker nodes 1..={num_workers} \
                     (the head node cannot fail)",
                    event.node
                )));
            }
        }
        Ok(())
    }
}

/// Evaluates a [`FaultPlan`] against the fault clock and the per-node
/// retirement counts, silencing each planned node exactly once.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    pending: Vec<FaultEvent>,
    silenced: BTreeSet<NodeId>,
    retirements: Vec<usize>,
}

impl FailureInjector {
    /// Build an injector for a cluster of `nodes` nodes (head included).
    pub fn new(plan: &FaultPlan, nodes: usize) -> Self {
        Self {
            pending: plan.events.clone(),
            silenced: BTreeSet::new(),
            retirements: vec![0; nodes],
        }
    }

    /// Whether the injector has silenced `node`.
    pub fn is_silenced(&self, node: NodeId) -> bool {
        self.silenced.contains(&node)
    }

    /// Silence `node` without any trigger firing — used to carry a failure
    /// declared in an earlier region execution into a fresh injector, so
    /// the node is never again counted among the survivors.
    pub fn silence(&mut self, node: NodeId) {
        self.silenced.insert(node);
    }

    /// Record a task retirement on `node`; returns the nodes (possibly
    /// `node` itself) whose `AfterCompletions` trigger just fired.
    pub fn note_retirement(&mut self, node: NodeId) -> Vec<NodeId> {
        if let Some(count) = self.retirements.get_mut(node) {
            *count += 1;
        }
        let retirements = &self.retirements;
        let silenced = &mut self.silenced;
        let mut fired = Vec::new();
        self.pending.retain(|event| match event.trigger {
            FaultTrigger::AfterCompletions(k)
                if retirements.get(event.node).is_some_and(|&c| c >= k) =>
            {
                if silenced.insert(event.node) {
                    fired.push(event.node);
                }
                false
            }
            _ => true,
        });
        fired
    }

    /// Advance the fault clock to `now`; returns the nodes whose `AtMillis`
    /// trigger just fired.
    pub fn advance_clock(&mut self, now: Millis) -> Vec<NodeId> {
        let silenced = &mut self.silenced;
        let mut fired = Vec::new();
        self.pending.retain(|event| match event.trigger {
            FaultTrigger::AtMillis(t) if now >= t => {
                if silenced.insert(event.node) {
                    fired.push(event.node);
                }
                false
            }
            _ => true,
        });
        fired
    }

    /// Report that `elapsed` milliseconds of real time have passed since
    /// the run started; returns the nodes whose `AtWallMillis` trigger
    /// just fired.
    pub fn advance_wall_clock(&mut self, elapsed: Millis) -> Vec<NodeId> {
        let silenced = &mut self.silenced;
        let mut fired = Vec::new();
        self.pending.retain(|event| match event.trigger {
            FaultTrigger::AtWallMillis(t) if elapsed >= t => {
                if silenced.insert(event.node) {
                    fired.push(event.node);
                }
                false
            }
            _ => true,
        });
        fired
    }
}

/// A buffer whose last valid copy died with a node, as reported by a
/// backend's `invalidate_node`: the tasks that write it (in dependence
/// order) are the lineage the core re-executes to regenerate the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostBuffer {
    /// The buffer whose data was lost.
    pub buffer: BufferId,
    /// Every task of the graph that writes the buffer, in graph order.
    pub writers: Vec<usize>,
}

/// One declared node failure, as recorded in [`super::RunRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// The node that failed.
    pub node: NodeId,
    /// Fault-clock time (ms) at which the injector silenced the node.
    pub silenced_at: Millis,
    /// Fault-clock time (ms) at which the heartbeat monitor declared it.
    pub detected_at: Millis,
    /// Number of buffers whose only valid copy died with the node.
    pub lost_buffers: usize,
    /// Number of completed tasks un-retired for lineage re-execution.
    pub lineage_tasks: usize,
}

impl FailureRecord {
    /// Detection latency in fault-clock milliseconds (silencing to
    /// declaration).
    pub fn detection_latency(&self) -> Millis {
        self.detected_at.saturating_sub(self.silenced_at)
    }
}

/// One task reassigned during recovery. The round-robin fast path only
/// moves tasks off the failed node; a full re-schedule
/// ([`crate::config::OmpcConfig::replan_on_failure`]) may also move
/// pending tasks between surviving nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanEntry {
    /// The task that moved.
    pub task: usize,
    /// The node it was assigned to before recovery.
    pub from: NodeId,
    /// The surviving node it moved to.
    pub to: NodeId,
}

/// The runtime state of the fault subsystem inside one
/// [`super::RuntimeCore`] execution.
#[derive(Debug)]
pub struct FaultState {
    pub(crate) injector: FailureInjector,
    pub(crate) monitor: HeartbeatMonitor,
    period: Millis,
    clock: Millis,
    num_workers: usize,
    pub(crate) replan_on_failure: bool,
    /// Real-time epoch of the run, for [`FaultTrigger::AtWallMillis`].
    wall_start: std::time::Instant,
    /// Nodes the injector has silenced (dead, possibly not yet declared).
    silenced_at: BTreeMap<NodeId, Millis>,
    /// Nodes the monitor has declared failed.
    declared: BTreeSet<NodeId>,
}

impl FaultState {
    /// Build the subsystem from configuration knobs, or `None` when the
    /// fault plan is empty (the subsystem then stays entirely out of the
    /// dispatch loop).
    pub fn from_config(
        plan: &FaultPlan,
        period_ms: Millis,
        miss_threshold: u32,
        num_workers: usize,
    ) -> OmpcResult<Option<Self>> {
        if plan.is_empty() {
            return Ok(None);
        }
        plan.validate(num_workers)?;
        if period_ms == 0 || miss_threshold == 0 {
            return Err(OmpcError::InvalidConfig(
                "heartbeat period and miss threshold must be positive".to_string(),
            ));
        }
        let nodes = num_workers + 1;
        Ok(Some(Self {
            injector: FailureInjector::new(plan, nodes),
            monitor: HeartbeatMonitor::new(nodes, period_ms, miss_threshold),
            period: period_ms,
            clock: 0,
            num_workers,
            replan_on_failure: false,
            wall_start: std::time::Instant::now(),
            silenced_at: BTreeMap::new(),
            declared: BTreeSet::new(),
        }))
    }

    /// Enable full rescheduling over the survivors on recovery.
    pub fn with_replan(mut self, replan: bool) -> Self {
        self.replan_on_failure = replan;
        self
    }

    /// Seed the subsystem with nodes that already failed before this
    /// execution started (e.g. in an earlier region of the same device
    /// lifetime). They are silenced and pre-declared: excluded from
    /// [`FaultState::alive_workers`] — so recovery never resurrects them —
    /// and never re-declared to the core as a fresh failure.
    pub fn with_prior_failures(mut self, dead: &[NodeId]) -> Self {
        for &node in dead {
            self.injector.silence(node);
            self.declared.insert(node);
        }
        self
    }

    /// The current fault clock (ms).
    pub fn clock(&self) -> Millis {
        self.clock
    }

    /// Whether `node` is dead (silenced by the injector, declared or not).
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.injector.is_silenced(node)
    }

    /// Whether `node` has been declared failed by the monitor.
    pub fn is_declared(&self, node: NodeId) -> bool {
        self.declared.contains(&node)
    }

    /// Worker nodes not silenced by the injector, ascending.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        (1..=self.num_workers).filter(|&n| !self.injector.is_silenced(n)).collect()
    }

    /// Record a retirement on `node` and return the nodes it just killed.
    pub(crate) fn note_retirement(&mut self, node: NodeId) -> Vec<NodeId> {
        let fired = self.injector.note_retirement(node);
        for &n in &fired {
            self.silenced_at.insert(n, self.clock);
        }
        fired
    }

    /// Advance the fault clock one dispatch round — to `backend_now` if the
    /// backend has a clock, by one heartbeat period otherwise — and return
    /// the nodes whose timed trigger (fault-clock or wall-clock) fired.
    pub(crate) fn advance_round(&mut self, backend_now: Option<Millis>) -> Vec<NodeId> {
        self.clock = match backend_now {
            Some(now) => now.max(self.clock),
            None => self.clock + self.period,
        };
        let mut fired = self.injector.advance_clock(self.clock);
        let wall_elapsed = self.wall_start.elapsed().as_millis() as Millis;
        fired.extend(self.injector.advance_wall_clock(wall_elapsed));
        for &n in &fired {
            self.silenced_at.insert(n, self.clock);
        }
        fired
    }

    /// Beat every node the injector has not silenced, then return the nodes
    /// the monitor newly declares failed.
    pub(crate) fn beat_and_check(&mut self) -> Vec<NodeId> {
        for node in 0..self.monitor.nodes() {
            if !self.injector.is_silenced(node) {
                self.monitor.record_heartbeat(node, self.clock);
            }
        }
        // `insert` returning false filters nodes pre-declared by
        // `with_prior_failures`: their (new) monitor entry goes silent from
        // round one, but their failure belongs to an earlier execution and
        // must not be re-declared to the core.
        let mut newly = self.monitor.check(self.clock);
        newly.retain(|&n| self.declared.insert(n));
        newly
    }

    /// Fault-clock time at which `node` was silenced (0 if unknown).
    pub(crate) fn silenced_at(&self, node: NodeId) -> Millis {
        self.silenced_at.get(&node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_disables_the_subsystem() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultState::from_config(&FaultPlan::none(), 10, 3, 4).unwrap().is_none());
    }

    #[test]
    fn plan_validation_rejects_head_and_out_of_range_nodes() {
        let head = FaultPlan::none().fail_at_millis(0, 5);
        assert!(matches!(head.validate(4), Err(OmpcError::InvalidConfig(_))));
        let oob = FaultPlan::none().fail_after_completions(9, 1);
        assert!(matches!(oob.validate(4), Err(OmpcError::InvalidConfig(_))));
        let ok = FaultPlan::none().fail_at_millis(4, 5).fail_after_completions(1, 2);
        assert!(ok.validate(4).is_ok());
        assert!(FaultState::from_config(&ok, 10, 3, 4).unwrap().is_some());
        assert!(matches!(FaultState::from_config(&ok, 0, 3, 4), Err(OmpcError::InvalidConfig(_))));
    }

    #[test]
    fn completion_trigger_fires_exactly_after_the_kth_retirement() {
        let plan = FaultPlan::none().fail_after_completions(2, 3);
        let mut injector = FailureInjector::new(&plan, 4);
        assert!(injector.note_retirement(2).is_empty());
        assert!(injector.note_retirement(1).is_empty());
        assert!(injector.note_retirement(2).is_empty());
        assert_eq!(injector.note_retirement(2), vec![2]);
        assert!(injector.is_silenced(2));
        // Fires only once.
        assert!(injector.note_retirement(2).is_empty());
    }

    #[test]
    fn time_trigger_fires_when_the_clock_passes() {
        let plan = FaultPlan::none().fail_at_millis(1, 50).fail_at_millis(3, 120);
        let mut injector = FailureInjector::new(&plan, 4);
        assert!(injector.advance_clock(49).is_empty());
        assert_eq!(injector.advance_clock(60), vec![1]);
        assert_eq!(injector.advance_clock(500), vec![3]);
        assert!(injector.advance_clock(1000).is_empty());
    }

    #[test]
    fn wall_clock_trigger_fires_on_elapsed_real_time() {
        let plan = FaultPlan::none().fail_at_wall_millis(2, 5);
        let mut injector = FailureInjector::new(&plan, 4);
        assert!(injector.advance_wall_clock(4).is_empty());
        assert_eq!(injector.advance_wall_clock(5), vec![2]);
        assert!(injector.advance_wall_clock(100).is_empty(), "fires only once");
        // A wall trigger is untouched by fault-clock advances and vice
        // versa.
        let plan = FaultPlan::none().fail_at_wall_millis(1, 5).fail_at_millis(3, 5);
        let mut injector = FailureInjector::new(&plan, 4);
        assert_eq!(injector.advance_clock(10), vec![3]);
        assert_eq!(injector.advance_wall_clock(10), vec![1]);
    }

    #[test]
    fn wall_clock_trigger_fires_through_fault_state_rounds() {
        // An immediate wall trigger (0 ms) fires on the first round even
        // though the fault clock is still at its first period.
        let plan = FaultPlan::none().fail_at_wall_millis(1, 0);
        let mut state = FaultState::from_config(&plan, 10, 3, 2).unwrap().unwrap();
        let fired = state.advance_round(None);
        assert_eq!(fired, vec![1]);
        assert!(state.is_dead(1));
        assert_eq!(state.alive_workers(), vec![2]);
    }

    #[test]
    fn task_error_injection_is_recorded_in_the_plan() {
        let plan = FaultPlan::none().error_on_task(3).error_on_task(7);
        assert!(plan.has_task_error(3) && plan.has_task_error(7));
        assert!(!plan.has_task_error(4));
        // Task errors alone do not enable the node-failure subsystem.
        assert!(plan.is_empty());
        assert!(FaultState::from_config(&plan, 10, 3, 4).unwrap().is_none());
    }

    #[test]
    fn out_of_range_task_errors_are_rejected_not_ignored() {
        let plan = FaultPlan::none().error_on_task(3).error_on_task(7);
        assert!(plan.validate_task_errors(8).is_ok());
        let err = plan.validate_task_errors(4).unwrap_err();
        assert!(matches!(err, OmpcError::InvalidConfig(_)));
        assert!(err.to_string().contains("task 7"), "unclear message: {err}");
        assert!(FaultPlan::none().validate_task_errors(0).is_ok());
    }

    #[test]
    fn silenced_node_is_declared_after_missed_heartbeats() {
        let plan = FaultPlan::none().fail_after_completions(1, 1);
        let mut state = FaultState::from_config(&plan, 10, 3, 1).unwrap().unwrap();
        // Rounds before the failure: everyone beats, nothing declared.
        for _ in 0..3 {
            state.advance_round(None);
            assert!(state.beat_and_check().is_empty());
        }
        assert_eq!(state.note_retirement(1), vec![1]);
        assert!(state.is_dead(1) && !state.is_declared(1));
        assert_eq!(state.alive_workers(), Vec::<NodeId>::new());
        // The logical clock needs miss_threshold periods past the last beat.
        let mut declared = Vec::new();
        for _ in 0..6 {
            state.advance_round(None);
            declared.extend(state.beat_and_check());
        }
        assert_eq!(declared, vec![1]);
        assert!(state.is_declared(1));
        let latency = state.clock() - state.silenced_at(1);
        assert!(latency > 30, "declared only after the miss threshold, got {latency} ms");
    }

    #[test]
    fn prior_failures_are_silenced_but_never_redeclared() {
        // A node that died in an earlier region: excluded from the
        // survivors from round one, and never declared again even though
        // its (fresh) monitor entry goes silent immediately.
        let plan = FaultPlan::none().fail_after_completions(2, 1);
        let mut state =
            FaultState::from_config(&plan, 10, 3, 3).unwrap().unwrap().with_prior_failures(&[1]);
        assert!(state.is_dead(1) && state.is_declared(1));
        assert_eq!(state.alive_workers(), vec![2, 3]);
        let mut declared = Vec::new();
        for _ in 0..10 {
            state.advance_round(None);
            declared.extend(state.beat_and_check());
        }
        assert!(declared.is_empty(), "the prior failure must not be re-declared: {declared:?}");
        // A fresh trigger on a live node still fires and declares normally.
        assert_eq!(state.note_retirement(2), vec![2]);
        let mut declared = Vec::new();
        for _ in 0..10 {
            state.advance_round(None);
            declared.extend(state.beat_and_check());
        }
        assert_eq!(declared, vec![2]);
        assert_eq!(state.alive_workers(), vec![3]);
    }

    #[test]
    fn failure_record_reports_detection_latency() {
        let r = FailureRecord {
            node: 2,
            silenced_at: 40,
            detected_at: 75,
            lost_buffers: 1,
            lineage_tasks: 2,
        };
        assert_eq!(r.detection_latency(), 35);
    }
}
