//! The threaded execution backend: real worker-node threads driven through
//! the `ompc-mpi` event system.
//!
//! The backend owns a pool of head worker threads (the analogue of
//! libomptarget's hidden helper threads). [`RuntimeCore`] decides *which*
//! task is dispatched *when* — bounded by the configured in-flight window —
//! and the pool performs each task's data movement and kernel execution:
//! input forwarding planned by the [`DataManager`], worker-to-worker
//! exchanges, kernel execution events, and write-invalidation. Because the
//! window is a property of the core rather than of the pool, more tasks can
//! be in flight than there are blocked threads, which is exactly the
//! pipelined dispatch the paper proposes as the fix for its §7 bottleneck.

use super::{ExecutionBackend, RuntimeCore};
use crate::buffer::BufferRegistry;
use crate::cluster::HostFn;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, TransferPlan, HEAD_NODE};
use crate::event::EventSystem;
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, MapType, NodeId, OmpcError, OmpcResult, TaskId};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferState {
    InFlight,
    Failed,
}

/// Tracks `(buffer, node)` input transfers that have been *planned* (the
/// data manager optimistically records the destination as a holder) but have
/// not yet completed on the wire. A concurrent reader of the same buffer on
/// the same node gets `plan_input == None` and must wait here instead of
/// executing against memory that has not arrived yet; if the transfer fails,
/// waiters get an error instead of silently computing on missing data.
#[derive(Default)]
struct TransferGate {
    transfers: Mutex<HashMap<(u64, NodeId), TransferState>>,
    done: parking_lot::Condvar,
}

impl TransferGate {
    fn finish(&self, buffer: BufferId, node: NodeId, ok: bool) {
        {
            let mut transfers = self.transfers.lock();
            if ok {
                transfers.remove(&(buffer.0, node));
            } else {
                transfers.insert((buffer.0, node), TransferState::Failed);
            }
        }
        self.done.notify_all();
    }

    /// Block until the transfer of `buffer` to `node` has landed; error out
    /// if it failed.
    fn wait_until_present(&self, buffer: BufferId, node: NodeId) -> OmpcResult<()> {
        let mut transfers = self.transfers.lock();
        loop {
            match transfers.get(&(buffer.0, node)) {
                None => return Ok(()),
                Some(TransferState::Failed) => {
                    return Err(OmpcError::Internal(format!(
                        "input forwarding of {buffer} to node {node} failed"
                    )));
                }
                Some(TransferState::InFlight) => self.done.wait(&mut transfers),
            }
        }
    }
}

/// Executes a region graph on the real (threaded) cluster.
pub struct ThreadedBackend<'a> {
    events: &'a EventSystem,
    buffers: &'a BufferRegistry,
    dm: &'a Mutex<DataManager>,
    graph: &'a RegionGraph,
    host_fns: &'a HashMap<usize, HostFn>,
    pool_threads: usize,
    serial_inputs: bool,
    transfers: TransferGate,
}

impl<'a> ThreadedBackend<'a> {
    /// Build a backend over the device's communication machinery for one
    /// region execution.
    pub fn new(
        events: &'a EventSystem,
        buffers: &'a BufferRegistry,
        dm: &'a Mutex<DataManager>,
        graph: &'a RegionGraph,
        host_fns: &'a HashMap<usize, HostFn>,
        config: &OmpcConfig,
    ) -> Self {
        Self {
            events,
            buffers,
            dm,
            graph,
            host_fns,
            pool_threads: config.head_worker_threads.max(1),
            serial_inputs: config.serial_input_transfers,
            transfers: TransferGate::default(),
        }
    }

    /// Drive `core` to completion: spawn the head worker pool, feed it the
    /// tasks the core dispatches, and report completions back.
    pub fn execute(&self, core: &mut RuntimeCore) -> OmpcResult<()> {
        std::thread::scope(|scope| {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, NodeId)>();
            let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, OmpcResult<()>)>();
            for i in 0..self.pool_threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("ompc-head-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Ok((tid, node)) = task_rx.recv() {
                            let res = self.run_task(tid, node);
                            if done_tx.send((tid, res)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn head worker thread");
            }
            drop(task_rx);
            drop(done_tx);
            let mut driver = HeadPool { task_tx, done_rx };
            core.execute(&mut driver)
            // The pool drains and joins when `driver` (and with it the task
            // sender) drops at the end of this scope.
        })
    }

    /// Carry out one planned input forward and resolve its gate entry.
    fn perform_transfer(&self, plan: TransferPlan, node: NodeId) -> OmpcResult<()> {
        let moved = if plan.from == HEAD_NODE {
            self.buffers
                .get(plan.buffer)
                .and_then(|data| self.events.submit(node, plan.buffer, data))
        } else {
            self.events.exchange(plan.from, node, plan.buffer).map(|_| ())
        };
        if moved.is_err() {
            // The bytes never arrived: roll back the holder `plan_input`
            // recorded optimistically so no later reader skips the transfer.
            self.dm.lock().forget_replica(plan.buffer, node);
        }
        self.transfers.finish(plan.buffer, node, moved.is_ok());
        moved
    }

    /// Execute one task: plan and perform its data movement through the
    /// data manager, then run the kernel (or the host body, or the data
    /// movement itself for enter/exit data tasks).
    fn run_task(&self, tid: usize, node: NodeId) -> OmpcResult<()> {
        let task = self.graph.task(TaskId(tid));
        match &task.kind {
            TaskKind::EnterData { buffer, map } => {
                if node == HEAD_NODE {
                    return Ok(());
                }
                match map {
                    MapType::To | MapType::ToFrom => {
                        let data = self.buffers.get(*buffer)?;
                        self.events.submit(node, *buffer, data)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::Alloc => {
                        let size = self.buffers.size_of(*buffer)?;
                        self.events.alloc(node, *buffer, size)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::From | MapType::Release => {}
                }
                Ok(())
            }
            TaskKind::Target { kernel, .. } => {
                let buffer_list: Vec<BufferId> =
                    task.dependences.iter().map(|d| d.buffer).collect();
                // Plan every input forward first, under one gate acquisition
                // per dependence, so a concurrent same-node reader that sees
                // `plan_input == None` (we are already recorded as a holder)
                // is guaranteed to find our in-flight entry to wait on.
                let mut own: Vec<TransferPlan> = Vec::new();
                let mut awaited: Vec<BufferId> = Vec::new();
                for dep in &task.dependences {
                    if dep.dep_type.reads() {
                        let mut gate = self.transfers.transfers.lock();
                        match self.dm.lock().plan_input(dep.buffer, node) {
                            Some(plan) => {
                                gate.insert((dep.buffer.0, node), TransferState::InFlight);
                                own.push(plan);
                            }
                            None => {
                                if gate.contains_key(&(dep.buffer.0, node)) {
                                    awaited.push(dep.buffer);
                                }
                            }
                        }
                    }
                }
                // Write-only outputs: make sure storage exists on the
                // executing node. Any failure here must resolve the forwards
                // announced above, or co-located waiters would block forever.
                let allocated: OmpcResult<()> =
                    task.dependences.iter().filter(|dep| !dep.dep_type.reads()).try_for_each(
                        |dep| {
                            let present = self.dm.lock().is_present(dep.buffer, node);
                            if !present {
                                let size = self.buffers.size_of(dep.buffer)?;
                                self.events.alloc(node, dep.buffer, size)?;
                                self.dm.lock().record_replica(dep.buffer, node);
                            }
                            Ok(())
                        },
                    );
                if let Err(e) = allocated {
                    for plan in own {
                        self.dm.lock().forget_replica(plan.buffer, node);
                        self.transfers.finish(plan.buffer, node, false);
                    }
                    return Err(e);
                }
                // Perform our own forwards: overlapped by default (the
                // pipelined dispatch loop), strictly in dependence order
                // when `serial_input_transfers` restores the libomptarget
                // behaviour.
                let moved: OmpcResult<()> = if self.serial_inputs || own.len() <= 1 {
                    let mut result = Ok(());
                    let mut own = own.into_iter();
                    for plan in own.by_ref() {
                        result = self.perform_transfer(plan, node);
                        if result.is_err() {
                            break;
                        }
                    }
                    // Mark any unperformed forwards failed so co-located
                    // waiters error out instead of blocking forever.
                    for plan in own {
                        self.dm.lock().forget_replica(plan.buffer, node);
                        self.transfers.finish(plan.buffer, node, false);
                    }
                    result
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = own
                            .into_iter()
                            .map(|plan| scope.spawn(move || self.perform_transfer(plan, node)))
                            .collect();
                        let mut result = Ok(());
                        for handle in handles {
                            let moved = handle.join().expect("input transfer thread panicked");
                            if result.is_ok() {
                                result = moved;
                            }
                        }
                        result
                    })
                };
                moved?;
                // Inputs forwarded by co-located siblings: execute only once
                // their copies have fully arrived.
                for buffer in awaited {
                    self.transfers.wait_until_present(buffer, node)?;
                }
                self.events.execute(node, *kernel, buffer_list)?;
                for dep in &task.dependences {
                    if dep.dep_type.writes() {
                        let stale = self.dm.lock().record_write(dep.buffer, node);
                        for stale_node in stale {
                            if stale_node != HEAD_NODE {
                                self.events.delete(stale_node, dep.buffer)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            TaskKind::ExitData { buffer, map } => {
                if map.copies_from_device() {
                    let from = self.dm.lock().plan_retrieve(*buffer);
                    if let Some(from) = from {
                        let data = self.events.retrieve(from, *buffer)?;
                        self.buffers.set(*buffer, data)?;
                    }
                }
                // Exit data always releases the device copies.
                let holders = self.dm.lock().remove(*buffer);
                for holder in holders {
                    if holder != HEAD_NODE {
                        self.events.delete(holder, *buffer)?;
                    }
                }
                Ok(())
            }
            TaskKind::Host { .. } => {
                if let Some(f) = self.host_fns.get(&tid) {
                    f(self.buffers);
                }
                Ok(())
            }
        }
    }
}

/// The [`ExecutionBackend`] face of the head worker pool: `launch` enqueues
/// a task for the pool, `await_completions` blocks on the next completion
/// and drains any others that finished in the meantime.
struct HeadPool {
    task_tx: Sender<(usize, NodeId)>,
    done_rx: Receiver<(usize, OmpcResult<()>)>,
}

impl ExecutionBackend for HeadPool {
    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()> {
        self.task_tx
            .send((task, node))
            .map_err(|_| OmpcError::Internal("head worker pool terminated early".to_string()))
    }

    fn await_completions(&mut self) -> OmpcResult<Vec<usize>> {
        let (tid, result) = self
            .done_rx
            .recv()
            .map_err(|_| OmpcError::Internal("head worker pool disappeared".to_string()))?;
        result?;
        let mut finished = vec![tid];
        while let Ok((tid, result)) = self.done_rx.try_recv() {
            result?;
            finished.push(tid);
        }
        Ok(finished)
    }
}
