//! The threaded execution backend: real worker-node threads driven through
//! the `ompc-mpi` event system.
//!
//! Tasks are executed by a **long-lived pool of head worker threads** (the
//! analogue of libomptarget's hidden helper threads) owned by
//! [`crate::cluster::ClusterDevice`] — see [`HeadWorkerPool`]. The pool is
//! created lazily, sized `min(head_worker_threads, window, tasks)` for the
//! largest region seen so far, reused across region executions, and drained
//! when the device shuts down; per-region spawn/join churn is gone.
//! [`RuntimeCore`] decides *which* task is dispatched *when* — bounded by
//! the configured in-flight window — and the pool performs each task's data
//! movement and kernel execution: input forwarding planned by the
//! [`DataManager`], worker-to-worker exchanges, kernel execution events, and
//! write-invalidation. Because the window is a property of the core rather
//! than of the pool, more tasks can be in flight than there are blocked
//! threads, which is exactly the pipelined dispatch the paper proposes as
//! the fix for its §7 bottleneck.
//!
//! Every event a pool thread issues produces a typed reply
//! ([`crate::protocol::EventReply`]): worker-side handler failures come back
//! as [`OmpcError::RemoteEvent`] values naming the origin node and event,
//! and are threaded through the core's completion stream as
//! [`TaskEvent::Failed`] — the core propagates genuine errors and restarts
//! tasks whose failure is collateral damage of an injected node death.
//!
//! Fault tolerance (paper §3.1): when the failure injector kills a node,
//! the backend kills the worker's event loop **for real** — the node stops
//! executing events and refuses every later one with an error reply — and
//! the [`DataManager`] excommunicates it. A genuine task failure on a live
//! node trips the pool's cancellation flag so tasks already queued behind
//! it stop executing before the error propagates.

use super::fault::LostBuffer;
use super::telemetry::{monotonic_us, Span, SpanPhase, Telemetry};
use super::{ExecutionBackend, RuntimeCore, RuntimePlan, TaskEvent};
use crate::buffer::BufferRegistry;
use crate::cluster::HostFn;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, TransferPlan, HEAD_NODE};
use crate::event::EventSystem;
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, KernelId, MapType, NodeId, OmpcError, OmpcResult, TaskId};
use crossbeam::channel::{Receiver, Sender};
use ompc_sched::Platform;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Message of the synthetic error reported for tasks skipped by the
/// cancellation flag; the pool driver recognizes it so it never masks the
/// root-cause error of the task that actually failed.
const CANCELLED_MSG: &str = "cancelled after an earlier task failure";

/// The kernel id injected task errors execute against: guaranteed to be
/// unregistered, so the worker's handler genuinely fails and the error
/// travels back through the event-reply channel.
pub(crate) const POISONED_KERNEL: KernelId = KernelId(usize::MAX);

#[derive(Debug, Clone)]
enum TransferState {
    InFlight,
    /// The transfer failed with this error; waiters receive a clone, so a
    /// failure caused by a killed source keeps its node attribution.
    Failed(OmpcError),
}

/// Tracks `(buffer, node)` input transfers that have been *planned* (the
/// data manager optimistically records the destination as a holder) but have
/// not yet completed on the wire. A concurrent reader of the same buffer on
/// the same node gets `plan_input == None` and must wait here instead of
/// executing against memory that has not arrived yet; if the transfer fails,
/// waiters get the transfer's error instead of silently computing on
/// missing data.
#[derive(Default)]
struct TransferGate {
    transfers: Mutex<HashMap<(u64, NodeId), TransferState>>,
    done: parking_lot::Condvar,
}

impl TransferGate {
    fn finish(&self, buffer: BufferId, node: NodeId, outcome: Result<(), OmpcError>) {
        {
            let mut transfers = self.transfers.lock();
            match outcome {
                Ok(()) => {
                    transfers.remove(&(buffer.0, node));
                }
                Err(error) => {
                    transfers.insert((buffer.0, node), TransferState::Failed(error));
                }
            }
        }
        self.done.notify_all();
    }

    /// Block until the transfer of `buffer` to `node` has landed; error out
    /// (with the transfer's own error) if it failed.
    fn wait_until_present(&self, buffer: BufferId, node: NodeId) -> OmpcResult<()> {
        let mut transfers = self.transfers.lock();
        loop {
            match transfers.get(&(buffer.0, node)) {
                None => return Ok(()),
                Some(TransferState::Failed(error)) => return Err(error.clone()),
                Some(TransferState::InFlight) => self.done.wait(&mut transfers),
            }
        }
    }
}

/// Everything a pool thread needs to execute tasks of one region: the
/// device's communication machinery plus the per-region graph, host tasks,
/// transfer gate, and cancellation flag. Shared with the long-lived pool
/// through an `Arc`, which is what lets the pool outlive any single region
/// execution.
pub(crate) struct RegionContext {
    events: Arc<EventSystem>,
    buffers: Arc<BufferRegistry>,
    dm: Arc<Mutex<DataManager>>,
    /// The region epoch this execution runs under: every transfer the
    /// backend plans or records lands in this namespace of the shared
    /// [`DataManager`] transfer log, so concurrently admitted regions never
    /// interleave records.
    region: u64,
    graph: Arc<RegionGraph>,
    host_fns: HashMap<usize, HostFn>,
    config: OmpcConfig,
    serial_inputs: bool,
    telemetry: Arc<Telemetry>,
    transfers: TransferGate,
    /// The device-wide condvar paired with `dm`'s mutex: notified whenever
    /// an asynchronous data-path job (async enter-data, cross-region
    /// prefetch, lazy flush) resolves an in-flight entry in the
    /// [`DataManager`]. First readers of in-flight data block here instead
    /// of re-submitting the transfer.
    inflight_cv: Arc<parking_lot::Condvar>,
    /// Set when a task fails on a live node: tasks still queued in the head
    /// pool stop executing instead of landing side effects after the run
    /// has already failed.
    cancelled: AtomicBool,
}

impl RegionContext {
    /// Run one task end to end and report its outcome, honouring the
    /// cancellation flag and classifying failures for the core.
    fn run(&self, task: usize, node: NodeId) -> OmpcResult<()> {
        if self.cancelled.load(Ordering::SeqCst) {
            return Err(OmpcError::Internal(CANCELLED_MSG.to_string()));
        }
        let res = self.run_task(task, node);
        if let Err(error) = &res {
            // Trip the cancellation flag only for *genuine* failures: not
            // for tasks on a node the injector killed, and not for errors
            // blamed on a killed peer — those are stale, the core restarts
            // the task, and cancelling the run for them would wedge it.
            let dm = self.dm.lock();
            let own_node_dead = node != HEAD_NODE && dm.is_failed(node);
            let blamed_dead = error.origin_node().is_some_and(|n| dm.is_failed(n));
            if !own_node_dead && !blamed_dead {
                self.cancelled.store(true, Ordering::SeqCst);
            }
        }
        res
    }

    /// Carry out one planned input forward and resolve its gate entry.
    /// Records a `Serialize` span for the host-side payload clone and a
    /// `Send` span for the wire round-trip, attributed to `task`.
    fn perform_transfer(&self, plan: TransferPlan, node: NodeId, task: usize) -> OmpcResult<()> {
        let tel = &self.telemetry;
        let moved = if plan.from == HEAD_NODE {
            let t0 = tel.start();
            let data = self.buffers.get(plan.buffer);
            if tel.spans_enabled() {
                let bytes = data.as_ref().map(|d| d.len() as u64).unwrap_or(0);
                tel.record(
                    Span::new(SpanPhase::Serialize, HEAD_NODE, t0, monotonic_us())
                        .task(task)
                        .attempt(tel.attempt(task))
                        .bytes(bytes)
                        .detail("miss"),
                );
            }
            let t0 = tel.start();
            let bytes = data.as_ref().map(|d| d.len() as u64).unwrap_or(0);
            let sent = data.and_then(|data| self.events.submit(node, plan.buffer, data));
            if sent.is_ok() && tel.spans_enabled() {
                tel.record(
                    Span::new(SpanPhase::Send, HEAD_NODE, t0, monotonic_us())
                        .task(task)
                        .attempt(tel.attempt(task))
                        .bytes(bytes),
                );
            }
            sent
        } else {
            let t0 = tel.start();
            let moved = self.events.exchange(plan.from, node, plan.buffer);
            if tel.spans_enabled() {
                if let Ok(bytes) = &moved {
                    tel.record(
                        Span::new(SpanPhase::Send, node, t0, monotonic_us())
                            .task(task)
                            .attempt(tel.attempt(task))
                            .bytes(*bytes)
                            .from(plan.from)
                            .detail("worker forward"),
                    );
                }
            }
            moved.map(|_| ())
        };
        if moved.is_err() {
            // The bytes never arrived: roll back the holder `plan_input`
            // recorded optimistically so no later reader skips the transfer.
            self.dm.lock().forget_replica(plan.buffer, node);
        }
        self.transfers.finish(plan.buffer, node, moved.clone());
        moved
    }

    /// Record an `EnterData` span for a completed enter-data movement
    /// covering only the wire time (`t0` → now); the head-side payload
    /// build gets its own `Serialize` span at the call site.
    fn record_enter_data(
        &self,
        moved: &OmpcResult<()>,
        tid: usize,
        buffer: BufferId,
        node: NodeId,
        from: NodeId,
        t0: u64,
    ) {
        if moved.is_ok() && self.telemetry.spans_enabled() {
            let bytes = self.buffers.size_of(buffer).unwrap_or(0) as u64;
            self.telemetry.record(
                Span::new(SpanPhase::EnterData, node, t0, monotonic_us())
                    .task(tid)
                    .bytes(bytes)
                    .from(from)
                    .detail("EnterData"),
            );
        }
    }

    /// Block until a device-level asynchronous transfer of `buffer` towards
    /// `node` (booked in the [`DataManager`]'s in-flight table by an async
    /// enter-data or cross-region prefetch) resolves, recording an
    /// `AwaitInflight` span for the blocked time. Returns `Ok(true)` when
    /// the copy is resident, `Ok(false)` when the booking was rolled back
    /// with no stored error (e.g. the destination died and recovery already
    /// consumed the failure) — the caller falls back to a synchronous
    /// forward — and the transfer's own error if it failed.
    fn await_device_inflight(
        &self,
        buffer: BufferId,
        node: NodeId,
        task: usize,
    ) -> OmpcResult<bool> {
        use crate::data_manager::TransferState as DmState;
        let tel = &self.telemetry;
        let t0 = tel.start();
        let outcome = {
            let mut dm = self.dm.lock();
            loop {
                match dm.transfer_state(buffer, node) {
                    DmState::Resident => break Ok(true),
                    DmState::InFlight(_) => self.inflight_cv.wait(&mut dm),
                    DmState::Invalid => match dm.take_inflight_error(buffer, node) {
                        Some(error) => break Err(error),
                        None => break Ok(false),
                    },
                }
            }
        };
        if tel.spans_enabled() {
            tel.record(
                Span::new(SpanPhase::AwaitInflight, node, t0, monotonic_us())
                    .task(task)
                    .attempt(tel.attempt(task))
                    .detail("first reader awaits async transfer"),
            );
        }
        outcome
    }

    /// Resolve a planned-but-unperformed forward as failed so co-located
    /// waiters error out instead of blocking forever.
    fn abandon_transfer(&self, plan: &TransferPlan, node: NodeId) {
        self.dm.lock().forget_replica(plan.buffer, node);
        self.transfers.finish(
            plan.buffer,
            node,
            Err(OmpcError::Internal(format!(
                "input forwarding of {} to node {node} abandoned after an earlier failure",
                plan.buffer
            ))),
        );
    }

    /// Execute one task: plan and perform its data movement through the
    /// data manager, then run the kernel (or the host body, or the data
    /// movement itself for enter/exit data tasks).
    fn run_task(&self, tid: usize, node: NodeId) -> OmpcResult<()> {
        if node != HEAD_NODE && self.dm.lock().is_failed(node) {
            // The failure injector killed this node: the task becomes a
            // no-op whose completion the core discards as stale and
            // restarts on a survivor.
            return Ok(());
        }
        let task = self.graph.task(TaskId(tid));
        match &task.kind {
            TaskKind::EnterData { buffer, map } => {
                if node == HEAD_NODE {
                    return Ok(());
                }
                match map {
                    MapType::To | MapType::ToFrom | MapType::ToResident => {
                        // Residency-aware distribution: source from the
                        // current latest holder — a submit from the host
                        // for a fresh mapping, a worker-to-worker forward
                        // when the latest version lives on another worker,
                        // and **no transfer at all** when the buffer is
                        // already present on this node (OpenMP present-table
                        // semantics: re-entering mapped data does not copy).
                        //
                        // An async enter-data or cross-region prefetch may
                        // already have the bytes on the wire towards this
                        // node: the first reader awaits that transfer
                        // instead of re-submitting. A rolled-back booking
                        // falls through to the synchronous plan below.
                        if matches!(
                            self.dm.lock().transfer_state(*buffer, node),
                            crate::data_manager::TransferState::InFlight(_)
                        ) {
                            self.await_device_inflight(*buffer, node, tid)?;
                        }
                        let plan = self.dm.lock().plan_input_as_in(
                            self.region,
                            *buffer,
                            node,
                            crate::data_manager::TransferReason::EnterData,
                        )?;
                        if let Some(plan) = plan {
                            let moved = if plan.from == HEAD_NODE {
                                // The host-side payload build is the
                                // serialization cost; only the submit that
                                // follows is wire time, so the two get
                                // separate spans (mirroring the MPI
                                // backend's payload-cache accounting).
                                let t0 = self.telemetry.start();
                                let data = self.buffers.get(*buffer);
                                if self.telemetry.spans_enabled() {
                                    let bytes = data.as_ref().map(|d| d.len() as u64).unwrap_or(0);
                                    self.telemetry.record(
                                        Span::new(
                                            SpanPhase::Serialize,
                                            HEAD_NODE,
                                            t0,
                                            monotonic_us(),
                                        )
                                        .task(tid)
                                        .bytes(bytes)
                                        .detail("miss"),
                                    );
                                }
                                let t0 = self.telemetry.start();
                                let moved =
                                    data.and_then(|data| self.events.submit(node, *buffer, data));
                                self.record_enter_data(&moved, tid, *buffer, node, plan.from, t0);
                                moved
                            } else {
                                let t0 = self.telemetry.start();
                                let moved =
                                    self.events.exchange(plan.from, node, *buffer).map(|_| ());
                                self.record_enter_data(&moved, tid, *buffer, node, plan.from, t0);
                                moved
                            };
                            if moved.is_err() {
                                self.dm.lock().forget_replica(*buffer, node);
                            }
                            moved?;
                        }
                    }
                    MapType::Alloc => {
                        if !self.dm.lock().is_present(*buffer, node) {
                            let size = self.buffers.size_of(*buffer)?;
                            self.events.alloc(node, *buffer, size)?;
                            self.dm.lock().record_replica(*buffer, node);
                        }
                    }
                    MapType::From | MapType::Release => {}
                }
                Ok(())
            }
            TaskKind::Target { kernel, .. } => {
                // Injected task error (fault plan): execute a deliberately
                // unregistered kernel so a genuine worker-side handler
                // error exercises the event-reply path end to end.
                let kernel = if self.config.fault_plan.has_task_error(tid) {
                    POISONED_KERNEL
                } else {
                    *kernel
                };
                let buffer_list: Vec<BufferId> =
                    task.dependences.iter().map(|d| d.buffer).collect();
                // Plan every input forward first, under one gate acquisition
                // per dependence, so a concurrent same-node reader that sees
                // `plan_input == None` (we are already recorded as a holder)
                // is guaranteed to find our in-flight entry to wait on.
                let mut own: Vec<TransferPlan> = Vec::new();
                let mut awaited: Vec<BufferId> = Vec::new();
                let mut inflight: Vec<BufferId> = Vec::new();
                for dep in &task.dependences {
                    if dep.dep_type.reads() {
                        let mut gate = self.transfers.transfers.lock();
                        // Bind the plan before matching: a `match` scrutinee
                        // keeps its temporary `dm` guard alive for every arm,
                        // and the `None` arm locks `dm` again.
                        let plan = self.dm.lock().plan_input_in(self.region, dep.buffer, node);
                        let plan = match plan {
                            Ok(plan) => plan,
                            Err(e) => {
                                // A rejected plan (concurrent first-touch
                                // guard) aborts the task; resolve the
                                // forwards already announced so co-located
                                // waiters error out instead of blocking.
                                drop(gate);
                                for plan in own {
                                    self.abandon_transfer(&plan, node);
                                }
                                return Err(e);
                            }
                        };
                        match plan {
                            Some(plan) => {
                                gate.insert((dep.buffer.0, node), TransferState::InFlight);
                                own.push(plan);
                            }
                            None => {
                                if gate.contains_key(&(dep.buffer.0, node)) {
                                    awaited.push(dep.buffer);
                                } else if matches!(
                                    self.dm.lock().transfer_state(dep.buffer, node),
                                    crate::data_manager::TransferState::InFlight(_)
                                ) {
                                    // `plan_input == None` because an async
                                    // enter-data / prefetch already booked
                                    // this node as a holder: await the wire
                                    // instead of re-submitting.
                                    inflight.push(dep.buffer);
                                }
                            }
                        }
                    }
                }
                // Write-only outputs: make sure storage exists on the
                // executing node. Any failure here must resolve the forwards
                // announced above, or co-located waiters would block forever.
                let allocated: OmpcResult<()> =
                    task.dependences.iter().filter(|dep| !dep.dep_type.reads()).try_for_each(
                        |dep| {
                            let present = self.dm.lock().is_present(dep.buffer, node);
                            if !present {
                                let size = self.buffers.size_of(dep.buffer)?;
                                self.events.alloc(node, dep.buffer, size)?;
                                self.dm.lock().record_replica(dep.buffer, node);
                            }
                            Ok(())
                        },
                    );
                if let Err(e) = allocated {
                    for plan in own {
                        self.abandon_transfer(&plan, node);
                    }
                    return Err(e);
                }
                // Perform our own forwards: overlapped by default (the
                // pipelined dispatch loop), strictly in dependence order
                // when `serial_input_transfers` restores the libomptarget
                // behaviour.
                let moved: OmpcResult<()> = if self.serial_inputs || own.len() <= 1 {
                    let mut result = Ok(());
                    let mut own = own.into_iter();
                    for plan in own.by_ref() {
                        result = self.perform_transfer(plan, node, tid);
                        if result.is_err() {
                            break;
                        }
                    }
                    // Mark any unperformed forwards failed so co-located
                    // waiters error out instead of blocking forever.
                    for plan in own {
                        self.abandon_transfer(&plan, node);
                    }
                    result
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = own
                            .into_iter()
                            .map(|plan| scope.spawn(move || self.perform_transfer(plan, node, tid)))
                            .collect();
                        let mut result = Ok(());
                        for handle in handles {
                            let moved = handle.join().expect("input transfer thread panicked");
                            if result.is_ok() {
                                result = moved;
                            }
                        }
                        result
                    })
                };
                moved?;
                // Inputs forwarded by co-located siblings: execute only once
                // their copies have fully arrived.
                for buffer in awaited {
                    self.transfers.wait_until_present(buffer, node)?;
                }
                // Inputs still on the wire from the device's async data
                // path: first use blocks here. A rolled-back booking (the
                // async job abandoned the transfer with its error already
                // consumed) falls back to a synchronous forward, with the
                // same gate discipline as the planning loop above.
                for buffer in inflight {
                    if !self.await_device_inflight(buffer, node, tid)? {
                        let plan = {
                            let mut gate = self.transfers.transfers.lock();
                            let plan = self.dm.lock().plan_input_in(self.region, buffer, node)?;
                            if plan.is_some() {
                                gate.insert((buffer.0, node), TransferState::InFlight);
                            }
                            plan
                        };
                        if let Some(plan) = plan {
                            self.perform_transfer(plan, node, tid)?;
                        }
                    }
                }
                let timed = self.telemetry.spans_enabled();
                let stamps = self.events.execute_timed(node, kernel, buffer_list, timed)?;
                if let Some(s) = stamps {
                    let tel = &self.telemetry;
                    let attempt = tel.attempt(tid);
                    tel.record(
                        Span::new(SpanPhase::WorkerRecv, node, s.recv_us, s.recv_us)
                            .task(tid)
                            .attempt(attempt),
                    );
                    tel.record(
                        Span::new(SpanPhase::WorkerAwait, node, s.recv_us, s.deps_us)
                            .task(tid)
                            .attempt(attempt),
                    );
                    tel.record(
                        Span::new(SpanPhase::Compute, node, s.exec_start_us, s.exec_end_us)
                            .task(tid)
                            .attempt(attempt),
                    );
                }
                for dep in &task.dependences {
                    if dep.dep_type.writes() {
                        let stale = self.dm.lock().record_write(dep.buffer, node);
                        for stale_node in stale {
                            if stale_node != HEAD_NODE && !self.dm.lock().is_failed(stale_node) {
                                self.events.delete(stale_node, dep.buffer)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            TaskKind::ExitData { buffer, map } => {
                let mut keep_resident = false;
                if map.copies_from_device() {
                    let (from, pinned_holds_data, any_failures) = {
                        let dm = self.dm.lock();
                        keep_resident = dm.is_resident(*buffer);
                        let present = dm.is_present(*buffer, node);
                        (dm.retrieve_source(*buffer), present, dm.has_failures())
                    };
                    if let Some(from) = from {
                        // §4.4 consistency: the exit task is pinned to its
                        // last target producer, so in a failure-free run the
                        // assignment record must agree with the data
                        // manager's holder — the retrieval source is the
                        // pinned node (or the pinned node at least holds the
                        // latest version it read).
                        debug_assert!(
                            any_failures || from == node || pinned_holds_data,
                            "exit-data task pinned to node {node} but the latest copy of \
                             {buffer} is only on node {from}"
                        );
                        // Nothing is committed until the bytes land: a
                        // failed retrieval leaves the location state
                        // truthful, so recovery re-sources and retries.
                        let t0 = self.telemetry.start();
                        let data = self.events.retrieve(from, *buffer)?;
                        let bytes = data.len() as u64;
                        self.buffers.set(*buffer, data)?;
                        {
                            let mut dm = self.dm.lock();
                            // A kernel may have resized the device copy; the
                            // observed size keeps this and later transfer-log
                            // entries truthful.
                            dm.observe_size(*buffer, bytes);
                            dm.record_retrieve_in(self.region, *buffer);
                        }
                        if self.telemetry.spans_enabled() {
                            self.telemetry.record(
                                Span::new(SpanPhase::ExitData, HEAD_NODE, t0, monotonic_us())
                                    .task(tid)
                                    .bytes(bytes)
                                    .from(from)
                                    .detail("ExitData"),
                            );
                        }
                    }
                }
                if keep_resident {
                    // `map(from:)` on a keep-resident buffer is a flush:
                    // the host copy is now current, the device copies stay
                    // mapped for later regions.
                    Ok(())
                } else {
                    // Otherwise exit data releases the device copies.
                    super::release_device_copies(&self.dm, &self.events, *buffer)
                }
            }
            TaskKind::Host { .. } => {
                // A host task reads through the head's buffer registry, so
                // every read buffer whose latest version lives on a worker
                // is flushed home first — the host-side analogue of the
                // input transfers a target task plans. Graph dependences
                // order this after the producing task's completion.
                for dep in &task.dependences {
                    if !dep.dep_type.reads() {
                        continue;
                    }
                    let from = {
                        let dm = self.dm.lock();
                        // A host-only buffer (never mapped to the device)
                        // has no residency entry and nothing to flush.
                        if !dm.is_registered(dep.buffer) {
                            continue;
                        }
                        dm.retrieve_source(dep.buffer)
                    };
                    if let Some(from) = from {
                        let t0 = self.telemetry.start();
                        let data = self.events.retrieve(from, dep.buffer)?;
                        let bytes = data.len() as u64;
                        self.buffers.set(dep.buffer, data)?;
                        {
                            let mut dm = self.dm.lock();
                            dm.observe_size(dep.buffer, bytes);
                            dm.record_retrieve_in(self.region, dep.buffer);
                        }
                        if self.telemetry.spans_enabled() {
                            self.telemetry.record(
                                Span::new(SpanPhase::HostFlush, HEAD_NODE, t0, monotonic_us())
                                    .task(tid)
                                    .bytes(bytes)
                                    .from(from)
                                    .detail("host task input"),
                            );
                        }
                    }
                }
                if let Some(f) = self.host_fns.get(&tid) {
                    f(&self.buffers);
                }
                Ok(())
            }
        }
    }
}

/// One unit of work submitted to the long-lived pool. Region tasks and the
/// device's asynchronous data-path jobs (async enter-data, cross-region
/// prefetch, double-buffered flushes) are both just closures; a task job
/// carries its own `catch_unwind` + completion send inside the closure so
/// the driver always receives exactly one outcome per launch.
struct PoolJob(Box<dyn FnOnce() + Send>);

/// Body of one head pool thread: drain jobs until the channel closes
/// (device shutdown) or — with an idle timeout configured — no work arrived
/// for that long. The exit protocol decrements the alive count *before* the
/// final non-blocking drain, so a job enqueued concurrently with the
/// timeout is either picked up here or observed by `submit`'s respawn
/// check, never stranded.
fn pool_thread_main(
    rx: Receiver<PoolJob>,
    alive: Arc<std::sync::atomic::AtomicUsize>,
    idle_timeout: Option<std::time::Duration>,
) {
    loop {
        let job = match idle_timeout {
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(job) => job,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    alive.fetch_sub(1, Ordering::SeqCst);
                    match rx.try_recv() {
                        // A job raced the reaper: take it and stay alive.
                        Ok(job) => {
                            alive.fetch_add(1, Ordering::SeqCst);
                            job
                        }
                        Err(_) => return,
                    }
                }
            },
        };
        // A panicking job (e.g. a debug assertion in the data layer) must
        // not take the pool thread down with it — the alive count would go
        // stale and a later `ensure_threads` would under-spawn.
        let PoolJob(body) = job;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    }
    alive.fetch_sub(1, Ordering::SeqCst);
}

struct PoolState {
    /// `None` once the pool has been drained; submissions fail from then on.
    job_tx: Option<Sender<PoolJob>>,
    /// Kept only to clone into newly spawned threads.
    job_rx: Receiver<PoolJob>,
    handles: Vec<JoinHandle<()>>,
    /// Monotonic counter for thread names (threads reaped by the idle
    /// timeout may be replaced, so names must not collide with the dead).
    spawned: usize,
}

/// The long-lived head worker pool, owned by
/// [`crate::cluster::ClusterDevice`] and shared by every region execution
/// of the device's lifetime.
///
/// Threads are spawned lazily: each region asks for
/// `min(head_worker_threads, window, tasks)` threads and the pool grows to
/// the largest such request seen so far — a small region never pays for 48
/// idle threads, and repeated region executions never re-spawn a pool.
/// With [`crate::config::OmpcConfig::pool_idle_timeout_ms`] set, a thread
/// that receives no work for that long exits, so the pool also *shrinks*
/// below its high-water mark on devices alternating huge and tiny regions
/// (and re-grows lazily on the next demanding region). On
/// [`HeadWorkerPool::drain`] (device shutdown / drop) the job channel
/// closes, in-flight jobs finish, and every thread is joined.
pub struct HeadWorkerPool {
    state: Mutex<PoolState>,
    /// Number of threads currently alive (spawned and not yet exited).
    alive: Arc<std::sync::atomic::AtomicUsize>,
    /// Idle timeout after which a pool thread exits; `None` disables the
    /// reaper (the pool only ever grows).
    idle_timeout: Option<std::time::Duration>,
}

impl Default for HeadWorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl HeadWorkerPool {
    /// Create an empty pool; threads are spawned on first use and live for
    /// the pool's lifetime.
    pub fn new() -> Self {
        Self::with_idle_timeout(None)
    }

    /// Create an empty pool whose idle threads exit after `idle_timeout`
    /// of receiving no work (`None` disables the reaper).
    pub fn with_idle_timeout(idle_timeout: Option<std::time::Duration>) -> Self {
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<PoolJob>();
        Self {
            state: Mutex::new(PoolState {
                job_tx: Some(job_tx),
                job_rx,
                handles: Vec::new(),
                spawned: 0,
            }),
            alive: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            idle_timeout,
        }
    }

    /// Number of threads currently alive in the pool.
    pub fn threads(&self) -> usize {
        self.alive.load(Ordering::SeqCst)
    }

    /// Grow the pool to at least `needed` alive threads (no-op when already
    /// large enough or after [`HeadWorkerPool::drain`]).
    fn ensure_threads(&self, needed: usize) {
        let mut state = self.state.lock();
        if state.job_tx.is_none() {
            return;
        }
        // Handles of threads the idle reaper already retired are spent.
        state.handles.retain(|h| !h.is_finished());
        while self.alive.load(Ordering::SeqCst) < needed {
            let rx = state.job_rx.clone();
            let i = state.spawned;
            state.spawned += 1;
            let alive = Arc::clone(&self.alive);
            let idle_timeout = self.idle_timeout;
            alive.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("ompc-head-{i}"))
                .spawn(move || pool_thread_main(rx, alive, idle_timeout))
                .expect("failed to spawn head worker thread");
            state.handles.push(handle);
        }
    }

    /// Submit one closure job; fails if the pool has been drained. If the
    /// pool is empty — never sized by a region, or reaped idle since — one
    /// thread is spawned so the job cannot strand in the queue. (SeqCst
    /// ordering with the reaper's exit protocol: if this load sees an alive
    /// thread, that thread's final non-blocking drain of the queue happens
    /// after our enqueue, so it picks the job up; if it sees none, we
    /// respawn.)
    pub(crate) fn submit_closure(&self, body: Box<dyn FnOnce() + Send>) -> OmpcResult<()> {
        let tx =
            self.state.lock().job_tx.clone().ok_or_else(|| {
                OmpcError::Internal("head worker pool already drained".to_string())
            })?;
        tx.send(PoolJob(body))
            .map_err(|_| OmpcError::Internal("head worker pool terminated early".to_string()))?;
        if self.alive.load(Ordering::SeqCst) == 0 {
            self.ensure_threads(1);
        }
        Ok(())
    }

    /// Close the job channel, let in-flight jobs finish, and join every
    /// thread. Idempotent; called on device shutdown.
    pub fn drain(&self) {
        let (tx, handles) = {
            let mut state = self.state.lock();
            (state.job_tx.take(), std::mem::take(&mut state.handles))
        };
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for HeadWorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Executes a region graph on the real (threaded) cluster through the
/// device's long-lived [`HeadWorkerPool`].
pub struct ThreadedBackend<'a> {
    ctx: Arc<RegionContext>,
    pool: &'a HeadWorkerPool,
}

impl<'a> ThreadedBackend<'a> {
    /// Build a backend over the device's communication machinery and pool
    /// for one region execution.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pool: &'a HeadWorkerPool,
        events: Arc<EventSystem>,
        buffers: Arc<BufferRegistry>,
        dm: Arc<Mutex<DataManager>>,
        region: u64,
        graph: Arc<RegionGraph>,
        host_fns: HashMap<usize, HostFn>,
        config: &OmpcConfig,
        telemetry: Arc<Telemetry>,
        inflight_cv: Arc<parking_lot::Condvar>,
    ) -> Self {
        Self {
            ctx: Arc::new(RegionContext {
                events,
                buffers,
                dm,
                region,
                graph,
                host_fns,
                serial_inputs: config.serial_input_transfers,
                config: config.clone(),
                telemetry,
                transfers: TransferGate::default(),
                inflight_cv,
                cancelled: AtomicBool::new(false),
            }),
            pool,
        }
    }

    /// Whether the pool's cancellation flag tripped (a task failed on a
    /// live node while others were still queued).
    pub fn was_cancelled(&self) -> bool {
        self.ctx.cancelled.load(Ordering::SeqCst)
    }

    /// Drive `core` to completion: size the long-lived pool for this
    /// region, feed it the tasks the core dispatches, and report typed
    /// completion events back. After the run (successful or not) every
    /// outstanding job is drained so no stale work bleeds into the next
    /// region execution.
    pub fn execute(&self, core: &mut RuntimeCore) -> OmpcResult<()> {
        self.ctx.config.fault_plan.validate_task_errors(self.ctx.graph.len())?;
        let threads = self
            .ctx
            .config
            .head_worker_threads
            .max(1)
            .min(core.window())
            .min(self.ctx.graph.len())
            .max(1);
        self.pool.ensure_threads(threads);
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, OmpcResult<()>)>();
        let mut driver = HeadPool {
            ctx: &self.ctx,
            pool: self.pool,
            done_tx,
            done_rx,
            outstanding: 0,
            cancelled_held: Vec::new(),
            root_cause_reported: false,
        };
        let result = core.execute(&mut driver);
        if result.is_err() {
            // Fast-fail everything still queued in the pool, then wait for
            // the stragglers so no side effect lands after we return.
            self.ctx.cancelled.store(true, Ordering::SeqCst);
        }
        driver.drain_outstanding();
        result
    }
}

/// The [`ExecutionBackend`] face of the head worker pool: `launch` enqueues
/// a task for the pool, `await_completions` blocks on the next outcome and
/// drains any others that arrived in the meantime. It also carries the
/// fault-tolerance hooks, which act on the backend's shared data manager
/// and kill the affected worker's event loop for real.
struct HeadPool<'p> {
    ctx: &'p Arc<RegionContext>,
    pool: &'p HeadWorkerPool,
    done_tx: Sender<(usize, OmpcResult<()>)>,
    done_rx: Receiver<(usize, OmpcResult<()>)>,
    /// Jobs launched but not yet reported back, so a failed run can drain
    /// the pool before returning.
    outstanding: usize,
    /// Tasks skipped by the cancellation flag whose synthetic error has
    /// been received but not yet reported to the core. They are released
    /// (as failures) only once the root-cause failure has been reported,
    /// so a synthetic error can never mask the real one — and never
    /// silently vanish, which would strand the task in flight.
    cancelled_held: Vec<(usize, OmpcError)>,
    /// Whether a real (non-synthetic) task failure has been reported to
    /// the core since the run started.
    root_cause_reported: bool,
}

impl HeadPool<'_> {
    /// Wait for every launched job to report back (used after a failed run;
    /// on a successful run nothing is outstanding).
    fn drain_outstanding(&mut self) {
        while self.outstanding > 0 {
            match self.done_rx.recv() {
                Ok(_) => self.outstanding -= 1,
                Err(_) => break,
            }
        }
    }
}

impl ExecutionBackend for HeadPool<'_> {
    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()> {
        self.outstanding += 1;
        let ctx = Arc::clone(self.ctx);
        let done = self.done_tx.clone();
        self.pool.submit_closure(Box::new(move || {
            // A panic must still produce an outcome, or the driver would
            // wait for this job forever.
            let res =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.run(task, node)))
                    .unwrap_or_else(|_| {
                        Err(OmpcError::Internal(format!(
                            "head pool thread panicked while executing task {task}"
                        )))
                    });
            // The driver may already have gone away (the run failed); the
            // outcome is then irrelevant.
            let _ = done.send((task, res));
        }))
    }

    /// Outcomes are forwarded to the core as typed [`TaskEvent`]s: the core
    /// owns the propagate-vs-restart policy. A synthetic cancellation
    /// error can race ahead of the failure that tripped the flag, so it is
    /// held back until the root-cause failure has been reported — the
    /// failing task's thread is guaranteed to report it after setting the
    /// flag — and only then released as a failure of its own, ordered
    /// after the root cause. It is never dropped: every launched task
    /// produces exactly one event, so the core can never be left waiting
    /// for a task the pool silently skipped (e.g. when the root cause
    /// turns out to be stale and the run continues).
    fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
        let mut events = Vec::new();
        loop {
            // Block only while there is nothing to report: a synthetic
            // cancellation alone is not reportable yet (it would mask the
            // root cause), so it keeps the loop blocking until the real
            // failure arrives; once any real event is in hand, drain
            // without blocking and let the core decide.
            let received = if events.is_empty() {
                match self.done_rx.recv() {
                    Ok(pair) => pair,
                    Err(_) => {
                        return Err(OmpcError::Internal(
                            "head worker pool disappeared".to_string(),
                        ));
                    }
                }
            } else {
                match self.done_rx.try_recv() {
                    Ok(pair) => pair,
                    Err(_) => break,
                }
            };
            self.outstanding -= 1;
            let (task, result) = received;
            match result {
                Ok(()) => events.push(TaskEvent::Completed(task)),
                Err(e) if matches!(&e, OmpcError::Internal(m) if m == CANCELLED_MSG) => {
                    if self.root_cause_reported {
                        // The root cause already reached the core in an
                        // earlier batch; this synthetic is immediately
                        // reportable (holding it could block forever if
                        // every remaining task is cancelled).
                        events.push(TaskEvent::Failed { task, error: e });
                    } else {
                        self.cancelled_held.push((task, e));
                    }
                }
                Err(error) => {
                    self.root_cause_reported = true;
                    events.push(TaskEvent::Failed { task, error });
                }
            }
        }
        // With the root cause on its way to the core, the held synthetic
        // failures are reportable: ordered after it, they can no longer
        // mask it. If the core classifies the root cause as stale and
        // keeps running, these propagate instead of hanging the dispatch
        // loop on tasks the pool never executed.
        if self.root_cause_reported {
            for (task, error) in self.cancelled_held.drain(..) {
                events.push(TaskEvent::Failed { task, error });
            }
        }
        Ok(events)
    }

    fn invalidate_node(&mut self, node: NodeId) -> Vec<LostBuffer> {
        let lost = self.ctx.dm.lock().fail_node(node);
        // Kill the worker's event loop for real: from now on the node
        // refuses every event with an error reply instead of executing it,
        // so peers observe the death instead of hanging — and no further
        // effects can land there.
        let _ = self.ctx.events.kill(node);
        lost.into_iter()
            .map(|buffer| LostBuffer {
                buffer,
                writers: self
                    .ctx
                    .graph
                    .tasks()
                    .iter()
                    .filter(|t| {
                        t.dependences.iter().any(|d| d.buffer == buffer && d.dep_type.writes())
                    })
                    .map(|t| t.id.0)
                    .collect(),
            })
            .collect()
    }

    fn replan(&mut self, alive_workers: &[NodeId]) -> Option<Vec<NodeId>> {
        let platform = Platform::cluster(alive_workers.len());
        // Re-pin against the post-failure residency view: the dead node's
        // copies are gone, so data tasks follow the surviving holders.
        let residency = self.ctx.dm.lock().latest_on_workers();
        Some(RuntimePlan::region_assignment_on(
            &self.ctx.graph,
            &self.ctx.buffers,
            &platform,
            &self.ctx.config,
            alive_workers,
            &residency,
        ))
    }
}
