//! The threaded execution backend: real worker-node threads driven through
//! the `ompc-mpi` event system.
//!
//! The backend owns a pool of head worker threads (the analogue of
//! libomptarget's hidden helper threads). [`RuntimeCore`] decides *which*
//! task is dispatched *when* — bounded by the configured in-flight window —
//! and the pool performs each task's data movement and kernel execution:
//! input forwarding planned by the [`DataManager`], worker-to-worker
//! exchanges, kernel execution events, and write-invalidation. Because the
//! window is a property of the core rather than of the pool, more tasks can
//! be in flight than there are blocked threads, which is exactly the
//! pipelined dispatch the paper proposes as the fix for its §7 bottleneck.
//!
//! Fault tolerance (paper §3.1) is honoured at the protocol layer: when
//! the failure injector kills a node, the node's OS thread stays alive —
//! real clusters cannot be simulated in-process by killing threads — but
//! the [`DataManager`] excommunicates it, tasks that run there become
//! no-ops whose completions the core discards as stale, and errors raised
//! on a dead node are swallowed instead of failing the run. A genuine task
//! failure on a *live* node trips the pool's cancellation flag so tasks
//! already queued behind it stop executing before the error propagates.

use super::fault::LostBuffer;
use super::{ExecutionBackend, RuntimeCore, RuntimePlan};
use crate::buffer::BufferRegistry;
use crate::cluster::HostFn;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, TransferPlan, HEAD_NODE};
use crate::event::EventSystem;
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, MapType, NodeId, OmpcError, OmpcResult, TaskId};
use crossbeam::channel::{Receiver, Sender};
use ompc_sched::Platform;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Message of the synthetic error reported for tasks skipped by the
/// cancellation flag; the pool driver recognizes it so it never masks the
/// root-cause error of the task that actually failed.
const CANCELLED_MSG: &str = "cancelled after an earlier task failure";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferState {
    InFlight,
    Failed,
}

/// Tracks `(buffer, node)` input transfers that have been *planned* (the
/// data manager optimistically records the destination as a holder) but have
/// not yet completed on the wire. A concurrent reader of the same buffer on
/// the same node gets `plan_input == None` and must wait here instead of
/// executing against memory that has not arrived yet; if the transfer fails,
/// waiters get an error instead of silently computing on missing data.
#[derive(Default)]
struct TransferGate {
    transfers: Mutex<HashMap<(u64, NodeId), TransferState>>,
    done: parking_lot::Condvar,
}

impl TransferGate {
    fn finish(&self, buffer: BufferId, node: NodeId, ok: bool) {
        {
            let mut transfers = self.transfers.lock();
            if ok {
                transfers.remove(&(buffer.0, node));
            } else {
                transfers.insert((buffer.0, node), TransferState::Failed);
            }
        }
        self.done.notify_all();
    }

    /// Block until the transfer of `buffer` to `node` has landed; error out
    /// if it failed.
    fn wait_until_present(&self, buffer: BufferId, node: NodeId) -> OmpcResult<()> {
        let mut transfers = self.transfers.lock();
        loop {
            match transfers.get(&(buffer.0, node)) {
                None => return Ok(()),
                Some(TransferState::Failed) => {
                    return Err(OmpcError::Internal(format!(
                        "input forwarding of {buffer} to node {node} failed"
                    )));
                }
                Some(TransferState::InFlight) => self.done.wait(&mut transfers),
            }
        }
    }
}

/// Executes a region graph on the real (threaded) cluster.
pub struct ThreadedBackend<'a> {
    events: &'a EventSystem,
    buffers: &'a BufferRegistry,
    dm: &'a Mutex<DataManager>,
    graph: &'a RegionGraph,
    host_fns: &'a HashMap<usize, HostFn>,
    config: OmpcConfig,
    pool_threads: usize,
    serial_inputs: bool,
    transfers: TransferGate,
    /// Set when a task fails on a live node: tasks still queued in the head
    /// pool stop executing instead of landing side effects after the run
    /// has already failed.
    cancelled: AtomicBool,
}

impl<'a> ThreadedBackend<'a> {
    /// Build a backend over the device's communication machinery for one
    /// region execution.
    pub fn new(
        events: &'a EventSystem,
        buffers: &'a BufferRegistry,
        dm: &'a Mutex<DataManager>,
        graph: &'a RegionGraph,
        host_fns: &'a HashMap<usize, HostFn>,
        config: &OmpcConfig,
    ) -> Self {
        Self {
            events,
            buffers,
            dm,
            graph,
            host_fns,
            pool_threads: config.head_worker_threads.max(1),
            serial_inputs: config.serial_input_transfers,
            config: config.clone(),
            transfers: TransferGate::default(),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Whether the pool's cancellation flag tripped (a task failed on a
    /// live node while others were still queued).
    pub fn was_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Drive `core` to completion: spawn the head worker pool, feed it the
    /// tasks the core dispatches, and report completions back.
    pub fn execute(&self, core: &mut RuntimeCore) -> OmpcResult<()> {
        std::thread::scope(|scope| {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, NodeId)>();
            let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, OmpcResult<()>)>();
            for i in 0..self.pool_threads {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("ompc-head-{i}"))
                    .spawn_scoped(scope, move || {
                        while let Ok((tid, node)) = task_rx.recv() {
                            // Cancellation: once a task has failed on a live
                            // node, queued tasks stop executing so no side
                            // effects land after the error propagates.
                            let res = if self.cancelled.load(Ordering::SeqCst) {
                                Err(OmpcError::Internal(CANCELLED_MSG.to_string()))
                            } else {
                                let res = self.run_task(tid, node);
                                if res.is_err() && !self.dm.lock().is_failed(node) {
                                    self.cancelled.store(true, Ordering::SeqCst);
                                }
                                res
                            };
                            if done_tx.send((tid, res)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn head worker thread");
            }
            drop(task_rx);
            drop(done_tx);
            let mut driver = HeadPool { backend: self, task_tx, done_rx, launched: HashMap::new() };
            core.execute(&mut driver)
            // The pool drains and joins when `driver` (and with it the task
            // sender) drops at the end of this scope.
        })
    }

    /// Carry out one planned input forward and resolve its gate entry.
    fn perform_transfer(&self, plan: TransferPlan, node: NodeId) -> OmpcResult<()> {
        let moved = if plan.from == HEAD_NODE {
            self.buffers
                .get(plan.buffer)
                .and_then(|data| self.events.submit(node, plan.buffer, data))
        } else {
            self.events.exchange(plan.from, node, plan.buffer).map(|_| ())
        };
        if moved.is_err() {
            // The bytes never arrived: roll back the holder `plan_input`
            // recorded optimistically so no later reader skips the transfer.
            self.dm.lock().forget_replica(plan.buffer, node);
        }
        self.transfers.finish(plan.buffer, node, moved.is_ok());
        moved
    }

    /// Execute one task: plan and perform its data movement through the
    /// data manager, then run the kernel (or the host body, or the data
    /// movement itself for enter/exit data tasks).
    fn run_task(&self, tid: usize, node: NodeId) -> OmpcResult<()> {
        if node != HEAD_NODE && self.dm.lock().is_failed(node) {
            // The failure injector killed this node: the task becomes a
            // no-op whose completion the core discards as stale and
            // restarts on a survivor.
            return Ok(());
        }
        let task = self.graph.task(TaskId(tid));
        match &task.kind {
            TaskKind::EnterData { buffer, map } => {
                if node == HEAD_NODE {
                    return Ok(());
                }
                match map {
                    MapType::To | MapType::ToFrom => {
                        let data = self.buffers.get(*buffer)?;
                        self.events.submit(node, *buffer, data)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::Alloc => {
                        let size = self.buffers.size_of(*buffer)?;
                        self.events.alloc(node, *buffer, size)?;
                        self.dm.lock().record_replica(*buffer, node);
                    }
                    MapType::From | MapType::Release => {}
                }
                Ok(())
            }
            TaskKind::Target { kernel, .. } => {
                let buffer_list: Vec<BufferId> =
                    task.dependences.iter().map(|d| d.buffer).collect();
                // Plan every input forward first, under one gate acquisition
                // per dependence, so a concurrent same-node reader that sees
                // `plan_input == None` (we are already recorded as a holder)
                // is guaranteed to find our in-flight entry to wait on.
                let mut own: Vec<TransferPlan> = Vec::new();
                let mut awaited: Vec<BufferId> = Vec::new();
                for dep in &task.dependences {
                    if dep.dep_type.reads() {
                        let mut gate = self.transfers.transfers.lock();
                        match self.dm.lock().plan_input(dep.buffer, node) {
                            Some(plan) => {
                                gate.insert((dep.buffer.0, node), TransferState::InFlight);
                                own.push(plan);
                            }
                            None => {
                                if gate.contains_key(&(dep.buffer.0, node)) {
                                    awaited.push(dep.buffer);
                                }
                            }
                        }
                    }
                }
                // Write-only outputs: make sure storage exists on the
                // executing node. Any failure here must resolve the forwards
                // announced above, or co-located waiters would block forever.
                let allocated: OmpcResult<()> =
                    task.dependences.iter().filter(|dep| !dep.dep_type.reads()).try_for_each(
                        |dep| {
                            let present = self.dm.lock().is_present(dep.buffer, node);
                            if !present {
                                let size = self.buffers.size_of(dep.buffer)?;
                                self.events.alloc(node, dep.buffer, size)?;
                                self.dm.lock().record_replica(dep.buffer, node);
                            }
                            Ok(())
                        },
                    );
                if let Err(e) = allocated {
                    for plan in own {
                        self.dm.lock().forget_replica(plan.buffer, node);
                        self.transfers.finish(plan.buffer, node, false);
                    }
                    return Err(e);
                }
                // Perform our own forwards: overlapped by default (the
                // pipelined dispatch loop), strictly in dependence order
                // when `serial_input_transfers` restores the libomptarget
                // behaviour.
                let moved: OmpcResult<()> = if self.serial_inputs || own.len() <= 1 {
                    let mut result = Ok(());
                    let mut own = own.into_iter();
                    for plan in own.by_ref() {
                        result = self.perform_transfer(plan, node);
                        if result.is_err() {
                            break;
                        }
                    }
                    // Mark any unperformed forwards failed so co-located
                    // waiters error out instead of blocking forever.
                    for plan in own {
                        self.dm.lock().forget_replica(plan.buffer, node);
                        self.transfers.finish(plan.buffer, node, false);
                    }
                    result
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = own
                            .into_iter()
                            .map(|plan| scope.spawn(move || self.perform_transfer(plan, node)))
                            .collect();
                        let mut result = Ok(());
                        for handle in handles {
                            let moved = handle.join().expect("input transfer thread panicked");
                            if result.is_ok() {
                                result = moved;
                            }
                        }
                        result
                    })
                };
                moved?;
                // Inputs forwarded by co-located siblings: execute only once
                // their copies have fully arrived.
                for buffer in awaited {
                    self.transfers.wait_until_present(buffer, node)?;
                }
                self.events.execute(node, *kernel, buffer_list)?;
                for dep in &task.dependences {
                    if dep.dep_type.writes() {
                        let stale = self.dm.lock().record_write(dep.buffer, node);
                        for stale_node in stale {
                            if stale_node != HEAD_NODE {
                                self.events.delete(stale_node, dep.buffer)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            TaskKind::ExitData { buffer, map } => {
                if map.copies_from_device() {
                    let (from, pinned_holds_data, any_failures) = {
                        let mut dm = self.dm.lock();
                        let present = dm.is_present(*buffer, node);
                        (dm.plan_retrieve(*buffer), present, dm.has_failures())
                    };
                    if let Some(from) = from {
                        // §4.4 consistency: the exit task is pinned to its
                        // last target producer, so in a failure-free run the
                        // assignment record must agree with the data
                        // manager's holder — the retrieval source is the
                        // pinned node (or the pinned node at least holds the
                        // latest version it read).
                        debug_assert!(
                            any_failures || from == node || pinned_holds_data,
                            "exit-data task pinned to node {node} but the latest copy of \
                             {buffer} is only on node {from}"
                        );
                        let data = self.events.retrieve(from, *buffer)?;
                        self.buffers.set(*buffer, data)?;
                    }
                }
                // Exit data always releases the device copies.
                let holders = self.dm.lock().remove(*buffer);
                for holder in holders {
                    if holder != HEAD_NODE {
                        self.events.delete(holder, *buffer)?;
                    }
                }
                Ok(())
            }
            TaskKind::Host { .. } => {
                if let Some(f) = self.host_fns.get(&tid) {
                    f(self.buffers);
                }
                Ok(())
            }
        }
    }
}

/// The [`ExecutionBackend`] face of the head worker pool: `launch` enqueues
/// a task for the pool, `await_completions` blocks on the next completion
/// and drains any others that finished in the meantime. It also carries the
/// fault-tolerance hooks, which act on the backend's shared data manager.
struct HeadPool<'p, 'a> {
    backend: &'p ThreadedBackend<'a>,
    task_tx: Sender<(usize, NodeId)>,
    done_rx: Receiver<(usize, OmpcResult<()>)>,
    /// Node each task was last sent to, for attributing pool errors to dead
    /// vs. live nodes.
    launched: HashMap<usize, NodeId>,
}

impl ExecutionBackend for HeadPool<'_, '_> {
    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()> {
        self.launched.insert(task, node);
        self.task_tx
            .send((task, node))
            .map_err(|_| OmpcError::Internal("head worker pool terminated early".to_string()))
    }

    /// Completions and dead-node errors (swallowed — the core discards the
    /// stale completion and restarts the task) are reported as finished;
    /// an error on a live node fails the run. A synthetic cancellation
    /// error can race ahead of the failure that tripped the flag, so it is
    /// held back until the root-cause error arrives (the failing task's
    /// thread is guaranteed to report it after setting the flag).
    fn await_completions(&mut self) -> OmpcResult<Vec<usize>> {
        let mut finished = Vec::new();
        let mut held_cancellation: Option<OmpcError> = None;
        loop {
            let received = if finished.is_empty() || held_cancellation.is_some() {
                match self.done_rx.recv() {
                    Ok(pair) => pair,
                    Err(_) => {
                        return Err(held_cancellation.unwrap_or_else(|| {
                            OmpcError::Internal("head worker pool disappeared".to_string())
                        }));
                    }
                }
            } else {
                match self.done_rx.try_recv() {
                    Ok(pair) => pair,
                    Err(_) => break,
                }
            };
            let (tid, result) = received;
            match result {
                Ok(()) => finished.push(tid),
                Err(e) => {
                    let node = self.launched.get(&tid).copied().unwrap_or(HEAD_NODE);
                    if node != HEAD_NODE && self.backend.dm.lock().is_failed(node) {
                        finished.push(tid);
                    } else if matches!(&e, OmpcError::Internal(m) if m == CANCELLED_MSG) {
                        held_cancellation = Some(e);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        Ok(finished)
    }

    fn invalidate_node(&mut self, node: NodeId) -> Vec<LostBuffer> {
        let lost = self.backend.dm.lock().fail_node(node);
        lost.into_iter()
            .map(|buffer| LostBuffer {
                buffer,
                writers: self
                    .backend
                    .graph
                    .tasks()
                    .iter()
                    .filter(|t| {
                        t.dependences.iter().any(|d| d.buffer == buffer && d.dep_type.writes())
                    })
                    .map(|t| t.id.0)
                    .collect(),
            })
            .collect()
    }

    fn replan(&mut self, alive_workers: &[NodeId]) -> Option<Vec<NodeId>> {
        let platform = Platform::cluster(alive_workers.len());
        Some(RuntimePlan::region_assignment_on(
            self.backend.graph,
            self.backend.buffers,
            &platform,
            &self.backend.config,
            alive_workers,
        ))
    }
}
