//! The simulated execution backend: the OMPC protocol modelled over the
//! `ompc-sim` discrete-event engine.
//!
//! The backend models exactly what the threaded backend does for real —
//! dispatch bookkeeping on the head node, input forwarding planned by the
//! same [`DataManager`] logic, per-event completion costs, sink retrieval
//! and shutdown — with compute durations and byte-transfer times supplied
//! by the virtual cluster. [`super::RuntimeCore`] makes every dispatch and window
//! decision, so the simulation reproduces the §7 head-node bottleneck when
//! (and only when) the configuration selects the legacy libomptarget-style
//! window.
//!
//! Unlike the pre-unification model, input transfers of one task are issued
//! **concurrently** by default (pipelined forwarding); the historical
//! one-at-a-time behaviour of a blocked head worker thread is preserved
//! behind [`crate::config::OmpcConfig::serial_input_transfers`].

use super::fault::LostBuffer;
use super::threaded::POISONED_KERNEL;
use super::{ExecutionBackend, RuntimePlan, TaskEvent};
use crate::config::{OmpcConfig, OverheadModel};
use crate::data_manager::{DataManager, TransferReason, TransferRecord, HEAD_NODE};
use crate::heartbeat::Millis;
use crate::model::WorkloadGraph;
use crate::types::{BufferId, NodeId, OmpcError, OmpcResult};
use ompc_sched::Platform;
use ompc_sim::{ClusterConfig, Completion, Engine, SimStats, SimTime, Token, Trace};
use std::collections::{HashMap, VecDeque};

const TOK_STARTUP: u64 = 1 << 48;
const TOK_SCHEDULE: u64 = 2 << 48;
const TOK_DISPATCH: u64 = 3 << 48;
const TOK_TRANSFER: u64 = 4 << 48;
const TOK_COMPUTE: u64 = 5 << 48;
const TOK_COMPLETE: u64 = 6 << 48;
const TOK_RETRIEVE: u64 = 7 << 48;
const TOK_SHUTDOWN: u64 = 8 << 48;
const TOK_STAGE: u64 = 9 << 48;
const TOK_MASK: u64 = (1 << 48) - 1;
/// Transfer-class tokens (`TOK_TRANSFER` / `TOK_STAGE`) carry both the
/// consumer task and the buffer that is moving, so an arrival can release
/// co-located waiters of that specific buffer.
const TOK_TASK_SHIFT: u64 = 24;
const TOK_SUB_MASK: u64 = (1 << TOK_TASK_SHIFT) - 1;

fn transfer_token(kind: u64, task: usize, buffer: u64) -> Token {
    kind | ((task as u64) << TOK_TASK_SHIFT) | buffer
}

/// The communication model the static scheduler should assume for a
/// simulated cluster: per-message cost = latency + software overhead,
/// bandwidth as configured.
pub fn sim_platform(cluster: &ClusterConfig) -> Platform {
    network_platform(&cluster.network, cluster.worker_nodes().max(1))
}

/// [`sim_platform`] over an explicit processor count — the shrunken-
/// platform variant fault recovery reschedules on.
fn network_platform(network: &ompc_sim::NetworkConfig, procs: usize) -> Platform {
    Platform::homogeneous(
        procs,
        (network.latency + network.per_message_overhead).as_secs_f64(),
        network.bandwidth_bytes_per_sec,
    )
}

/// Executes a workload graph on the virtual cluster.
pub struct SimBackend<'w> {
    engine: Engine,
    workload: &'w WorkloadGraph,
    overheads: OverheadModel,
    /// Node each task executes on, as told by the core at `launch` time —
    /// the core's assignment is the single source of truth.
    node_of: Vec<NodeId>,
    forwarding: bool,
    serial_inputs: bool,
    /// Retained configuration, consulted by the fault-recovery `replan`
    /// hook (scheduler choice).
    config: OmpcConfig,
    /// Forwarding decisions, driven by the same data-manager logic as the
    /// threaded backend; buffer `t` is task `t`'s output.
    dm: DataManager,
    pending_inputs: Vec<usize>,
    queued_inputs: Vec<VecDeque<(NodeId, u64, u64)>>,
    /// In-flight input transfers keyed by `(buffer, destination)`, each with
    /// the co-located tasks waiting for that same copy — the simulated
    /// analogue of the threaded backend's transfer gate: a consumer whose
    /// shared input is already on the wire must not start computing until
    /// the bytes arrive.
    arrivals: HashMap<(u64, NodeId), Vec<usize>>,
    phase_done: bool,
    retrievals_pending: usize,
    schedule_time: SimTime,
}

impl<'w> SimBackend<'w> {
    /// Build a backend for one simulated run of `workload` over `cluster`.
    pub fn new(
        workload: &'w WorkloadGraph,
        cluster: &ClusterConfig,
        config: &OmpcConfig,
        overheads: OverheadModel,
        trace: Trace,
    ) -> Self {
        let total = workload.len();
        assert!((total as u64) < TOK_SUB_MASK, "simulated workloads are limited to 2^24 tasks");
        let mut dm = DataManager::new();
        dm.begin_region();
        for t in 0..total {
            // Roots consume an input of their output size distributed from
            // the head node (enter data), so their buffer starts there.
            if workload.graph.predecessors(t).is_empty() && workload.output_bytes[t] > 0 {
                dm.register_host_buffer(BufferId(t as u64), workload.output_bytes[t]);
            }
        }
        let schedule_time = overheads.schedule_time(total, workload.graph.edges().len());
        Self {
            engine: Engine::with_trace(cluster.clone(), trace),
            workload,
            overheads,
            node_of: vec![HEAD_NODE; total],
            forwarding: config.worker_to_worker_forwarding,
            serial_inputs: config.serial_input_transfers,
            config: config.clone(),
            dm,
            pending_inputs: vec![0; total],
            queued_inputs: vec![VecDeque::new(); total],
            arrivals: HashMap::new(),
            phase_done: false,
            retrievals_pending: 0,
            schedule_time,
        }
    }

    /// Scheduling overhead charged for this graph.
    pub fn schedule_time(&self) -> SimTime {
        self.schedule_time
    }

    /// Consume the backend and return the engine's statistics and trace.
    pub fn finish(self) -> (SimStats, Trace) {
        self.engine.finish()
    }

    /// Drain the transfers the data manager planned during the run, in
    /// planning order — attached to the run's
    /// [`crate::runtime::RunRecord`] by the `simulate_ompc*` entry points.
    pub fn take_transfers(&mut self) -> Vec<TransferRecord> {
        self.dm.take_transfer_log()
    }

    /// Advance the engine until a phase token (startup, schedule, shutdown,
    /// last retrieval) completes.
    fn pump_phase(&mut self, label: &str) -> OmpcResult<()> {
        self.phase_done = false;
        while !self.phase_done {
            let Some(completion) = self.engine.next_completion() else {
                return Err(OmpcError::Internal(format!("simulation stalled during {label}")));
            };
            if let Some(task) = self.step(completion) {
                return Err(OmpcError::Internal(format!("task {task} completed during {label}")));
            }
        }
        Ok(())
    }

    /// React to one engine completion; returns a task id when a target task
    /// retired.
    fn step(&mut self, completion: Completion) -> Option<usize> {
        let token: Token = completion.token();
        let kind = token & !TOK_MASK;
        let task = if kind == TOK_TRANSFER || kind == TOK_STAGE {
            ((token & TOK_MASK) >> TOK_TASK_SHIFT) as usize
        } else {
            (token & TOK_MASK) as usize
        };
        let buffer = token & TOK_SUB_MASK;
        match kind {
            TOK_STARTUP | TOK_SCHEDULE | TOK_SHUTDOWN => {
                self.phase_done = true;
                None
            }
            TOK_DISPATCH => {
                self.issue_inputs(task);
                None
            }
            TOK_STAGE => {
                // The head forwards exactly the bytes that just arrived on
                // this first leg (the completion carries them), so several
                // staged inputs of one task can be in flight at once.
                let Completion::Transfer { bytes, .. } = completion else {
                    unreachable!("stage token on a non-transfer completion")
                };
                let node = self.node_of[task];
                self.engine.issue(|ctx| {
                    ctx.send_labeled(
                        HEAD_NODE,
                        node,
                        bytes,
                        transfer_token(TOK_TRANSFER, task, buffer),
                        format!("in t{task}"),
                    )
                });
                None
            }
            TOK_TRANSFER => {
                self.pending_inputs[task] -= 1;
                if let Some((src, bytes, buf)) = self.queued_inputs[task].pop_front() {
                    self.issue_transfer(task, src, bytes, buf);
                }
                // The copy has landed: release every co-located task that
                // was waiting for this buffer on this node.
                let node = self.node_of[task];
                for waiter in self.arrivals.remove(&(buffer, node)).unwrap_or_default() {
                    self.pending_inputs[waiter] -= 1;
                    if self.pending_inputs[waiter] == 0 {
                        self.start_compute(waiter);
                    }
                }
                if self.pending_inputs[task] == 0 {
                    self.start_compute(task);
                }
                None
            }
            TOK_COMPUTE => {
                let cost = self.overheads.event_completion;
                self.engine.issue(|ctx| {
                    ctx.runtime(
                        HEAD_NODE,
                        cost,
                        TOK_COMPLETE | task as u64,
                        format!("complete t{task}"),
                    )
                });
                None
            }
            TOK_COMPLETE => {
                // The task's output now lives (only) on the node that ran it.
                let node = self.node_of[task];
                if self.dm.is_registered(BufferId(task as u64)) {
                    self.dm.record_write(BufferId(task as u64), node);
                } else {
                    self.dm.register_device_buffer(
                        BufferId(task as u64),
                        node,
                        self.workload.output_bytes[task],
                    );
                }
                Some(task)
            }
            TOK_RETRIEVE => {
                self.retrievals_pending -= 1;
                if self.retrievals_pending == 0 {
                    self.phase_done = true;
                }
                None
            }
            _ => unreachable!("unknown token kind {kind:#x}"),
        }
    }

    /// Plan the input forwarding of a freshly dispatched task through the
    /// data manager and issue the transfers — concurrently in the pipelined
    /// default, one at a time in the legacy serial mode.
    fn issue_inputs(&mut self, task: usize) {
        let node = self.node_of[task];
        let mut transfers: Vec<(NodeId, u64, u64)> = Vec::new();
        let mut awaited = 0usize;
        let mut need = |dm: &mut DataManager,
                        arrivals: &mut HashMap<(u64, NodeId), Vec<usize>>,
                        buf: u64,
                        bytes: u64,
                        reason: TransferReason| {
            if let Some(plan) = dm.plan_input_as(BufferId(buf), node, reason) {
                // We own this transfer; announce it so later co-located
                // consumers wait for the arrival instead of racing past it.
                arrivals.insert((buf, node), Vec::new());
                transfers.push((plan.from, bytes, buf));
            } else if let Some(waiters) = arrivals.get_mut(&(buf, node)) {
                // Already on the wire for a sibling task on this node.
                waiters.push(task);
                awaited += 1;
            }
        };
        for &pred in self.workload.graph.predecessors(task) {
            let bytes = self.workload.graph.edge_bytes(pred, task);
            if bytes == 0 {
                continue;
            }
            need(&mut self.dm, &mut self.arrivals, pred as u64, bytes, TransferReason::Input);
        }
        if self.workload.graph.predecessors(task).is_empty() {
            let bytes = self.workload.output_bytes[task];
            if bytes > 0 {
                // Initial data distributed from the head node (enter data).
                need(
                    &mut self.dm,
                    &mut self.arrivals,
                    task as u64,
                    bytes,
                    TransferReason::EnterData,
                );
            }
        }
        self.pending_inputs[task] = transfers.len() + awaited;
        if self.pending_inputs[task] == 0 {
            self.start_compute(task);
            return;
        }
        if self.serial_inputs {
            let mut queue: VecDeque<(NodeId, u64, u64)> = transfers.into();
            if let Some((src, bytes, buf)) = queue.pop_front() {
                self.queued_inputs[task] = queue;
                self.issue_transfer(task, src, bytes, buf);
            }
        } else {
            for (src, bytes, buf) in transfers {
                self.issue_transfer(task, src, bytes, buf);
            }
        }
    }

    fn issue_transfer(&mut self, task: usize, src: NodeId, bytes: u64, buffer: u64) {
        let node = self.node_of[task];
        if self.forwarding || src == HEAD_NODE {
            self.engine.issue(|ctx| {
                ctx.send_labeled(
                    src,
                    node,
                    bytes,
                    transfer_token(TOK_TRANSFER, task, buffer),
                    format!("in t{task}"),
                )
            });
        } else {
            // Forwarding disabled (ablation): stage the buffer through the
            // head node, then on to the consumer.
            self.engine.issue(|ctx| {
                ctx.send_labeled(
                    src,
                    HEAD_NODE,
                    bytes,
                    transfer_token(TOK_STAGE, task, buffer),
                    format!("stage t{task}"),
                )
            });
        }
    }

    fn start_compute(&mut self, task: usize) {
        let node = self.node_of[task];
        let cost = SimTime::from_secs_f64(self.workload.graph.tasks()[task].cost)
            + self.overheads.worker_event_handling;
        self.engine.issue(|ctx| {
            ctx.compute_labeled(node, cost, TOK_COMPUTE | task as u64, format!("t{task}"))
        });
    }
}

impl ExecutionBackend for SimBackend<'_> {
    fn prologue(&mut self) -> OmpcResult<()> {
        let startup = self.overheads.startup;
        self.engine
            .issue(|ctx| ctx.runtime(HEAD_NODE, startup, TOK_STARTUP, "startup".to_string()));
        self.pump_phase("startup")?;
        let schedule = self.schedule_time;
        self.engine
            .issue(|ctx| ctx.runtime(HEAD_NODE, schedule, TOK_SCHEDULE, "schedule".to_string()));
        self.pump_phase("schedule")
    }

    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()> {
        self.node_of[task] = node;
        let cost = self.overheads.event_dispatch;
        self.engine.issue(|ctx| {
            ctx.runtime(HEAD_NODE, cost, TOK_DISPATCH | task as u64, format!("dispatch t{task}"))
        });
        Ok(())
    }

    fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
        loop {
            let Some(completion) = self.engine.next_completion() else {
                return Err(OmpcError::Internal(
                    "simulation event queue drained with tasks outstanding".to_string(),
                ));
            };
            if let Some(task) = self.step(completion) {
                // Injected task error (fault plan): model the worker-side
                // handler failure the threaded backend provokes for real —
                // a typed error reply attributing the executing node.
                if self.config.fault_plan.has_task_error(task) {
                    return Ok(vec![TaskEvent::Failed {
                        task,
                        error: OmpcError::RemoteEvent {
                            node: self.node_of[task],
                            event: task as u64,
                            error: Box::new(OmpcError::UnknownKernel(POISONED_KERNEL)),
                        },
                    }]);
                }
                return Ok(vec![TaskEvent::Completed(task)]);
            }
        }
    }

    fn clock_millis(&self) -> Option<Millis> {
        // The fault clock of the simulated backend is virtual time.
        Some(self.engine.now().as_nanos() / 1_000_000)
    }

    fn invalidate_node(&mut self, node: NodeId) -> Vec<LostBuffer> {
        // In workload graphs buffer `t` is task `t`'s output, so the lost
        // lineage of a buffer is exactly its producing task.
        self.dm
            .fail_node(node)
            .into_iter()
            .map(|buffer| LostBuffer { buffer, writers: vec![buffer.0 as usize] })
            .collect()
    }

    fn replan(&mut self, alive_workers: &[NodeId]) -> Option<Vec<NodeId>> {
        // Re-run the configured static scheduler over the shrunken
        // platform, mapping processor `p` onto the p-th survivor.
        let platform = network_platform(&self.engine.config().network, alive_workers.len());
        Some(RuntimePlan::workload_assignment_on(
            self.workload,
            &platform,
            &self.config,
            alive_workers,
        ))
    }

    fn epilogue(&mut self) -> OmpcResult<()> {
        // Retrieve the results of every sink task back to the head node
        // (exit data), as planned by the data manager.
        for sink in self.workload.graph.sinks() {
            let bytes = self.workload.output_bytes[sink];
            if bytes == 0 || !self.dm.is_registered(BufferId(sink as u64)) {
                continue;
            }
            if let Some(from) = self.dm.retrieve_source(BufferId(sink as u64)) {
                self.engine.issue(|ctx| {
                    ctx.send_labeled(
                        from,
                        HEAD_NODE,
                        bytes,
                        TOK_RETRIEVE | sink as u64,
                        format!("out t{sink}"),
                    )
                });
                // Simulated transfers cannot fail; commit immediately.
                self.dm.record_retrieve(BufferId(sink as u64));
                self.retrievals_pending += 1;
            }
        }
        if self.retrievals_pending > 0 {
            self.pump_phase("result retrieval")?;
        }
        let shutdown = self.overheads.shutdown;
        self.engine
            .issue(|ctx| ctx.runtime(HEAD_NODE, shutdown, TOK_SHUTDOWN, "shutdown".to_string()));
        self.pump_phase("shutdown")
    }
}
