//! The unified OMPC execution core.
//!
//! Historically the repository carried **two divergent copies** of the OMPC
//! execution protocol: `ClusterDevice` drove real worker threads and
//! `OmpcSimProcess` drove the virtual cluster, each with its own dispatch
//! loop, in-flight accounting, and forwarding decisions. This module
//! extracts the protocol into one place:
//!
//! * [`RuntimePlan`] — the static side: the HEFT (or ablation) schedule is
//!   computed through a single interface and turned into a task-to-node
//!   assignment, including the paper's §4.4 pinning rules for data and host
//!   tasks.
//! * [`RuntimeCore`] — the dynamic side: a backend-agnostic, pipelined
//!   dispatch loop. It owns the ready queue, the per-task dependence
//!   counters, the bounded in-flight window
//!   ([`crate::config::OmpcConfig::max_inflight_tasks`]), and the per-phase
//!   accounting (dispatch order, completion order, peak concurrency).
//! * [`ExecutionBackend`] — the trait a backend implements to execute what
//!   the core decides: [`ThreadedBackend`] drives the real worker threads
//!   through a pool of synchronous head worker threads, [`MpiBackend`]
//!   carries every task as one composite tagged message over the
//!   `ompc-mpi` world and probes for typed completion replies (the paper's
//!   gate-thread shape), and [`SimBackend`] wraps the `ompc-sim`
//!   discrete-event engine. Select between the first two with
//!   [`crate::config::OmpcConfig::backend`].
//! * [`fault`] — the fault-tolerance subsystem (paper §3.1): deterministic
//!   failure injection, ring-heartbeat detection driven by this dispatch
//!   loop, and task recovery onto the surviving workers.
//!
//! Both execution modes therefore share every scheduling, windowing,
//! forwarding, and recovery decision — an optimization or fix lands once
//! and is measured in both — and the §7 head-node bottleneck can be
//! reproduced (or lifted) in either mode purely through configuration.

pub mod fault;
pub mod mpi;
pub mod sim;
pub mod telemetry;
pub mod threaded;

pub use fault::{FailureRecord, FaultPlan, FaultState, FaultTrigger, LostBuffer, ReplanEntry};
pub use mpi::MpiBackend;
pub use sim::SimBackend;
pub use telemetry::{
    chrome_trace, clock_reads, critical_path, overhead_attribution, Attribution, Span, SpanPhase,
    Telemetry, TelemetryLevel,
};
pub use threaded::{HeadWorkerPool, ThreadedBackend};

use crate::buffer::BufferRegistry;
use crate::config::OmpcConfig;
use crate::data_manager::{DataManager, TransferReason, TransferRecord, HEAD_NODE};
use crate::event::EventSystem;
use crate::heartbeat::{plan_recovery, Millis};
use crate::model::{self, WorkloadGraph};
use crate::task::{RegionGraph, TaskKind};
use crate::types::{BufferId, NodeId, OmpcError, OmpcResult, TaskId};
use ompc_sched::Platform;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The residency view consulted by region planning: every buffer whose
/// latest version lives on a worker node, mapped to that worker (see
/// [`DataManager::latest_on_workers`]). An empty map plans exactly as the
/// pre-residency runtime did.
pub type ResidencyMap = BTreeMap<BufferId, NodeId>;

/// Release every device copy of `buffer` (exit-data semantics, shared by
/// the threaded and MPI backends): drop the buffer from the data manager
/// and delete the copy on every live holder. Dead holders are skipped —
/// their memory died with them, and a delete event would only bounce off
/// the zombie gate.
pub(crate) fn release_device_copies(
    dm: &parking_lot::Mutex<DataManager>,
    events: &EventSystem,
    buffer: BufferId,
) -> OmpcResult<()> {
    // `remove` returns only worker-node holders; capture the failed set
    // under the same acquisition instead of re-locking per holder.
    let live_holders: Vec<NodeId> = {
        let mut dm = dm.lock();
        let holders = dm.remove(buffer);
        holders.into_iter().filter(|&n| !dm.is_failed(n)).collect()
    };
    for holder in live_holders {
        events.delete(holder, buffer)?;
    }
    Ok(())
}

/// A dependence DAG as seen by the execution core: dense task ids, counted
/// predecessors, listed successors. Implemented by the scheduler's
/// `TaskGraph` (simulated workloads) and the runtime's [`RegionGraph`]
/// (threaded target regions), so one dispatch loop drives both.
pub trait TaskDag {
    /// Number of tasks.
    fn task_count(&self) -> usize;
    /// Number of direct predecessors of `task`.
    fn predecessor_count(&self, task: usize) -> usize;
    /// Direct successors of `task`, in deterministic order.
    fn successor_ids(&self, task: usize) -> Vec<usize>;
}

impl TaskDag for ompc_sched::TaskGraph {
    fn task_count(&self) -> usize {
        self.len()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.predecessors(task).len()
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.successors(task).to_vec()
    }
}

impl TaskDag for RegionGraph {
    fn task_count(&self) -> usize {
        self.len()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.predecessors(TaskId(task)).len()
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.successors(TaskId(task)).iter().map(|t| t.0).collect()
    }
}

impl TaskDag for WorkloadGraph {
    fn task_count(&self) -> usize {
        self.graph.task_count()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.graph.predecessor_count(task)
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.graph.successor_ids(task)
    }
}

/// The static execution plan shared by every backend: one schedule, one
/// assignment, one window — the "schedule consumed through one interface"
/// half of the unified core.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimePlan {
    /// Node each task executes on (worker nodes are 1-based; the head node
    /// is [`HEAD_NODE`]).
    pub assignment: Vec<NodeId>,
    /// Maximum number of concurrently in-flight tasks.
    pub window: usize,
}

impl RuntimePlan {
    /// Plan an abstract workload: run the configured static scheduler over
    /// `platform` and map processor `p` to worker node `p + 1`.
    pub fn for_workload(
        workload: &WorkloadGraph,
        platform: &Platform,
        config: &OmpcConfig,
    ) -> Self {
        let nodes: Vec<NodeId> = (1..=platform.num_procs()).collect();
        let assignment = Self::workload_assignment_on(workload, platform, config, &nodes);
        Self { assignment, window: config.inflight_window() }
    }

    /// The assignment the configured scheduler produces for `workload` on
    /// `platform`, with processor `p` mapped to `nodes[p]`. This is how
    /// fault recovery re-schedules onto the surviving workers: the platform
    /// shrinks to the survivor count and `nodes` names the survivors.
    pub fn workload_assignment_on(
        workload: &WorkloadGraph,
        platform: &Platform,
        config: &OmpcConfig,
        nodes: &[NodeId],
    ) -> Vec<NodeId> {
        assert_eq!(platform.num_procs(), nodes.len(), "one node per platform processor");
        let schedule = config.scheduler.build().schedule(&workload.graph, platform);
        (0..workload.len()).map(|t| nodes[schedule.proc_of(t)]).collect()
    }

    /// Plan a target region: schedule the region's task graph, then apply
    /// the paper's §4.4 pinning rules — enter-data tasks follow their first
    /// target consumer, exit-data tasks follow their *last* target
    /// predecessor, and host tasks stay on the head node.
    pub fn for_region(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        num_workers: usize,
        config: &OmpcConfig,
    ) -> Self {
        Self::for_region_on(region, buffers, &Platform::cluster(num_workers), config)
    }

    /// [`RuntimePlan::for_region`] with an explicit platform model.
    pub fn for_region_on(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        platform: &Platform,
        config: &OmpcConfig,
    ) -> Self {
        let nodes: Vec<NodeId> = (1..=platform.num_procs()).collect();
        let assignment = Self::region_assignment_on(
            region,
            buffers,
            platform,
            config,
            &nodes,
            &ResidencyMap::new(),
        );
        Self { assignment, window: config.inflight_window() }
    }

    /// The pinned region assignment with processor `p` mapped to
    /// `nodes[p]` — the region-graph counterpart of
    /// [`RuntimePlan::workload_assignment_on`], used by the device's region
    /// planning and by fault recovery.
    ///
    /// `residency` is the device's current cross-region residency view
    /// ([`DataManager::latest_on_workers`]): an enter-data task for a
    /// buffer already resident on a worker, or an exit-data task with no
    /// target predecessor *in this region* (a flush of data produced by an
    /// earlier region), is pinned to the node actually holding the latest
    /// copy, so the assignment record agrees with where the data manager
    /// will find (or leave) the bytes. Pins are only taken from `nodes` —
    /// a holder excluded from this plan (e.g. not in the survivor set)
    /// falls back to the scheduler's placement.
    pub fn region_assignment_on(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        platform: &Platform,
        config: &OmpcConfig,
        nodes: &[NodeId],
        residency: &ResidencyMap,
    ) -> Vec<NodeId> {
        Self::region_assignment_with_load(region, buffers, platform, config, nodes, residency, &[])
    }

    /// [`RuntimePlan::region_assignment_on`] against a cluster already
    /// carrying in-flight work: `load[p]` is the reserved seconds of
    /// processor `p` (the node `nodes[p]`), fed to
    /// [`ompc_sched::Scheduler::schedule_with_load`] so an admitted
    /// region's tasks are placed *after* — never inside — the work of the
    /// regions already running there. This is the incremental path of
    /// concurrent admission: region K+1 reserves capacity against the
    /// snapshot instead of re-running HEFT over the union of both graphs.
    /// An empty (or all-zero) load plans bit-identically to
    /// [`RuntimePlan::region_assignment_on`].
    #[allow(clippy::too_many_arguments)]
    pub fn region_assignment_with_load(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        platform: &Platform,
        config: &OmpcConfig,
        nodes: &[NodeId],
        residency: &ResidencyMap,
        load: &[f64],
    ) -> Vec<NodeId> {
        assert_eq!(platform.num_procs(), nodes.len(), "one node per platform processor");
        let sched_graph = model::region_to_sched(region, buffers);
        let schedule = config.scheduler.build().schedule_with_load(&sched_graph, platform, load);
        let mut assignment: Vec<NodeId> =
            (0..region.len()).map(|t| nodes[schedule.proc_of(t)]).collect();
        let resident_pin = |task: &crate::task::TargetTask| -> Option<NodeId> {
            let buffer = task.kind.data_buffer()?;
            residency.get(&buffer).copied().filter(|holder| nodes.contains(holder))
        };
        for task in region.tasks() {
            match task.kind {
                TaskKind::EnterData { .. } => {
                    if let Some(&succ) = region
                        .successors(task.id)
                        .iter()
                        .find(|&&s| region.task(s).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[succ.0];
                    } else if let Some(holder) = resident_pin(task) {
                        // No consumer in this region (a prefetch / re-enter
                        // of resident data): stay where the data already is.
                        assignment[task.id.0] = holder;
                    }
                }
                TaskKind::ExitData { .. } => {
                    // §4.4: exit data follows its *last* target predecessor
                    // — the producer of the version being copied back — so
                    // the assignment record agrees with where the data
                    // manager will find the bytes.
                    if let Some(&pred) = region
                        .predecessors(task.id)
                        .iter()
                        .rev()
                        .find(|&&p| region.task(p).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[pred.0];
                    } else if let Some(holder) = resident_pin(task) {
                        // No producer in this region: the version being
                        // flushed is resident from an earlier region — pin
                        // the exit to its actual holder.
                        assignment[task.id.0] = holder;
                    }
                }
                TaskKind::Host { .. } => assignment[task.id.0] = HEAD_NODE,
                TaskKind::Target { .. } => {}
            }
        }
        assignment
    }
}

/// One entry of the completion stream a backend reports to the core: every
/// dispatched task eventually produces exactly one event per execution
/// attempt — a completion or a typed failure — so the core can never block
/// on a task whose execution went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskEvent {
    /// The task's execution finished normally.
    Completed(usize),
    /// The task's execution failed with the given error — typically a
    /// worker's typed error reply ([`OmpcError::RemoteEvent`]). The core
    /// owns the policy: a failure attributable to a node the failure
    /// injector killed (the task's own node, or the error's
    /// [`OmpcError::origin_node`]) is *stale* and the task restarts on a
    /// survivor; anything else propagates out of
    /// [`RuntimeCore::execute`].
    Failed {
        /// The task whose execution failed.
        task: usize,
        /// The error its execution produced.
        error: OmpcError,
    },
}

/// What a backend does with the work the core hands it.
///
/// The core calls the methods in a fixed protocol: `prologue` once, then an
/// alternation of `launch` (as the window opens) and `await_completions`
/// (when the window is full or no task is ready), then `epilogue` once after
/// the last task retired. A backend reports *what happened* to dispatched
/// tasks as typed [`TaskEvent`]s; the core decides *what* becomes ready,
/// *when* it is dispatched, and whether a failure propagates or restarts
/// the task.
///
/// The fault-tolerance hooks (`clock_millis`, `invalidate_node`, `replan`)
/// have no-op defaults: a backend that never runs under a
/// [`fault::FaultPlan`] can ignore them entirely.
pub trait ExecutionBackend {
    /// Pay the per-run start-up and whole-graph scheduling costs. Called
    /// once, before any task is launched.
    fn prologue(&mut self) -> OmpcResult<()> {
        Ok(())
    }

    /// Begin executing `task` on `node`: perform (or model) its input
    /// forwarding and computation. Must not block until completion —
    /// completions are reported through
    /// [`ExecutionBackend::await_completions`] so the core can keep the
    /// window full.
    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()>;

    /// Wait until at least one launched task has produced an outcome and
    /// return the events in completion order. When a completion's node has
    /// been killed by the failure injector, it is *stale*: the core
    /// discards the result and requeues the task instead of retiring it.
    /// A [`TaskEvent::Failed`] whose blamed node is dead is handled the
    /// same way; any other failure propagates. `Err` from this method is
    /// reserved for backend-level breakdowns (a vanished pool, a stalled
    /// engine) that abort the run outright.
    fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>>;

    /// Drain results and shut down. Called once, after every task retired.
    fn epilogue(&mut self) -> OmpcResult<()> {
        Ok(())
    }

    /// The backend's fault clock in milliseconds, if it has one. The
    /// simulated backend reports virtual time; the threaded backend returns
    /// `None` and the core advances a logical clock one heartbeat period
    /// per dispatch round.
    fn clock_millis(&self) -> Option<Millis> {
        None
    }

    /// Tell the backend `node` just died: discard every data copy it held
    /// and return the buffers whose *only* valid copy was lost, each with
    /// the tasks that write it (the lineage the core re-executes).
    fn invalidate_node(&mut self, node: NodeId) -> Vec<LostBuffer> {
        let _ = node;
        Vec::new()
    }

    /// Re-run the static scheduler over the surviving workers and return
    /// the full new assignment, or `None` to fall back to the round-robin
    /// [`plan_recovery`] fast path. Only called when
    /// [`crate::config::OmpcConfig::replan_on_failure`] is set.
    fn replan(&mut self, alive_workers: &[NodeId]) -> Option<Vec<NodeId>> {
        let _ = alive_workers;
        None
    }
}

/// Record of one execution through the core: the decisions every backend
/// must agree on. Used by the backend-equivalence tests and exposed through
/// the public reporting APIs
/// ([`crate::cluster::ClusterDevice::last_run_record`],
/// [`crate::sim_runtime::simulate_ompc_recorded`],
/// [`crate::sim_runtime::simulate_ompc_outcome`]).
///
/// ```
/// use ompc_core::prelude::*;
/// use ompc_core::sim_runtime::simulate_ompc_recorded;
/// use ompc_sim::ClusterConfig;
///
/// let mut g = ompc_sched::TaskGraph::new();
/// for _ in 0..3 {
///     g.add_task(0.01);
/// }
/// g.add_edge(0, 1, 128);
/// g.add_edge(1, 2, 128);
/// let workload = WorkloadGraph::new(g, vec![128; 3]);
/// let (_, record) = simulate_ompc_recorded(
///     &workload,
///     &ClusterConfig::santos_dumont(3),
///     &OmpcConfig::default(),
///     &OverheadModel::default(),
/// )
/// .unwrap();
/// // A chain dispatches and retires strictly in order, one in flight.
/// assert_eq!(record.dispatch_order, vec![0, 1, 2]);
/// assert_eq!(record.completion_order, vec![0, 1, 2]);
/// assert_eq!(record.peak_in_flight, 1);
/// assert!(record.failures.is_empty() && record.reexecuted.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Node each task executed on (for recovered tasks: the surviving node
    /// that finally ran them; the per-failure history is in `failures` /
    /// `replanned`).
    pub assignment: Vec<NodeId>,
    /// Order in which the core dispatched tasks into the window. A task
    /// restarted by fault recovery appears once per dispatch.
    pub dispatch_order: Vec<usize>,
    /// Order in which the backend reported retiring task completions
    /// (stale completions from dead nodes are not recorded). A task whose
    /// completed work was lost with a node appears once per retirement.
    pub completion_order: Vec<usize>,
    /// Highest number of simultaneously in-flight tasks observed.
    pub peak_in_flight: usize,
    /// Every node failure declared during the run, in detection order.
    pub failures: Vec<FailureRecord>,
    /// Tasks executed more than once because a node died — restarted
    /// in-flight work and re-executed lineage producers — ascending.
    pub reexecuted: Vec<usize>,
    /// Tasks moved to a different node during recovery, in recovery order.
    pub replanned: Vec<ReplanEntry>,
    /// Every transfer the data manager planned during the run, in planning
    /// order: enter-data distributions, input forwards, and host
    /// retrievals. This is the observable side of cross-region residency —
    /// a buffer resident from an earlier region generates **no** entry
    /// here — and the surface the three-way transfer-set equivalence tests
    /// compare.
    pub transfers: Vec<TransferRecord>,
    /// Every telemetry [`Span`] recorded during the run, in recording
    /// order — empty unless the device ran with
    /// [`TelemetryLevel::Spans`]. Spans are observational: the rest of the
    /// record is byte-identical with telemetry on or off.
    pub spans: Vec<Span>,
}

impl RunRecord {
    /// Detection latency (ms of fault-clock time) of every declared
    /// failure, in detection order.
    pub fn recovery_latencies(&self) -> Vec<Millis> {
        self.failures.iter().map(|f| f.detection_latency()).collect()
    }

    /// Number of transfers planned during the run.
    pub fn transfer_count(&self) -> usize {
        self.transfers.len()
    }

    /// Total bytes of the transfers planned during the run (registered
    /// buffer sizes).
    pub fn transfer_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// The transfers that moved `buffer`, in planning order — the
    /// per-buffer breakdown residency tests assert on ("this input moved
    /// exactly once across N regions").
    pub fn buffer_transfers(&self, buffer: BufferId) -> Vec<TransferRecord> {
        self.transfers.iter().copied().filter(|t| t.buffer == buffer).collect()
    }

    /// The transfers with the given reason, in planning order.
    pub fn transfers_with_reason(&self, reason: TransferReason) -> Vec<TransferRecord> {
        self.transfers.iter().copied().filter(|t| t.reason == reason).collect()
    }

    /// The recorded spans of `task`, in recording order (empty unless the
    /// run was recorded with [`TelemetryLevel::Spans`]).
    pub fn task_spans(&self, task: usize) -> Vec<Span> {
        self.spans.iter().filter(|s| s.task == Some(task)).cloned().collect()
    }

    /// Fold the run's spans into the per-phase overhead attribution of
    /// Fig. 7(a) (all zeros when the run recorded no spans).
    pub fn attribution(&self) -> Attribution {
        overhead_attribution(&self.spans)
    }

    /// The longest time-respecting span chain of the run (see
    /// [`critical_path`]).
    pub fn critical_path(&self) -> Vec<Span> {
        critical_path(&self.spans)
    }
}

/// Per-task dispatch state tracked by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Waiting for predecessors.
    Blocked,
    /// All predecessors retired; queued for dispatch.
    Ready,
    /// Dispatched to the backend, completion pending.
    InFlight,
    /// Retired.
    Done,
}

/// The backend-agnostic OMPC dispatch engine.
///
/// One instance executes one task graph: it tracks readiness, keeps up to
/// `window` tasks in flight (the pipelined replacement for the paper's
/// one-blocked-thread-per-region dispatch), retires tasks as the backend
/// reports their completion, and — when a [`fault::FaultPlan`] is active —
/// drives failure injection, heartbeat detection, and task recovery from
/// the same loop.
#[derive(Debug)]
pub struct RuntimeCore {
    assignment: Vec<NodeId>,
    window: usize,
    successors: Vec<Vec<usize>>,
    predecessors: Vec<Vec<usize>>,
    preds_remaining: Vec<usize>,
    state: Vec<TaskState>,
    /// Node each in-flight task was actually dispatched to (stale-completion
    /// detection must not consult `assignment`, which recovery rewrites).
    dispatched_on: Vec<NodeId>,
    ready: VecDeque<usize>,
    in_flight: usize,
    completed: usize,
    total: usize,
    dispatch_order: Vec<usize>,
    completion_order: Vec<usize>,
    peak_in_flight: usize,
    faults: Option<FaultState>,
    /// Lost-buffer / lineage counts per killed node, reported in the
    /// [`FailureRecord`] once the monitor declares the failure.
    kill_info: BTreeMap<NodeId, (usize, usize)>,
    failures: Vec<FailureRecord>,
    reexecuted: BTreeSet<usize>,
    replanned: Vec<ReplanEntry>,
    /// Span recorder (disabled by default). All core spans — dispatch,
    /// retire, replan — are head-node bookkeeping and never change what
    /// the core decides.
    telemetry: std::sync::Arc<Telemetry>,
}

impl RuntimeCore {
    /// Build the dispatch engine for `dag` under `plan`, without fault
    /// tolerance.
    pub fn new(dag: &impl TaskDag, plan: &RuntimePlan) -> Self {
        Self::build(dag, plan, None)
    }

    /// Build the dispatch engine with an active fault subsystem (see
    /// [`FaultState::from_config`]).
    pub fn with_faults(dag: &impl TaskDag, plan: &RuntimePlan, faults: FaultState) -> Self {
        Self::build(dag, plan, Some(faults))
    }

    fn build(dag: &impl TaskDag, plan: &RuntimePlan, faults: Option<FaultState>) -> Self {
        let total = dag.task_count();
        assert_eq!(plan.assignment.len(), total, "plan must assign every task of the graph");
        let preds_remaining: Vec<usize> = (0..total).map(|t| dag.predecessor_count(t)).collect();
        let ready: VecDeque<usize> = (0..total).filter(|&t| preds_remaining[t] == 0).collect();
        let successors: Vec<Vec<usize>> = (0..total).map(|t| dag.successor_ids(t)).collect();
        let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (task, succs) in successors.iter().enumerate() {
            for &s in succs {
                predecessors[s].push(task);
            }
        }
        let state: Vec<TaskState> = (0..total)
            .map(|t| if preds_remaining[t] == 0 { TaskState::Ready } else { TaskState::Blocked })
            .collect();
        Self {
            assignment: plan.assignment.clone(),
            window: plan.window.max(1),
            successors,
            predecessors,
            preds_remaining,
            state,
            dispatched_on: vec![HEAD_NODE; total],
            ready,
            in_flight: 0,
            completed: 0,
            total,
            dispatch_order: Vec::with_capacity(total),
            completion_order: Vec::with_capacity(total),
            peak_in_flight: 0,
            faults,
            kill_info: BTreeMap::new(),
            failures: Vec::new(),
            reexecuted: BTreeSet::new(),
            replanned: Vec::new(),
            telemetry: Telemetry::off(),
        }
    }

    /// Install a span recorder: the core records a `Dispatch` span per
    /// launch (which also opens the task's attempt), a `Retire` span per
    /// completion, and a `Replan` span per recovery. The device installs
    /// the recorder it hands to the backend so head-side and worker-side
    /// spans land in one stream.
    pub fn set_telemetry(&mut self, telemetry: std::sync::Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    /// Drive `backend` until every task has completed.
    pub fn execute<B: ExecutionBackend>(&mut self, backend: &mut B) -> OmpcResult<()> {
        if self.total == 0 {
            return Ok(());
        }
        backend.prologue()?;
        self.fill_window(backend)?;
        while self.completed < self.total {
            let events = backend.await_completions()?;
            if events.is_empty() {
                return Err(OmpcError::Internal(
                    "execution backend reported no progress".to_string(),
                ));
            }
            for event in events {
                self.on_event(event, backend)?;
            }
            if self.faults.is_some() {
                self.poll_heartbeats(backend)?;
            }
            self.fill_window(backend)?;
        }
        backend.epilogue()
    }

    /// Handle one event of the backend's completion stream.
    ///
    /// A completion retires the task — checking the failure injector's
    /// completion triggers at this exact position in the completion stream
    /// — unless it comes from a dead node, in which case it is discarded
    /// as stale and the task requeued. A failure whose blame falls on a
    /// dead node (the task's own node, or the node the error reply
    /// originated from) is likewise stale — the failure injector caused
    /// it, recovery will rerun the task — while any other failure
    /// propagates out of the run.
    fn on_event<B: ExecutionBackend>(
        &mut self,
        event: TaskEvent,
        backend: &mut B,
    ) -> OmpcResult<()> {
        let task = match &event {
            TaskEvent::Completed(task) => *task,
            TaskEvent::Failed { task, .. } => *task,
        };
        if task >= self.total || self.state[task] != TaskState::InFlight {
            return Err(OmpcError::Internal(format!(
                "backend reported an event for task {task}, which is not in flight"
            )));
        }
        let node = self.dispatched_on[task];
        let node_is_dead =
            |n: NodeId| -> bool { self.faults.as_ref().is_some_and(|f| f.is_dead(n)) };
        match event {
            TaskEvent::Completed(_) if node_is_dead(node) => {
                // Stale completion from a dead node: the result was
                // discarded at the data layer; restart the task.
                self.in_flight -= 1;
                self.reexecuted.insert(task);
                self.reset_to_pending(task);
                Ok(())
            }
            TaskEvent::Completed(_) => {
                // Only a task's *first-attempt* retirement advances the
                // failure injector's `AfterCompletions` fault clock: a task
                // in the re-executed set is retiring recovery work, and
                // counting it would let one injected failure cascade a
                // survivor past its own trigger (see
                // [`FaultTrigger::AfterCompletions`]).
                let first_attempt = !self.reexecuted.contains(&task);
                self.retire(task);
                let newly_dead = match &mut self.faults {
                    Some(f) if first_attempt => f.note_retirement(node),
                    _ => Vec::new(),
                };
                for dead in newly_dead {
                    self.kill_node(dead, backend);
                }
                Ok(())
            }
            TaskEvent::Failed { error, .. } => {
                let blamed = error.origin_node();
                if node_is_dead(node) || blamed.is_some_and(node_is_dead) {
                    // The failure is collateral damage of an injected node
                    // death (the task ran there, or a dead peer refused an
                    // event mid-task): stale — restart on a survivor.
                    self.in_flight -= 1;
                    self.reexecuted.insert(task);
                    self.reset_to_pending(task);
                    Ok(())
                } else {
                    Err(error)
                }
            }
        }
    }

    /// One heartbeat round: advance the fault clock, fire timed failure
    /// triggers, beat the surviving nodes, and run recovery for any node
    /// the monitor newly declares failed.
    fn poll_heartbeats<B: ExecutionBackend>(&mut self, backend: &mut B) -> OmpcResult<()> {
        let backend_now = backend.clock_millis();
        let newly_dead = match &mut self.faults {
            Some(f) => f.advance_round(backend_now),
            None => return Ok(()),
        };
        for dead in newly_dead {
            self.kill_node(dead, backend);
        }
        let declared = match &mut self.faults {
            Some(f) => f.beat_and_check(),
            None => Vec::new(),
        };
        for node in declared {
            self.recover_from(node, backend)?;
        }
        Ok(())
    }

    /// The injector killed `node`: invalidate its data through the backend
    /// and un-retire the lineage of every buffer that died with it, so the
    /// producers re-execute from the head node's pre-offload image.
    fn kill_node<B: ExecutionBackend>(&mut self, node: NodeId, backend: &mut B) {
        let lost = backend.invalidate_node(node);
        let mut lineage = 0usize;
        for buffer in &lost {
            for &writer in &buffer.writers {
                if writer < self.total && self.state[writer] == TaskState::Done {
                    self.state[writer] = TaskState::Blocked;
                    self.completed -= 1;
                    self.reexecuted.insert(writer);
                    lineage += 1;
                }
            }
        }
        self.kill_info.insert(node, (lost.len(), lineage));
        self.rebuild_ready();
    }

    /// The heartbeat monitor declared `node` failed: record the failure and
    /// move its tasks onto the surviving workers.
    fn recover_from<B: ExecutionBackend>(
        &mut self,
        node: NodeId,
        backend: &mut B,
    ) -> OmpcResult<()> {
        let (alive, silenced_at, detected_at, replan) = {
            let f = self.faults.as_ref().expect("recovery requires an active fault subsystem");
            (f.alive_workers(), f.silenced_at(node), f.clock(), f.replan_on_failure)
        };
        let (lost_buffers, lineage_tasks) = self.kill_info.remove(&node).unwrap_or((0, 0));
        self.failures.push(FailureRecord {
            node,
            silenced_at,
            detected_at,
            lost_buffers,
            lineage_tasks,
        });
        if alive.is_empty() {
            return Err(OmpcError::NodeFailure(node));
        }
        let replan_start = self.telemetry.start();
        let full_replan = if replan { backend.replan(&alive) } else { None };
        match full_replan {
            Some(new_assignment) if new_assignment.len() == self.total => {
                for (task, &to) in new_assignment.iter().enumerate() {
                    if !self.may_move(task, node) || to == self.assignment[task] {
                        continue;
                    }
                    self.replanned.push(ReplanEntry { task, from: self.assignment[task], to });
                    self.assignment[task] = to;
                }
            }
            _ => {
                for (task, to) in plan_recovery(&self.assignment, &[node], &alive) {
                    if !self.may_move(task, node) {
                        continue;
                    }
                    self.replanned.push(ReplanEntry { task, from: self.assignment[task], to });
                    self.assignment[task] = to;
                }
            }
        }
        if self.telemetry.spans_enabled() {
            self.telemetry.record(
                Span::new(SpanPhase::Replan, HEAD_NODE, replan_start, telemetry::monotonic_us())
                    .detail(format!("node {node} failed")),
            );
        }
        Ok(())
    }

    /// Whether recovery for the failure of `failed` may move `task`:
    /// retired tasks keep their historical node, and live in-flight tasks
    /// cannot move mid-execution (in-flight tasks on the dead node are
    /// zombies and must move).
    fn may_move(&self, task: usize, failed: NodeId) -> bool {
        match self.state[task] {
            TaskState::Done => false,
            TaskState::InFlight => self.dispatched_on[task] == failed,
            TaskState::Blocked | TaskState::Ready => true,
        }
    }

    /// Put a restarted task back into the dependence machinery.
    fn reset_to_pending(&mut self, task: usize) {
        let unmet =
            self.predecessors[task].iter().filter(|&&p| self.state[p] != TaskState::Done).count();
        self.preds_remaining[task] = unmet;
        if unmet == 0 {
            self.state[task] = TaskState::Ready;
            self.ready.push_back(task);
        } else {
            self.state[task] = TaskState::Blocked;
        }
    }

    /// Recompute the dependence counters and rebuild the ready queue
    /// (ascending task id) after recovery changed task states. In-flight
    /// and retired tasks are untouched.
    fn rebuild_ready(&mut self) {
        self.ready.clear();
        for task in 0..self.total {
            if matches!(self.state[task], TaskState::Blocked | TaskState::Ready) {
                self.reset_to_pending(task);
            }
        }
    }

    fn fill_window<B: ExecutionBackend>(&mut self, backend: &mut B) -> OmpcResult<()> {
        while self.in_flight < self.window {
            let start = self.telemetry.start();
            let Some(task) = self.ready.pop_front() else { break };
            debug_assert_eq!(self.state[task], TaskState::Ready);
            self.state[task] = TaskState::InFlight;
            self.dispatched_on[task] = self.assignment[task];
            self.in_flight += 1;
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            self.dispatch_order.push(task);
            let attempt = self.telemetry.begin_attempt(task);
            // The dispatch span covers only the core's bookkeeping: the
            // backend records its own serialize/send spans inside `launch`,
            // and enclosing them here would double-count those buckets.
            if self.telemetry.spans_enabled() {
                self.telemetry.record(
                    Span::new(SpanPhase::Dispatch, HEAD_NODE, start, telemetry::monotonic_us())
                        .task(task)
                        .attempt(attempt),
                );
            }
            backend.launch(task, self.assignment[task])?;
        }
        Ok(())
    }

    fn retire(&mut self, task: usize) {
        debug_assert!(self.in_flight > 0, "retired task {task} that was not in flight");
        if self.telemetry.spans_enabled() {
            let now = telemetry::monotonic_us();
            self.telemetry.record(
                Span::new(SpanPhase::Retire, HEAD_NODE, now, now)
                    .task(task)
                    .attempt(self.telemetry.attempt(task)),
            );
        }
        self.state[task] = TaskState::Done;
        self.in_flight -= 1;
        self.completed += 1;
        self.completion_order.push(task);
        for i in 0..self.successors[task].len() {
            let succ = self.successors[task][i];
            if self.state[succ] != TaskState::Blocked {
                continue;
            }
            self.preds_remaining[succ] = self.preds_remaining[succ].saturating_sub(1);
            if self.preds_remaining[succ] == 0 {
                self.state[succ] = TaskState::Ready;
                self.ready.push_back(succ);
            }
        }
    }

    /// Node each task executes on.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// The effective window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of retired tasks so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The run's decision record (dispatch order, completion order, peak
    /// concurrency, and — with an active fault plan — the failure,
    /// re-execution, and recovery events).
    pub fn record(&self) -> RunRecord {
        RunRecord {
            assignment: self.assignment.clone(),
            dispatch_order: self.dispatch_order.clone(),
            completion_order: self.completion_order.clone(),
            peak_in_flight: self.peak_in_flight,
            failures: self.failures.clone(),
            reexecuted: self.reexecuted.iter().copied().collect(),
            replanned: self.replanned.clone(),
            // Transfers are owned by the data layer and spans by the
            // device's recorder, not the dispatch loop; the backend's
            // owner attaches both after execution.
            transfers: Vec::new(),
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompc_sched::TaskGraph;

    /// A backend that completes tasks in LIFO order to exercise the core's
    /// windowing independent of any real execution machinery.
    #[derive(Default)]
    struct StackBackend {
        running: Vec<usize>,
        prologues: usize,
        epilogues: usize,
    }

    impl ExecutionBackend for StackBackend {
        fn prologue(&mut self) -> OmpcResult<()> {
            self.prologues += 1;
            Ok(())
        }
        fn launch(&mut self, task: usize, _node: NodeId) -> OmpcResult<()> {
            self.running.push(task);
            Ok(())
        }
        fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
            Ok(self.running.pop().map(TaskEvent::Completed).into_iter().collect())
        }
        fn epilogue(&mut self) -> OmpcResult<()> {
            self.epilogues += 1;
            Ok(())
        }
    }

    fn diamond() -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task(1.0);
        }
        g.add_edge(0, 1, 8);
        g.add_edge(0, 2, 8);
        g.add_edge(1, 3, 8);
        g.add_edge(2, 3, 8);
        WorkloadGraph::new(g, vec![8; 4])
    }

    fn plan_with_window(w: &WorkloadGraph, window: usize) -> RuntimePlan {
        RuntimePlan { assignment: vec![1; w.len()], window }
    }

    #[test]
    fn executes_every_task_once_in_dependence_order() {
        let w = diamond();
        let mut core = RuntimeCore::new(&w, &plan_with_window(&w, 8));
        let mut backend = StackBackend::default();
        core.execute(&mut backend).unwrap();
        let record = core.record();
        assert_eq!(record.dispatch_order.len(), 4);
        assert_eq!(record.completion_order.len(), 4);
        assert_eq!(backend.prologues, 1);
        assert_eq!(backend.epilogues, 1);
        assert!(record.failures.is_empty() && record.reexecuted.is_empty());
        // Dependences hold in completion order.
        let pos = |t: usize| record.completion_order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn window_bounds_in_flight_tasks() {
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.add_task(1.0);
        }
        let w = WorkloadGraph::new(g, vec![0; 16]);
        for window in [1usize, 3, 16, 64] {
            let mut core = RuntimeCore::new(&w, &plan_with_window(&w, window));
            core.execute(&mut StackBackend::default()).unwrap();
            assert_eq!(core.record().peak_in_flight, window.min(16));
        }
    }

    #[test]
    fn empty_graph_skips_backend_entirely() {
        let w = WorkloadGraph::default();
        let mut core = RuntimeCore::new(&w, &RuntimePlan { assignment: vec![], window: 4 });
        let mut backend = StackBackend::default();
        core.execute(&mut backend).unwrap();
        assert_eq!(backend.prologues, 0);
        assert_eq!(backend.epilogues, 0);
    }

    #[test]
    fn stalled_backend_is_an_error_not_a_hang() {
        struct Stalled;
        impl ExecutionBackend for Stalled {
            fn launch(&mut self, _: usize, _: NodeId) -> OmpcResult<()> {
                Ok(())
            }
            fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
                Ok(Vec::new())
            }
        }
        let w = diamond();
        let mut core = RuntimeCore::new(&w, &plan_with_window(&w, 2));
        let err = core.execute(&mut Stalled).unwrap_err();
        assert!(matches!(err, OmpcError::Internal(_)));
    }

    #[test]
    fn region_graph_and_task_graph_views_agree() {
        use crate::types::{BufferId, Dependence, KernelId};
        let mut region = RegionGraph::new();
        let a = BufferId(0);
        region.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "p",
        );
        region.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a)],
            "c",
        );
        assert_eq!(region.task_count(), 2);
        assert_eq!(region.predecessor_count(1), 1);
        assert_eq!(region.successor_ids(0), vec![1]);
    }

    #[test]
    fn plan_for_region_pins_data_and_host_tasks() {
        use crate::types::Dependence;
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 64]);
        let mut region = RegionGraph::new();
        let enter = region.add_task(
            TaskKind::EnterData { buffer: a, map: crate::types::MapType::To },
            vec![Dependence::output(a)],
            "enter",
        );
        let target = region.add_task(
            TaskKind::Target { kernel: crate::types::KernelId(0), cost_hint: 0.5 },
            vec![Dependence::inout(a)],
            "k",
        );
        let host =
            region.add_task(TaskKind::Host { cost_hint: 0.1 }, vec![Dependence::input(a)], "h");
        let exit = region.add_task(
            TaskKind::ExitData { buffer: a, map: crate::types::MapType::From },
            vec![Dependence::inout(a)],
            "exit",
        );
        let plan = RuntimePlan::for_region(&region, &buffers, 3, &OmpcConfig::small());
        assert_eq!(plan.assignment[enter.0], plan.assignment[target.0]);
        assert_eq!(plan.assignment[exit.0], plan.assignment[target.0]);
        assert_eq!(plan.assignment[host.0], HEAD_NODE);
        assert!(plan.assignment[target.0] >= 1);
    }

    #[test]
    fn exit_data_follows_the_last_target_predecessor() {
        use crate::types::{Dependence, KernelId, MapType};
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 64]);
        let mut region = RegionGraph::new();
        region.add_task(
            TaskKind::EnterData { buffer: a, map: MapType::To },
            vec![Dependence::output(a)],
            "enter",
        );
        let first = region.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 0.5 },
            vec![Dependence::inout(a)],
            "first",
        );
        let last = region.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 0.5 },
            vec![Dependence::inout(a)],
            "last",
        );
        let exit = region.add_task(
            TaskKind::ExitData { buffer: a, map: MapType::From },
            vec![Dependence::inout(a)],
            "exit",
        );
        // Round-robin placement forces the two producers apart, so "first"
        // and "last" predecessor pinning genuinely differ.
        let config = OmpcConfig {
            scheduler: crate::config::SchedulerKind::RoundRobin,
            ..OmpcConfig::small()
        };
        let plan = RuntimePlan::for_region(&region, &buffers, 2, &config);
        assert_ne!(
            plan.assignment[first.0], plan.assignment[last.0],
            "test needs the producers on different nodes"
        );
        assert_eq!(
            plan.assignment[exit.0], plan.assignment[last.0],
            "exit data must follow the last target predecessor"
        );
    }

    #[test]
    fn residency_pins_data_tasks_with_no_region_producer_or_consumer() {
        use crate::types::{Dependence, MapType};
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 64]);
        // A flush-only region: one exit-data task, no target tasks — the
        // version being flushed is resident from an earlier region.
        let mut flush = RegionGraph::new();
        let exit = flush.add_task(
            TaskKind::ExitData { buffer: a, map: MapType::From },
            vec![Dependence::inout(a)],
            "flush",
        );
        // And a prefetch-only region: one enter-data task, no consumer.
        let mut prefetch = RegionGraph::new();
        let enter = prefetch.add_task(
            TaskKind::EnterData { buffer: a, map: MapType::ToResident },
            vec![Dependence::output(a)],
            "enter",
        );
        let config = OmpcConfig::small();
        let platform = Platform::cluster(3);
        let nodes: Vec<NodeId> = vec![1, 2, 3];
        let residency: ResidencyMap = [(a, 3)].into_iter().collect();
        let flush_assignment = RuntimePlan::region_assignment_on(
            &flush, &buffers, &platform, &config, &nodes, &residency,
        );
        assert_eq!(flush_assignment[exit.0], 3, "the exit must follow the resident holder");
        let enter_assignment = RuntimePlan::region_assignment_on(
            &prefetch, &buffers, &platform, &config, &nodes, &residency,
        );
        assert_eq!(enter_assignment[enter.0], 3, "the re-enter must stay where the data is");
        // A holder outside the planned node set falls back to the
        // scheduler's placement instead of pinning to an excluded node.
        let survivors: Vec<NodeId> = vec![1, 2];
        let degraded = RuntimePlan::region_assignment_on(
            &flush,
            &buffers,
            &Platform::cluster(2),
            &config,
            &survivors,
            &residency,
        );
        assert!(survivors.contains(&degraded[exit.0]));
        // With no residency the pinning rules are unchanged.
        let plain = RuntimePlan::region_assignment_on(
            &flush,
            &buffers,
            &platform,
            &config,
            &nodes,
            &ResidencyMap::new(),
        );
        assert!(nodes.contains(&plain[exit.0]));
    }

    #[test]
    fn run_record_transfer_helpers_aggregate_the_log() {
        use crate::data_manager::{TransferReason, TransferRecord};
        let record = RunRecord {
            transfers: vec![
                TransferRecord {
                    buffer: BufferId(0),
                    from: HEAD_NODE,
                    to: 1,
                    bytes: 100,
                    reason: TransferReason::EnterData,
                },
                TransferRecord {
                    buffer: BufferId(0),
                    from: 1,
                    to: 2,
                    bytes: 100,
                    reason: TransferReason::Input,
                },
                TransferRecord {
                    buffer: BufferId(1),
                    from: 2,
                    to: HEAD_NODE,
                    bytes: 8,
                    reason: TransferReason::Retrieve,
                },
            ],
            ..RunRecord::default()
        };
        assert_eq!(record.transfer_count(), 3);
        assert_eq!(record.transfer_bytes(), 208);
        assert_eq!(record.buffer_transfers(BufferId(0)).len(), 2);
        assert_eq!(record.buffer_transfers(BufferId(9)).len(), 0);
        assert_eq!(record.transfers_with_reason(TransferReason::Input).len(), 1);
        assert_eq!(record.transfers_with_reason(TransferReason::Retrieve)[0].to, HEAD_NODE);
    }

    /// A deterministic fault-injection harness over the LIFO backend: node
    /// data is tracked well enough to exercise lineage (every task's output
    /// "lives" on the node that ran it).
    #[derive(Default)]
    struct FaultyStackBackend {
        inner: StackBackend,
        ran_on: std::collections::HashMap<usize, NodeId>,
        invalidated: Vec<NodeId>,
    }

    impl ExecutionBackend for FaultyStackBackend {
        fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()> {
            self.ran_on.insert(task, node);
            self.inner.launch(task, node)
        }
        fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
            self.inner.await_completions()
        }
        fn invalidate_node(&mut self, node: NodeId) -> Vec<LostBuffer> {
            self.invalidated.push(node);
            // Every task that ran (only) on the dead node loses its output.
            let mut lost: Vec<LostBuffer> = self
                .ran_on
                .iter()
                .filter(|&(_, &n)| n == node)
                .map(|(&t, _)| LostBuffer {
                    buffer: crate::types::BufferId(t as u64),
                    writers: vec![t],
                })
                .collect();
            lost.sort_by_key(|l| l.buffer);
            lost
        }
    }

    #[test]
    fn injected_failure_recovers_onto_survivors() {
        // A chain of 6 tasks, first half on node 1, second half on node 2;
        // node 1 dies right after its second retirement.
        let mut g = TaskGraph::new();
        for _ in 0..6 {
            g.add_task(1.0);
        }
        for t in 1..6 {
            g.add_edge(t - 1, t, 64);
        }
        let w = WorkloadGraph::new(g, vec![64; 6]);
        let plan = RuntimePlan { assignment: vec![1, 1, 1, 2, 2, 2], window: 1 };
        let fault_plan = FaultPlan::none().fail_after_completions(1, 2);
        let faults = FaultState::from_config(&fault_plan, 10, 3, 2).unwrap().unwrap();
        let mut core = RuntimeCore::with_faults(&w, &plan, faults);
        let mut backend = FaultyStackBackend::default();
        core.execute(&mut backend).unwrap();
        let record = core.record();
        assert_eq!(backend.invalidated, vec![1]);
        assert_eq!(record.failures.len(), 1);
        assert_eq!(record.failures[0].node, 1);
        assert!(record.failures[0].detected_at > record.failures[0].silenced_at);
        // Tasks 0 and 1 completed on node 1 and lost their outputs with it.
        // Task 2 never re-executes: the lineage rebuild re-blocks it behind
        // task 1 before it can be dispatched to the dead node.
        assert_eq!(record.reexecuted, vec![0, 1]);
        // Everything that had to move went to node 2.
        assert!(record.replanned.iter().all(|r| r.from == 1 && r.to == 2));
        // Every task's final node is the survivor or its original node 2.
        assert!(record.assignment.iter().all(|&n| n == 2 || n == 1));
        // The last retirement of every task happened exactly once per task.
        let mut last_positions = std::collections::HashMap::new();
        for (i, &t) in record.completion_order.iter().enumerate() {
            last_positions.insert(t, i);
        }
        assert_eq!(last_positions.len(), 6);
        assert_eq!(core.completed(), 6);
    }

    /// A backend that fails a chosen task with a chosen error on its first
    /// attempt and completes everything (including the retry) otherwise.
    struct FailOnce {
        running: Vec<usize>,
        fail_task: usize,
        error: Option<OmpcError>,
    }

    impl ExecutionBackend for FailOnce {
        fn launch(&mut self, task: usize, _node: NodeId) -> OmpcResult<()> {
            self.running.push(task);
            Ok(())
        }
        fn await_completions(&mut self) -> OmpcResult<Vec<TaskEvent>> {
            let Some(task) = self.running.pop() else { return Ok(Vec::new()) };
            if task == self.fail_task {
                if let Some(error) = self.error.take() {
                    return Ok(vec![TaskEvent::Failed { task, error }]);
                }
            }
            Ok(vec![TaskEvent::Completed(task)])
        }
    }

    #[test]
    fn unattributed_task_failure_propagates() {
        let w = diamond();
        let mut core = RuntimeCore::new(&w, &plan_with_window(&w, 1));
        let remote = OmpcError::RemoteEvent {
            node: 1,
            event: 9,
            error: Box::new(OmpcError::UnknownKernel(crate::types::KernelId(42))),
        };
        let mut backend =
            FailOnce { running: Vec::new(), fail_task: 2, error: Some(remote.clone()) };
        let err = core.execute(&mut backend).unwrap_err();
        assert_eq!(err, remote, "the typed error reply must propagate unchanged");
        // The record still shows the completions that happened first.
        let record = core.record();
        assert!(record.completion_order.len() < 4);
        assert!(!record.completion_order.contains(&2));
    }

    #[test]
    fn failure_blamed_on_a_dead_node_restarts_the_task() {
        // Node 1 dies after its first retirement. Task 1's execution then
        // fails with an error *originating from* node 1 even though it ran
        // on node 2 (a refused event from the dead peer): the failure is
        // stale and the task restarts instead of aborting the run.
        let mut g = TaskGraph::new();
        for _ in 0..3 {
            g.add_task(1.0);
        }
        for t in 1..3 {
            g.add_edge(t - 1, t, 8);
        }
        let w = WorkloadGraph::new(g, vec![8; 3]);
        let plan = RuntimePlan { assignment: vec![1, 2, 2], window: 1 };
        let fault_plan = FaultPlan::none().fail_after_completions(1, 1);
        let faults = FaultState::from_config(&fault_plan, 10, 3, 2).unwrap().unwrap();
        let mut core = RuntimeCore::with_faults(&w, &plan, faults);
        let remote = OmpcError::RemoteEvent {
            node: 1,
            event: 17,
            error: Box::new(OmpcError::NodeFailure(1)),
        };
        let mut backend = FailOnce { running: Vec::new(), fail_task: 1, error: Some(remote) };
        core.execute(&mut backend).unwrap();
        let record = core.record();
        assert!(record.reexecuted.contains(&1), "the blamed-dead failure must requeue task 1");
        assert_eq!(core.completed(), 3);
    }

    #[test]
    fn failure_with_no_survivors_is_an_error() {
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task(1.0);
        }
        for t in 1..4 {
            g.add_edge(t - 1, t, 8);
        }
        let w = WorkloadGraph::new(g, vec![8; 4]);
        let plan = RuntimePlan { assignment: vec![1; 4], window: 1 };
        let fault_plan = FaultPlan::none().fail_after_completions(1, 1);
        let faults = FaultState::from_config(&fault_plan, 10, 2, 1).unwrap().unwrap();
        let mut core = RuntimeCore::with_faults(&w, &plan, faults);
        let err = core.execute(&mut FaultyStackBackend::default()).unwrap_err();
        assert_eq!(err, OmpcError::NodeFailure(1));
    }
}
