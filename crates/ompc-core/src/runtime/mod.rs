//! The unified OMPC execution core.
//!
//! Historically the repository carried **two divergent copies** of the OMPC
//! execution protocol: `ClusterDevice` drove real worker threads and
//! `OmpcSimProcess` drove the virtual cluster, each with its own dispatch
//! loop, in-flight accounting, and forwarding decisions. This module
//! extracts the protocol into one place:
//!
//! * [`RuntimePlan`] — the static side: the HEFT (or ablation) schedule is
//!   computed through a single interface and turned into a task-to-node
//!   assignment, including the paper's §4.4 pinning rules for data and host
//!   tasks.
//! * [`RuntimeCore`] — the dynamic side: a backend-agnostic, pipelined
//!   dispatch loop. It owns the ready queue, the per-task dependence
//!   counters, the bounded in-flight window
//!   ([`crate::config::OmpcConfig::max_inflight_tasks`]), and the per-phase
//!   accounting (dispatch order, completion order, peak concurrency).
//! * [`ExecutionBackend`] — the five-method trait a backend implements to
//!   execute what the core decides: [`ThreadedBackend`] wraps the
//!   `ompc-mpi` world and the real worker threads, [`SimBackend`] wraps the
//!   `ompc-sim` discrete-event engine.
//!
//! Both execution modes therefore share every scheduling, windowing, and
//! forwarding decision — an optimization or fix lands once and is measured
//! in both — and the §7 head-node bottleneck can be reproduced (or lifted)
//! in either mode purely through configuration.

pub mod sim;
pub mod threaded;

pub use sim::SimBackend;
pub use threaded::ThreadedBackend;

use crate::buffer::BufferRegistry;
use crate::config::OmpcConfig;
use crate::data_manager::HEAD_NODE;
use crate::model::{self, WorkloadGraph};
use crate::task::{RegionGraph, TaskKind};
use crate::types::{NodeId, OmpcError, OmpcResult, TaskId};
use ompc_sched::Platform;
use std::collections::VecDeque;

/// A dependence DAG as seen by the execution core: dense task ids, counted
/// predecessors, listed successors. Implemented by the scheduler's
/// `TaskGraph` (simulated workloads) and the runtime's [`RegionGraph`]
/// (threaded target regions), so one dispatch loop drives both.
pub trait TaskDag {
    /// Number of tasks.
    fn task_count(&self) -> usize;
    /// Number of direct predecessors of `task`.
    fn predecessor_count(&self, task: usize) -> usize;
    /// Direct successors of `task`, in deterministic order.
    fn successor_ids(&self, task: usize) -> Vec<usize>;
}

impl TaskDag for ompc_sched::TaskGraph {
    fn task_count(&self) -> usize {
        self.len()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.predecessors(task).len()
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.successors(task).to_vec()
    }
}

impl TaskDag for RegionGraph {
    fn task_count(&self) -> usize {
        self.len()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.predecessors(TaskId(task)).len()
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.successors(TaskId(task)).iter().map(|t| t.0).collect()
    }
}

impl TaskDag for WorkloadGraph {
    fn task_count(&self) -> usize {
        self.graph.task_count()
    }
    fn predecessor_count(&self, task: usize) -> usize {
        self.graph.predecessor_count(task)
    }
    fn successor_ids(&self, task: usize) -> Vec<usize> {
        self.graph.successor_ids(task)
    }
}

/// The static execution plan shared by every backend: one schedule, one
/// assignment, one window — the "schedule consumed through one interface"
/// half of the unified core.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimePlan {
    /// Node each task executes on (worker nodes are 1-based; the head node
    /// is [`HEAD_NODE`]).
    pub assignment: Vec<NodeId>,
    /// Maximum number of concurrently in-flight tasks.
    pub window: usize,
}

impl RuntimePlan {
    /// Plan an abstract workload: run the configured static scheduler over
    /// `platform` and map processor `p` to worker node `p + 1`.
    pub fn for_workload(
        workload: &WorkloadGraph,
        platform: &Platform,
        config: &OmpcConfig,
    ) -> Self {
        let schedule = config.scheduler.build().schedule(&workload.graph, platform);
        let assignment = (0..workload.len()).map(|t| schedule.proc_of(t) + 1).collect();
        Self { assignment, window: config.inflight_window() }
    }

    /// Plan a target region: schedule the region's task graph, then apply
    /// the paper's §4.4 pinning rules — enter-data tasks follow their first
    /// target consumer, exit-data tasks follow their last target producer,
    /// and host tasks stay on the head node.
    pub fn for_region(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        num_workers: usize,
        config: &OmpcConfig,
    ) -> Self {
        Self::for_region_on(region, buffers, &Platform::cluster(num_workers), config)
    }

    /// [`RuntimePlan::for_region`] with an explicit platform model.
    pub fn for_region_on(
        region: &RegionGraph,
        buffers: &BufferRegistry,
        platform: &Platform,
        config: &OmpcConfig,
    ) -> Self {
        let sched_graph = model::region_to_sched(region, buffers);
        let schedule = config.scheduler.build().schedule(&sched_graph, platform);
        let mut assignment: Vec<NodeId> =
            (0..region.len()).map(|t| schedule.proc_of(t) + 1).collect();
        for task in region.tasks() {
            match task.kind {
                TaskKind::EnterData { .. } => {
                    if let Some(&succ) = region
                        .successors(task.id)
                        .iter()
                        .find(|&&s| region.task(s).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[succ.0];
                    }
                }
                TaskKind::ExitData { .. } => {
                    if let Some(&pred) = region
                        .predecessors(task.id)
                        .iter()
                        .find(|&&p| region.task(p).kind.is_target())
                    {
                        assignment[task.id.0] = assignment[pred.0];
                    }
                }
                TaskKind::Host { .. } => assignment[task.id.0] = HEAD_NODE,
                TaskKind::Target { .. } => {}
            }
        }
        Self { assignment, window: config.inflight_window() }
    }
}

/// What a backend does with the work the core hands it.
///
/// The core calls the methods in a fixed protocol: `prologue` once, then an
/// alternation of `launch` (as the window opens) and `await_completions`
/// (when the window is full or no task is ready), then `epilogue` once after
/// the last task retired. A backend reports *which* tasks finished; the core
/// decides *what* becomes ready and *when* it is dispatched.
pub trait ExecutionBackend {
    /// Pay the per-run start-up and whole-graph scheduling costs. Called
    /// once, before any task is launched.
    fn prologue(&mut self) -> OmpcResult<()> {
        Ok(())
    }

    /// Begin executing `task` on `node`: perform (or model) its input
    /// forwarding and computation. Must not block until completion —
    /// completions are reported through
    /// [`ExecutionBackend::await_completions`] so the core can keep the
    /// window full.
    fn launch(&mut self, task: usize, node: NodeId) -> OmpcResult<()>;

    /// Wait until at least one launched task has finished and return the
    /// finished ids in completion order.
    fn await_completions(&mut self) -> OmpcResult<Vec<usize>>;

    /// Drain results and shut down. Called once, after every task retired.
    fn epilogue(&mut self) -> OmpcResult<()> {
        Ok(())
    }
}

/// Record of one execution through the core: the decisions every backend
/// must agree on. Used by the backend-equivalence tests and exposed through
/// the public reporting APIs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Node each task executed on.
    pub assignment: Vec<NodeId>,
    /// Order in which the core dispatched tasks into the window.
    pub dispatch_order: Vec<usize>,
    /// Order in which the backend reported task completions.
    pub completion_order: Vec<usize>,
    /// Highest number of simultaneously in-flight tasks observed.
    pub peak_in_flight: usize,
}

/// The backend-agnostic OMPC dispatch engine.
///
/// One instance executes one task graph: it tracks readiness, keeps up to
/// `window` tasks in flight (the pipelined replacement for the paper's
/// one-blocked-thread-per-region dispatch), and retires tasks as the backend
/// reports their completion.
#[derive(Debug)]
pub struct RuntimeCore {
    assignment: Vec<NodeId>,
    window: usize,
    successors: Vec<Vec<usize>>,
    preds_remaining: Vec<usize>,
    ready: VecDeque<usize>,
    in_flight: usize,
    completed: usize,
    total: usize,
    dispatch_order: Vec<usize>,
    completion_order: Vec<usize>,
    peak_in_flight: usize,
}

impl RuntimeCore {
    /// Build the dispatch engine for `dag` under `plan`.
    pub fn new(dag: &impl TaskDag, plan: &RuntimePlan) -> Self {
        let total = dag.task_count();
        assert_eq!(plan.assignment.len(), total, "plan must assign every task of the graph");
        let preds_remaining: Vec<usize> = (0..total).map(|t| dag.predecessor_count(t)).collect();
        let ready: VecDeque<usize> = (0..total).filter(|&t| preds_remaining[t] == 0).collect();
        Self {
            assignment: plan.assignment.clone(),
            window: plan.window.max(1),
            successors: (0..total).map(|t| dag.successor_ids(t)).collect(),
            preds_remaining,
            ready,
            in_flight: 0,
            completed: 0,
            total,
            dispatch_order: Vec::with_capacity(total),
            completion_order: Vec::with_capacity(total),
            peak_in_flight: 0,
        }
    }

    /// Drive `backend` until every task has completed.
    pub fn execute<B: ExecutionBackend>(&mut self, backend: &mut B) -> OmpcResult<()> {
        if self.total == 0 {
            return Ok(());
        }
        backend.prologue()?;
        self.fill_window(backend)?;
        while self.completed < self.total {
            let finished = backend.await_completions()?;
            if finished.is_empty() {
                return Err(OmpcError::Internal(
                    "execution backend reported no progress".to_string(),
                ));
            }
            for task in finished {
                self.retire(task);
            }
            self.fill_window(backend)?;
        }
        backend.epilogue()
    }

    fn fill_window<B: ExecutionBackend>(&mut self, backend: &mut B) -> OmpcResult<()> {
        while self.in_flight < self.window {
            let Some(task) = self.ready.pop_front() else { break };
            self.in_flight += 1;
            self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            self.dispatch_order.push(task);
            backend.launch(task, self.assignment[task])?;
        }
        Ok(())
    }

    fn retire(&mut self, task: usize) {
        debug_assert!(self.in_flight > 0, "retired task {task} that was not in flight");
        self.in_flight -= 1;
        self.completed += 1;
        self.completion_order.push(task);
        for i in 0..self.successors[task].len() {
            let succ = self.successors[task][i];
            self.preds_remaining[succ] -= 1;
            if self.preds_remaining[succ] == 0 {
                self.ready.push_back(succ);
            }
        }
    }

    /// Node each task executes on.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// The effective window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of retired tasks so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The run's decision record (dispatch order, completion order, peak
    /// concurrency).
    pub fn record(&self) -> RunRecord {
        RunRecord {
            assignment: self.assignment.clone(),
            dispatch_order: self.dispatch_order.clone(),
            completion_order: self.completion_order.clone(),
            peak_in_flight: self.peak_in_flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompc_sched::TaskGraph;

    /// A backend that completes tasks in LIFO order to exercise the core's
    /// windowing independent of any real execution machinery.
    #[derive(Default)]
    struct StackBackend {
        running: Vec<usize>,
        prologues: usize,
        epilogues: usize,
    }

    impl ExecutionBackend for StackBackend {
        fn prologue(&mut self) -> OmpcResult<()> {
            self.prologues += 1;
            Ok(())
        }
        fn launch(&mut self, task: usize, _node: NodeId) -> OmpcResult<()> {
            self.running.push(task);
            Ok(())
        }
        fn await_completions(&mut self) -> OmpcResult<Vec<usize>> {
            Ok(self.running.pop().into_iter().collect())
        }
        fn epilogue(&mut self) -> OmpcResult<()> {
            self.epilogues += 1;
            Ok(())
        }
    }

    fn diamond() -> WorkloadGraph {
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task(1.0);
        }
        g.add_edge(0, 1, 8);
        g.add_edge(0, 2, 8);
        g.add_edge(1, 3, 8);
        g.add_edge(2, 3, 8);
        WorkloadGraph::new(g, vec![8; 4])
    }

    fn plan_with_window(w: &WorkloadGraph, window: usize) -> RuntimePlan {
        RuntimePlan { assignment: vec![1; w.len()], window }
    }

    #[test]
    fn executes_every_task_once_in_dependence_order() {
        let w = diamond();
        let mut core = RuntimeCore::new(&w, &plan_with_window(&w, 8));
        let mut backend = StackBackend::default();
        core.execute(&mut backend).unwrap();
        let record = core.record();
        assert_eq!(record.dispatch_order.len(), 4);
        assert_eq!(record.completion_order.len(), 4);
        assert_eq!(backend.prologues, 1);
        assert_eq!(backend.epilogues, 1);
        // Dependences hold in completion order.
        let pos = |t: usize| record.completion_order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn window_bounds_in_flight_tasks() {
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.add_task(1.0);
        }
        let w = WorkloadGraph::new(g, vec![0; 16]);
        for window in [1usize, 3, 16, 64] {
            let mut core = RuntimeCore::new(&w, &plan_with_window(&w, window));
            core.execute(&mut StackBackend::default()).unwrap();
            assert_eq!(core.record().peak_in_flight, window.min(16));
        }
    }

    #[test]
    fn empty_graph_skips_backend_entirely() {
        let w = WorkloadGraph::default();
        let mut core = RuntimeCore::new(&w, &RuntimePlan { assignment: vec![], window: 4 });
        let mut backend = StackBackend::default();
        core.execute(&mut backend).unwrap();
        assert_eq!(backend.prologues, 0);
        assert_eq!(backend.epilogues, 0);
    }

    #[test]
    fn stalled_backend_is_an_error_not_a_hang() {
        struct Stalled;
        impl ExecutionBackend for Stalled {
            fn launch(&mut self, _: usize, _: NodeId) -> OmpcResult<()> {
                Ok(())
            }
            fn await_completions(&mut self) -> OmpcResult<Vec<usize>> {
                Ok(Vec::new())
            }
        }
        let w = diamond();
        let mut core = RuntimeCore::new(&w, &plan_with_window(&w, 2));
        let err = core.execute(&mut Stalled).unwrap_err();
        assert!(matches!(err, OmpcError::Internal(_)));
    }

    #[test]
    fn region_graph_and_task_graph_views_agree() {
        use crate::types::{BufferId, Dependence, KernelId};
        let mut region = RegionGraph::new();
        let a = BufferId(0);
        region.add_task(
            TaskKind::Target { kernel: KernelId(0), cost_hint: 1.0 },
            vec![Dependence::output(a)],
            "p",
        );
        region.add_task(
            TaskKind::Target { kernel: KernelId(1), cost_hint: 1.0 },
            vec![Dependence::input(a)],
            "c",
        );
        assert_eq!(region.task_count(), 2);
        assert_eq!(region.predecessor_count(1), 1);
        assert_eq!(region.successor_ids(0), vec![1]);
    }

    #[test]
    fn plan_for_region_pins_data_and_host_tasks() {
        use crate::types::Dependence;
        let buffers = BufferRegistry::new();
        let a = buffers.register(vec![0u8; 64]);
        let mut region = RegionGraph::new();
        let enter = region.add_task(
            TaskKind::EnterData { buffer: a, map: crate::types::MapType::To },
            vec![Dependence::output(a)],
            "enter",
        );
        let target = region.add_task(
            TaskKind::Target { kernel: crate::types::KernelId(0), cost_hint: 0.5 },
            vec![Dependence::inout(a)],
            "k",
        );
        let host =
            region.add_task(TaskKind::Host { cost_hint: 0.1 }, vec![Dependence::input(a)], "h");
        let exit = region.add_task(
            TaskKind::ExitData { buffer: a, map: crate::types::MapType::From },
            vec![Dependence::inout(a)],
            "exit",
        );
        let plan = RuntimePlan::for_region(&region, &buffers, 3, &OmpcConfig::small());
        assert_eq!(plan.assignment[enter.0], plan.assignment[target.0]);
        assert_eq!(plan.assignment[exit.0], plan.assignment[target.0]);
        assert_eq!(plan.assignment[host.0], HEAD_NODE);
        assert!(plan.assignment[target.0] >= 1);
    }
}
